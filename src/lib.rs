//! # evprop — Parallel Evidence Propagation on Multicore Processors
//!
//! A production-quality Rust reproduction of *Xia, Feng, Prasanna,
//! "Parallel Evidence Propagation on Multicore Processors", PACT 2009*:
//! exact inference in Bayesian networks via junction trees, with
//!
//! * the paper's junction-tree **rerooting algorithm** minimizing the
//!   propagation critical path in `O(w_C · N)` ([`jtree::select_root`]);
//! * the node-level-primitive **task DAG** (marginalize / divide /
//!   extend / multiply) built from the clique updating graph
//!   ([`taskgraph::TaskGraph`]);
//! * the **collaborative scheduler** — per-thread ready lists, weight
//!   counters, allocate-to-least-loaded, δ-partitioning of large tasks —
//!   on real threads ([`core::CollaborativeEngine`]);
//! * baseline engines (sequential, OpenMP-style loop-parallel,
//!   per-primitive data-parallel) and a deterministic **discrete-event
//!   multicore simulator** regenerating every figure of the paper's
//!   evaluation ([`simcore`]).
//!
//! This crate is a facade re-exporting the workspace. See the individual
//! crate docs for depth, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use evprop::bayesnet::networks;
//! use evprop::core::{InferenceSession, CollaborativeEngine};
//! use evprop::potential::{EvidenceSet, VarId};
//!
//! // Compile the Asia chest-clinic network, re-root, infer in parallel.
//! let session = InferenceSession::from_network(&networks::asia())?;
//! let engine = CollaborativeEngine::with_threads(4);
//! let mut ev = EvidenceSet::new();
//! ev.observe(VarId(7), 1); // patient has dyspnoea
//! let p_lung_cancer = session.posterior(&engine, VarId(3), &ev)?;
//! assert!((p_lung_cancer.sum() - 1.0).abs() < 1e-9);
//! # Ok::<(), evprop::core::EngineError>(())
//! ```

#![warn(missing_docs)]

/// Bayesian networks, CPTs, classic demo networks, brute-force oracle.
pub use evprop_bayesnet as bayesnet;
/// Inference engines and the end-to-end [`core::InferenceSession`].
pub use evprop_core as core;
/// Incremental evidence propagation sessions (resident state, deltas).
pub use evprop_incremental as incremental;
/// Junction trees: compilation, shapes, rerooting (Algorithm 1).
pub use evprop_jtree as jtree;
/// Potential tables and the four node-level primitives.
pub use evprop_potential as potential;
/// Multi-model registry: versioned aliases, hot swap, budgeted eviction.
pub use evprop_registry as registry;
/// The collaborative scheduler on OS threads.
pub use evprop_sched as sched;
/// Sharded serving runtime: admission control, metrics, TCP front-end.
pub use evprop_serve as serve;
/// The discrete-event multicore simulator (virtual-time speedups).
pub use evprop_simcore as simcore;
/// Task definition and dependency-graph construction.
pub use evprop_taskgraph as taskgraph;
/// Span recording, Chrome-trace export, and timeline analysis.
pub use evprop_trace as trace;
/// Workload generators (Fig. 4 template, JT1–3, sweeps).
pub use evprop_workloads as workloads;
