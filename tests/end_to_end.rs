//! End-to-end correctness: every engine, on networks small enough for
//! the brute-force joint oracle, across evidence configurations.

use evprop::bayesnet::{networks, random_network, JointDistribution, RandomNetworkConfig};
use evprop::core::{
    CollaborativeEngine, DataParallelEngine, Engine, InferenceSession, OpenMpStyleEngine,
    SequentialEngine,
};
use evprop::potential::{EvidenceSet, VarId};

fn engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(SequentialEngine),
        Box::new(CollaborativeEngine::with_threads(1)),
        Box::new(CollaborativeEngine::with_threads(4)),
        Box::new(OpenMpStyleEngine::new(2)),
        Box::new(DataParallelEngine::new(2)),
    ]
}

fn check_against_oracle(net: &evprop::bayesnet::BayesianNetwork, evidences: &[EvidenceSet]) {
    let session = InferenceSession::from_network(net).expect("network compiles");
    let joint = JointDistribution::of(net).expect("network is small");
    for ev in evidences {
        for engine in engines() {
            let cal = session.propagate(engine.as_ref(), ev).expect("propagation");
            for v in 0..net.num_vars() as u32 {
                if ev.state_of(VarId(v)).is_some() {
                    continue; // observed variables are degenerate
                }
                let got = cal.marginal(VarId(v)).expect("marginal exists");
                let want = joint.marginal(VarId(v), ev).expect("oracle marginal");
                assert!(
                    got.approx_eq(&want, 1e-9),
                    "engine {} disagrees with oracle on V{v} under {ev:?}:\n got {got:?}\nwant {want:?}",
                    engine.name()
                );
            }
            let pe = joint.probability_of_evidence(ev).expect("oracle P(e)");
            assert!(
                (cal.probability_of_evidence() - pe).abs() < 1e-9,
                "engine {} P(e) mismatch",
                engine.name()
            );
        }
    }
}

#[test]
fn classic_networks_all_engines() {
    for net in [networks::sprinkler(), networks::asia(), networks::student()] {
        let n = net.num_vars() as u32;
        let evidences = vec![
            EvidenceSet::new(),
            {
                let mut e = EvidenceSet::new();
                e.observe(VarId(n - 1), 1);
                e
            },
            {
                let mut e = EvidenceSet::new();
                e.observe(VarId(0), 0);
                e.observe(VarId(n - 1), 1);
                e
            },
        ];
        check_against_oracle(&net, &evidences);
    }
}

#[test]
fn random_networks_all_engines() {
    for seed in 0..6 {
        let cfg = RandomNetworkConfig {
            num_vars: 10,
            max_parents: 3,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("generator produces valid networks");
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(seed as u32 % 10), 0);
        check_against_oracle(&net, &[EvidenceSet::new(), ev]);
    }
}

#[test]
fn chain_network_long() {
    // deep trees exercise the critical-path machinery
    let net = networks::chain(16);
    let session = InferenceSession::from_network(&net).expect("chain compiles");
    let joint = JointDistribution::of(&net).expect("16 binary vars fit");
    let mut ev = EvidenceSet::new();
    ev.observe(VarId(0), 1);
    ev.observe(VarId(15), 0);
    for engine in engines() {
        let got = session
            .posterior(engine.as_ref(), VarId(8), &ev)
            .expect("posterior");
        let want = joint.marginal(VarId(8), &ev).expect("oracle");
        assert!(got.approx_eq(&want, 1e-9), "engine {}", engine.name());
    }
}

#[test]
fn impossible_evidence_is_reported() {
    // "either" is a deterministic OR; either=0 with lung=1 is impossible
    let net = networks::asia();
    let session = InferenceSession::from_network(&net).expect("asia compiles");
    let mut ev = EvidenceSet::new();
    ev.observe(VarId(3), 1); // lung cancer present
    ev.observe(VarId(5), 0); // "either" false
    let cal = session.propagate(&SequentialEngine, &ev).expect("runs");
    assert!(cal.probability_of_evidence().abs() < 1e-12);
    assert!(cal.marginal(VarId(4)).is_err());
}

#[test]
fn soft_evidence_matches_oracle() {
    // a noisy sensor on the x-ray: likelihood (0.3, 0.9) over (normal,
    // abnormal) — soft evidence must shift posteriors the same way in
    // every engine and in the brute-force oracle
    let net = networks::asia();
    let session = InferenceSession::from_network(&net).expect("asia compiles");
    let joint = JointDistribution::of(&net).expect("asia is small");
    let mut ev = EvidenceSet::new();
    ev.observe(VarId(2), 1); // smoker (hard)
    ev.observe_likelihood(VarId(6), vec![0.3, 0.9]); // noisy x-ray (soft)
    for engine in engines() {
        let cal = session.propagate(engine.as_ref(), &ev).expect("runs");
        for v in [0u32, 1, 3, 4, 5, 7] {
            let got = cal.marginal(VarId(v)).expect("marginal");
            let want = joint.marginal(VarId(v), &ev).expect("oracle");
            assert!(
                got.approx_eq(&want, 1e-9),
                "engine {} V{v}: {got:?} vs {want:?}",
                engine.name()
            );
        }
        let pe = joint.probability_of_evidence(&ev).expect("oracle mass");
        assert!((cal.probability_of_evidence() - pe).abs() < 1e-9);
    }
    // sanity: the soft abnormal x-ray raises P(lung cancer) vs no x-ray info
    let mut base = EvidenceSet::new();
    base.observe(VarId(2), 1);
    let without = joint.marginal(VarId(3), &base).expect("oracle");
    let with = joint.marginal(VarId(3), &ev).expect("oracle");
    assert!(with.data()[1] > without.data()[1]);
}

#[test]
fn soft_evidence_is_not_double_counted() {
    // Put soft evidence on a variable shared by several cliques (smoke
    // appears in more than one); if the likelihood were absorbed into
    // each containing clique the posterior would over-commit.
    let net = networks::asia();
    let session = InferenceSession::from_network(&net).expect("asia compiles");
    let joint = JointDistribution::of(&net).expect("asia is small");
    let mut ev = EvidenceSet::new();
    ev.observe_likelihood(VarId(2), vec![0.5, 1.0]);
    let cal = session
        .propagate(&SequentialEngine, &ev)
        .expect("sequential run");
    let got = cal.marginal(VarId(2)).expect("marginal");
    let want = joint.marginal(VarId(2), &ev).expect("oracle");
    assert!(got.approx_eq(&want, 1e-9), "{got:?} vs {want:?}");
    // the analytic value: prior (.5,.5) reweighted by (0.5,1.0) -> (1/3, 2/3)
    assert!((got.data()[1] - 2.0 / 3.0).abs() < 1e-9);
}
