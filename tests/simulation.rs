//! Cross-crate simulator invariants: the virtual-time replay must agree
//! with the task graph's analytic bounds and the paper's qualitative
//! claims on the real presets.

use evprop::simcore::{simulate, speedup, CostModel, Policy};
use evprop::taskgraph::TaskGraph;
use evprop::workloads::presets::{jt1, jt2, jt3};
use evprop::workloads::{fig4_template, random_tree, TreeParams};

#[test]
fn makespan_respects_dag_bounds() {
    let model = CostModel::default();
    for seed in 0..5u64 {
        let shape = random_tree(&TreeParams::new(40, 8, 2, 4).with_seed(seed));
        let g = TaskGraph::from_shape(&shape);
        for cores in [1usize, 3, 8] {
            let r = simulate(&g, Policy::collaborative_unpartitioned(), cores, &model);
            // lower bound: total work / P (ignoring overheads)
            let work: u64 = g
                .tasks()
                .iter()
                .map(|t| model.exec_cost(t.kind.primitive(), t.weight))
                .sum();
            assert!(r.makespan as f64 >= work as f64 / cores as f64);
            // upper bound: everything serialized
            let per_task = (model.sigma_sched + model.lambda_lock) as u64;
            assert!(r.makespan <= work + per_task * g.num_tasks() as u64 + 1);
        }
    }
}

#[test]
fn fig5_claims_hold() {
    // speedup from rerooting is bounded by 2 and approaches it once the
    // thread count exceeds the branch count
    let model = CostModel::default();
    for b in [1usize, 2, 4] {
        let original = fig4_template(b, 256, 12);
        let mut rerooted = original.clone();
        let choice = evprop::jtree::select_root(&original);
        rerooted.reroot(choice.root).expect("valid root");
        let g_orig = TaskGraph::from_shape(&original);
        let g_new = TaskGraph::from_shape(&rerooted);
        let sp = |p: usize| {
            let a = simulate(&g_orig, Policy::collaborative_unpartitioned(), p, &model).makespan;
            let c = simulate(&g_new, Policy::collaborative_unpartitioned(), p, &model).makespan;
            a as f64 / c as f64
        };
        let at_1 = sp(1);
        let at_8 = sp(8);
        assert!((0.95..=1.05).contains(&at_1), "b={b}: {at_1}");
        assert!(at_8 > 1.7 && at_8 <= 2.05, "b={b}: {at_8}");
    }
}

#[test]
fn fig7_ordering_holds_on_presets() {
    let model = CostModel::default();
    for shape in [jt1(), jt2()] {
        let g = TaskGraph::from_shape(&shape);
        let collab = speedup(&g, Policy::collaborative(), 8, &model);
        let omp = speedup(&g, Policy::OpenMpStyle, 8, &model);
        assert!(collab > 6.5, "collaborative {collab}");
        assert!(
            collab / omp > 1.7 && collab / omp < 2.7,
            "ratio {}",
            collab / omp
        );
    }
}

#[test]
fn fig6_pnl_rises_after_four_on_all_presets() {
    let model = CostModel::default();
    for shape in [jt1(), jt2(), jt3()] {
        let g = TaskGraph::from_shape(&shape);
        let t1 = simulate(&g, Policy::PnlStyle, 1, &model).makespan;
        let t4 = simulate(&g, Policy::PnlStyle, 4, &model).makespan;
        let t8 = simulate(&g, Policy::PnlStyle, 8, &model).makespan;
        assert!(t4 < t1);
        assert!(t8 > t4);
    }
}

#[test]
fn fig9_small_table_outlier() {
    // w=10, r=2 must scale visibly worse than w=20, r=2
    let model = CostModel::default();
    let small = TaskGraph::from_shape(&random_tree(
        &TreeParams::new(512, 10, 2, 4).with_seed(0xF9),
    ));
    let large = TaskGraph::from_shape(&random_tree(
        &TreeParams::new(512, 20, 2, 4).with_seed(0xF9),
    ));
    let s_small = speedup(&small, Policy::collaborative(), 8, &model);
    let s_large = speedup(&large, Policy::collaborative(), 8, &model);
    assert!(s_large > 7.5, "large {s_large}");
    assert!(
        s_small < s_large - 1.0,
        "small {s_small} vs large {s_large}"
    );
}

#[test]
fn real_scheduler_and_simulator_agree_on_load_balance() {
    // both should distribute weight nearly evenly on a wide tree
    use evprop::potential::EvidenceSet;
    use evprop::sched::{run_collaborative, SchedulerConfig, TableArena};
    use evprop::workloads::materialize;

    let shape = random_tree(&TreeParams::new(128, 8, 2, 4).with_seed(2));
    let g = TaskGraph::from_shape(&shape);
    let model = CostModel::default();
    let sim = simulate(&g, Policy::collaborative_unpartitioned(), 4, &model);
    assert!(sim.imbalance() < 1.25, "sim imbalance {}", sim.imbalance());

    let jt = materialize(&shape, 2);
    let arena = TableArena::initialize(&g, jt.potentials(), &EvidenceSet::new());
    let cfg = SchedulerConfig::with_threads(4).without_partitioning();
    let report = run_collaborative(&g, &arena, &cfg);
    assert!(
        report.imbalance() < 1.6,
        "real imbalance {}",
        report.imbalance()
    );
}
