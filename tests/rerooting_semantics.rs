//! Rerooting must change performance only — never posteriors — and the
//! selected root must actually minimize the critical path.

use evprop::core::{InferenceSession, SequentialEngine};
use evprop::jtree::{critical_path_weight, select_root, select_root_naive, CliqueId};
use evprop::potential::{EvidenceSet, VarId};
use evprop::workloads::{fig4_template, materialize, random_tree, TreeParams};

#[test]
fn posteriors_invariant_under_any_root() {
    let shape = random_tree(&TreeParams::new(24, 6, 2, 3).with_seed(10));
    let jt = materialize(&shape, 10);
    let reference = InferenceSession::from_junction_tree_unrerooted(jt.clone());
    let ev = EvidenceSet::new();
    let want = reference
        .propagate(&SequentialEngine, &ev)
        .expect("reference run");

    for root in 0..shape.num_cliques() {
        let mut jt2 = jt.clone();
        jt2.reroot(CliqueId(root)).expect("root in range");
        let session = InferenceSession::from_junction_tree_unrerooted(jt2);
        let got = session
            .propagate(&SequentialEngine, &ev)
            .expect("rerooted run");
        // compare marginals of a few variables (clique tables are
        // calibrated identically regardless of root)
        for v in [0u32, 3, 7] {
            let a = got.marginal(VarId(v)).expect("marginal");
            let b = want.marginal(VarId(v)).expect("marginal");
            assert!(a.approx_eq(&b, 1e-9), "root {root}, V{v}");
        }
    }
}

#[test]
fn algorithm1_optimal_on_templates_and_random_trees() {
    for b in [1usize, 2, 4, 8] {
        let shape = fig4_template(b, 128, 12);
        let fast = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(fast.critical_path, naive.critical_path, "b = {b}");
    }
    for seed in 0..10u64 {
        let shape = random_tree(&TreeParams::new(60, 5, 2, 3).with_seed(seed));
        let fast = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(fast.critical_path, naive.critical_path, "seed {seed}");
    }
}

#[test]
fn session_uses_the_selected_root() {
    let shape = fig4_template(2, 64, 8);
    let jt = materialize(&shape, 1);
    let choice = select_root(&shape);
    let session = InferenceSession::from_junction_tree(jt);
    assert_eq!(session.junction_tree().shape().root(), choice.root);
    assert_eq!(session.root_choice().critical_path, choice.critical_path);
    assert_eq!(
        critical_path_weight(session.junction_tree().shape()),
        choice.critical_path
    );
}

#[test]
fn rerooting_cost_is_negligible() {
    // §7: rerooting a 512-clique tree took 24 µs vs ~1e5 µs propagation.
    // Assert the qualitative claim: selection is far cheaper than even a
    // single task-graph construction.
    use std::time::Instant;
    let shape = fig4_template(4, 512, 15);
    let t0 = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(select_root(&shape));
    }
    let select = t0.elapsed() / 10;
    let t0 = Instant::now();
    std::hint::black_box(evprop::taskgraph::TaskGraph::from_shape(&shape));
    let build = t0.elapsed();
    assert!(
        select < build,
        "root selection ({select:?}) should cost less than graph construction ({build:?})"
    );
}
