//! Engine cross-agreement on generated junction trees too large for the
//! joint oracle: every parallel configuration must reproduce the
//! sequential engine's calibrated tables bit-for-bit (up to fp
//! reassociation in partitioned marginalizations).

use evprop::core::{
    CollaborativeEngine, DataParallelEngine, Engine, OpenMpStyleEngine, SequentialEngine,
};
use evprop::potential::{EvidenceSet, VarId};
use evprop::sched::SchedulerConfig;
use evprop::workloads::{materialize, random_tree, TreeParams};

fn tree(seed: u64, n: usize, w: usize, r: usize, k: usize) -> evprop::jtree::JunctionTree {
    materialize(
        &random_tree(&TreeParams::new(n, w, r, k).with_seed(seed)),
        seed,
    )
}

#[test]
fn collaborative_matches_sequential_on_many_trees() {
    for (seed, n, w, r, k) in [
        (1u64, 32usize, 8usize, 2usize, 2usize),
        (2, 64, 6, 3, 4),
        (3, 17, 10, 2, 8),
        (4, 100, 5, 2, 1), // pure path: no structural parallelism
    ] {
        let jt = tree(seed, n, w, r, k);
        let reference = SequentialEngine
            .propagate(&jt, &EvidenceSet::new())
            .expect("sequential run");
        for threads in [2usize, 4] {
            for delta in [None, Some(64), Some(1000)] {
                let mut cfg = SchedulerConfig::with_threads(threads);
                cfg.partition_threshold = delta;
                let engine = CollaborativeEngine::new(cfg);
                let got = engine.propagate(&jt, &EvidenceSet::new()).expect("run");
                assert!(
                    got.max_relative_divergence(&reference) < 1e-9,
                    "seed {seed} threads {threads} delta {delta:?}"
                );
            }
        }
    }
}

#[test]
fn stealing_matches_sequential() {
    let jt = tree(5, 48, 8, 2, 4);
    let reference = SequentialEngine
        .propagate(&jt, &EvidenceSet::new())
        .expect("sequential run");
    let engine = CollaborativeEngine::new(
        SchedulerConfig::with_threads(4)
            .with_delta(128)
            .with_stealing(),
    );
    let got = engine.propagate(&jt, &EvidenceSet::new()).expect("run");
    assert!(got.max_relative_divergence(&reference) < 1e-9);
}

#[test]
fn loop_parallel_baselines_match_sequential() {
    let jt = tree(6, 40, 9, 2, 3);
    let mut ev = EvidenceSet::new();
    // evidence on a variable guaranteed to exist: every tree has V0
    ev.observe(VarId(0), 1);
    let reference = SequentialEngine.propagate(&jt, &ev).expect("sequential");
    for threads in [2usize, 3, 8] {
        let omp = OpenMpStyleEngine::new(threads)
            .propagate(&jt, &ev)
            .expect("openmp run");
        assert!(
            omp.max_relative_divergence(&reference) < 1e-9,
            "omp {threads}"
        );
        let dp = DataParallelEngine::new(threads)
            .propagate(&jt, &ev)
            .expect("dp run");
        assert!(
            dp.max_relative_divergence(&reference) < 1e-9,
            "dp {threads}"
        );
    }
}

#[test]
fn evidence_count_does_not_affect_agreement() {
    // the paper: performance independent of evidence count; correctness
    // must hold for any number of evidence cliques
    let jt = tree(7, 64, 8, 2, 4);
    let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(4).with_delta(100));
    for n_ev in [0usize, 1, 5, 20] {
        let mut ev = EvidenceSet::new();
        for i in 0..n_ev as u32 {
            ev.observe(VarId(i * 3), 0);
        }
        let reference = SequentialEngine.propagate(&jt, &ev).expect("sequential");
        let got = engine.propagate(&jt, &ev).expect("collaborative");
        assert!(
            got.max_relative_divergence(&reference) < 1e-9,
            "n_ev {n_ev}"
        );
    }
}

#[test]
fn repeated_runs_are_stable() {
    // scheduler nondeterminism must not leak into results beyond fp noise
    let jt = tree(8, 32, 9, 2, 4);
    let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(4).with_delta(64));
    let first = engine.propagate(&jt, &EvidenceSet::new()).expect("run");
    for _ in 0..5 {
        let again = engine.propagate(&jt, &EvidenceSet::new()).expect("run");
        assert!(again.max_relative_divergence(&first) < 1e-9);
    }
}

#[test]
fn max_propagation_engines_agree() {
    use evprop::taskgraph::{PropagationMode, TaskGraph};
    let jt = tree(9, 40, 8, 2, 3);
    let g = TaskGraph::from_shape_mode(jt.shape(), PropagationMode::MaxProduct);
    g.validate().expect("max graph valid");
    let reference = SequentialEngine
        .propagate_graph(&jt, &g, &EvidenceSet::new())
        .expect("sequential max run");
    for threads in [2usize, 4] {
        let engine =
            CollaborativeEngine::new(SchedulerConfig::with_threads(threads).with_delta(64));
        let got = engine
            .propagate_graph(&jt, &g, &EvidenceSet::new())
            .expect("collaborative max run");
        assert!(
            got.max_relative_divergence(&reference) < 1e-9,
            "threads {threads}"
        );
    }
    let omp = OpenMpStyleEngine::new(3)
        .propagate_graph(&jt, &g, &EvidenceSet::new())
        .expect("openmp max run");
    assert!(omp.max_relative_divergence(&reference) < 1e-9);
}

#[test]
fn max_calibration_cliques_agree_on_peak() {
    use evprop::jtree::CliqueId;
    use evprop::taskgraph::{PropagationMode, TaskGraph};
    // after max-calibration, every clique's max entry equals the joint max
    let jt = tree(10, 24, 6, 2, 2);
    let g = TaskGraph::from_shape_mode(jt.shape(), PropagationMode::MaxProduct);
    let cal = SequentialEngine
        .propagate_graph(&jt, &g, &EvidenceSet::new())
        .expect("sequential max run");
    let peaks: Vec<f64> = (0..jt.num_cliques())
        .map(|c| cal.clique(CliqueId(c)).argmax().1)
        .collect();
    let global = peaks[0];
    for (i, &p) in peaks.iter().enumerate() {
        let rel = (p - global).abs() / global.max(1e-300);
        assert!(rel < 1e-9, "clique {i}: {p} vs {global}");
    }
}

#[test]
fn batched_max_propagation_matches_individual() {
    use evprop::taskgraph::{PropagationMode, TaskGraph};
    // batch replication composes with the max-product algebra
    let jt = tree(11, 20, 6, 2, 3);
    let g = TaskGraph::from_shape_mode(jt.shape(), PropagationMode::MaxProduct);
    let evidences: Vec<EvidenceSet> = (0..3)
        .map(|i| {
            let mut e = EvidenceSet::new();
            e.observe(VarId(0), i % 2);
            e
        })
        .collect();
    let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(3).with_delta(16));
    let batch = engine
        .propagate_batch(&jt, &g, &evidences)
        .expect("batch runs");
    for (i, ev) in evidences.iter().enumerate() {
        let single = SequentialEngine
            .propagate_graph(&jt, &g, ev)
            .expect("single");
        assert!(batch[i].max_relative_divergence(&single) < 1e-9, "case {i}");
    }
}

#[test]
fn qmr_network_compiles_and_engines_agree() {
    // the noisy-OR family end-to-end through compilation + both heuristics
    use evprop::bayesnet::{qmr_network, QmrConfig};
    use evprop::jtree::{EliminationHeuristic, JunctionTree};
    let net = qmr_network(&QmrConfig {
        diseases: 10,
        symptoms: 20,
        parents_per_symptom: 2,
        seed: 8,
    })
    .expect("generator yields valid networks");
    let mut ev = EvidenceSet::new();
    ev.observe(VarId(15), 1); // a symptom
    let mut reference: Option<Vec<f64>> = None;
    for h in [
        EliminationHeuristic::MinFill,
        EliminationHeuristic::MinDegree,
    ] {
        let jt = JunctionTree::from_network_with(&net, h).expect("compiles");
        jt.shape().validate().expect("valid tree");
        let cal = SequentialEngine.propagate(&jt, &ev).expect("propagates");
        let posts: Vec<f64> = (0..10u32)
            .map(|d| cal.marginal(VarId(d)).expect("marginal").data()[1])
            .collect();
        match &reference {
            None => reference = Some(posts),
            Some(r) => {
                for (a, b) in r.iter().zip(&posts) {
                    assert!((a - b).abs() < 1e-9, "heuristics disagree: {a} vs {b}");
                }
            }
        }
    }
}
