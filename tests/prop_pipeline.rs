//! Property tests over the whole pipeline: random Bayesian networks →
//! junction tree → task graph → engines, checked against the joint
//! oracle and each other.

use evprop::bayesnet::{random_network, JointDistribution, RandomNetworkConfig};
use evprop::core::{CollaborativeEngine, Engine, InferenceSession, SequentialEngine};
use evprop::potential::{EvidenceSet, VarId};
use evprop::sched::SchedulerConfig;
use evprop::taskgraph::TaskGraph;
use evprop::workloads::{materialize, random_tree, TreeParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small networks: sequential engine equals the brute-force
    /// oracle for every variable and random evidence.
    #[test]
    fn sequential_matches_oracle(
        seed in 0u64..5000,
        n_vars in 4usize..10,
        max_parents in 1usize..4,
        ev_var in 0usize..10,
        ev_state in 0usize..2,
    ) {
        let cfg = RandomNetworkConfig {
            num_vars: n_vars,
            max_parents,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let session = InferenceSession::from_network(&net).expect("compiles");
        let joint = JointDistribution::of(&net).expect("small");
        let mut ev = EvidenceSet::new();
        let var = VarId((ev_var % n_vars) as u32);
        ev.observe(var, ev_state % net.var(var).cardinality());
        // skip impossible-evidence draws
        prop_assume!(joint.probability_of_evidence(&ev).unwrap() > 1e-12);
        let cal = session.propagate(&SequentialEngine, &ev).expect("runs");
        for v in 0..n_vars as u32 {
            if ev.state_of(VarId(v)).is_some() {
                continue;
            }
            let got = cal.marginal(VarId(v)).expect("marginal");
            let want = joint.marginal(VarId(v), &ev).expect("oracle");
            prop_assert!(got.approx_eq(&want, 1e-8), "V{v}");
        }
    }

    /// Random junction trees: the collaborative scheduler under random
    /// thread counts and δ equals the sequential engine.
    #[test]
    fn collaborative_matches_sequential(
        seed in 0u64..5000,
        n in 4usize..40,
        w in 3usize..8,
        k in 1usize..5,
        threads in 1usize..5,
        delta_exp in 0usize..9,
    ) {
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let jt = materialize(&shape, seed);
        let reference = SequentialEngine
            .propagate(&jt, &EvidenceSet::new())
            .expect("sequential");
        let delta = if delta_exp == 0 { None } else { Some(1usize << delta_exp) };
        let mut cfg = SchedulerConfig::with_threads(threads);
        cfg.partition_threshold = delta;
        let got = CollaborativeEngine::new(cfg)
            .propagate(&jt, &EvidenceSet::new())
            .expect("collaborative");
        prop_assert!(got.max_relative_divergence(&reference) < 1e-9);
    }

    /// Task-graph structural invariants hold for arbitrary generated
    /// trees.
    #[test]
    fn taskgraph_invariants(
        seed in 0u64..5000,
        n in 1usize..60,
        w in 2usize..7,
        k in 1usize..6,
    ) {
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let g = TaskGraph::from_shape(&shape);
        prop_assert_eq!(g.num_tasks(), 8 * (n - 1));
        g.validate().expect("valid graph");
        prop_assert!(g.critical_path_weight() <= g.total_weight());
        // every task is reachable: topological order covers all
        prop_assert_eq!(g.topological_order().unwrap().len(), g.num_tasks());
    }
}
