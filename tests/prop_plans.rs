//! Property tests for compiled kernel plans: the plan interpreter must
//! be **bit-for-bit** identical to the stride-walking kernels, for
//! every (scan, target) domain pair a random junction tree produces,
//! under every partition grain δ — and the scheduler built on top of
//! the plans must stay bitwise thread-count-invariant.
//!
//! These complement `prop_pipeline.rs` (which checks engines against
//! the brute-force oracle with tolerances); here the assertion is
//! exact equality of `f64::to_bits`.

use evprop::core::{CollaborativeEngine, Engine, SequentialEngine};
use evprop::potential::{raw, EntryRange, EvidenceSet, KernelBackend};
use evprop::sched::SchedulerConfig;
use evprop::taskgraph::TaskGraph;
use evprop::workloads::{materialize, random_tree, TreeParams};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Partition grains: single-entry subtasks, the awkward prime, and the
/// two grains the serving stack actually uses.
const DELTAS: [usize; 4] = [1, 3, 64, 4096];
const THREADS: [usize; 3] = [1, 2, 4];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every cross-domain task of a random tree, every δ: interpreting
    /// the interned plans (sum, max, extend, multiply) produces the
    /// same bits as re-deriving the index map with the walker kernels.
    #[test]
    fn plans_match_walkers_bitwise(
        seed in 0u64..5000,
        n in 2usize..20,
        w in 2usize..6,
        k in 1usize..4,
    ) {
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let graph = TaskGraph::from_shape(&shape);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB17_1DEA);
        for t in (0..graph.num_tasks()).map(evprop::taskgraph::TaskId) {
            let Some((scan, target)) = graph.scan_target_domains(t) else {
                continue; // Divide never crosses domains
            };
            let (scan, target) = (scan.clone(), target.clone());
            let scan_data: Vec<f64> =
                (0..scan.size()).map(|_| rng.gen_range(0.01..1.0)).collect();
            let target_data: Vec<f64> =
                (0..target.size()).map(|_| rng.gen_range(0.01..1.0)).collect();
            for delta in DELTAS {
                let ranges = EntryRange::split(scan.size(), delta);
                // marginalize: accumulate range partials into the target
                let mut sum_p = vec![0.0; target.size()];
                let mut sum_w = vec![0.0; target.size()];
                let mut max_p = vec![0.0; target.size()];
                let mut max_w = vec![0.0; target.size()];
                // extend/multiply: write/scale the scan-side window
                let mut ext_p = vec![0.0; scan.size()];
                let mut ext_w = vec![0.0; scan.size()];
                let mut mul_p = scan_data.clone();
                let mut mul_w = scan_data.clone();
                for &r in &ranges {
                    // the scheduler's lookup path — interns on first use
                    let (_, plan) = graph.ranged_plan(t, r).expect("cross-domain task");
                    plan.marginalize_sum_into(&scan_data, &mut sum_p).unwrap();
                    plan.marginalize_max_into(&scan_data, &mut max_p).unwrap();
                    plan.extend_into(&target_data, &mut ext_p[r.start..r.end]).unwrap();
                    plan.multiply_into(&target_data, &mut mul_p[r.start..r.end]).unwrap();
                    raw::marginalize_range_into_walker(
                        &scan, &scan_data, r, &target, &mut sum_w).unwrap();
                    raw::max_marginalize_range_into_walker(
                        &scan, &scan_data, r, &target, &mut max_w).unwrap();
                    raw::extend_range_into_walker(
                        &target, &target_data, &scan, r, &mut ext_w[r.start..r.end]).unwrap();
                    raw::multiply_range_into_walker(
                        &target, &target_data, &scan, r, &mut mul_w[r.start..r.end]).unwrap();
                }
                prop_assert_eq!(bits(&sum_p), bits(&sum_w), "sum δ={}", delta);
                prop_assert_eq!(bits(&max_p), bits(&max_w), "max δ={}", delta);
                prop_assert_eq!(bits(&ext_p), bits(&ext_w), "extend δ={}", delta);
                prop_assert_eq!(bits(&mul_p), bits(&mul_w), "multiply δ={}", delta);
            }
        }
        let s = graph.plans().stats();
        prop_assert!(s.interned > 0, "plan cache saw no interning");
        prop_assert!(s.hits > 0, "repeated δ passes should hit the memo");
    }

    /// Every available SIMD backend interprets the same plans to the
    /// same bits as the scalar reference: random shapes × δ ∈
    /// {1, 3, 64, 4096} × {sum, max} reductions. This is the
    /// cross-backend determinism contract of DESIGN.md §12 exercised
    /// end-to-end through the plan cache (the potential crate's unit
    /// tests cover the kernels in isolation).
    #[test]
    fn backends_reduce_bit_identically(
        seed in 0u64..5000,
        n in 2usize..16,
        w in 2usize..6,
        k in 1usize..4,
    ) {
        let backends = KernelBackend::available();
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let graph = TaskGraph::from_shape(&shape);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x51D_BEEF);
        for t in (0..graph.num_tasks()).map(evprop::taskgraph::TaskId) {
            let Some((scan, target)) = graph.scan_target_domains(t) else {
                continue;
            };
            let (scan, target) = (scan.clone(), target.clone());
            let scan_data: Vec<f64> =
                (0..scan.size()).map(|_| rng.gen_range(0.01..1.0)).collect();
            for delta in DELTAS {
                let ranges = EntryRange::split(scan.size(), delta);
                let mut sum_ref = vec![0.0; target.size()];
                let mut max_ref = vec![0.0; target.size()];
                for &r in &ranges {
                    let (_, plan) = graph.ranged_plan(t, r).expect("cross-domain task");
                    plan.marginalize_sum_into_on(
                        KernelBackend::Scalar, &scan_data, &mut sum_ref).unwrap();
                    plan.marginalize_max_into_on(
                        KernelBackend::Scalar, &scan_data, &mut max_ref).unwrap();
                }
                for &be in &backends {
                    let mut sum_be = vec![0.0; target.size()];
                    let mut max_be = vec![0.0; target.size()];
                    for &r in &ranges {
                        let (_, plan) = graph.ranged_plan(t, r).expect("cross-domain task");
                        plan.marginalize_sum_into_on(be, &scan_data, &mut sum_be).unwrap();
                        plan.marginalize_max_into_on(be, &scan_data, &mut max_be).unwrap();
                    }
                    prop_assert_eq!(
                        bits(&sum_ref), bits(&sum_be),
                        "sum δ={} backend={}", delta, be.name()
                    );
                    prop_assert_eq!(
                        bits(&max_ref), bits(&max_be),
                        "max δ={} backend={}", delta, be.name()
                    );
                }
            }
        }
    }

    /// Plan-driven execution is bitwise invariant across thread counts
    /// and δ: whatever backend a build selects, concurrency must not
    /// perturb a single bit of the calibrated tables.
    #[test]
    fn plan_execution_is_thread_count_invariant(
        seed in 0u64..5000,
        n in 3usize..24,
        w in 3usize..7,
        k in 1usize..4,
        delta_idx in 0usize..4,
    ) {
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let jt = materialize(&shape, seed);
        let delta = DELTAS[delta_idx];
        let reference = SequentialEngine
            .propagate(&jt, &EvidenceSet::new())
            .expect("sequential");
        // One-thread partitioned run: partials fold in part order, so
        // it differs from the unpartitioned pass only by float
        // reassociation — bounded — but is the exact-bits baseline for
        // every other thread count.
        let baseline = CollaborativeEngine::new(
            SchedulerConfig::with_threads(1).with_delta(delta))
            .propagate(&jt, &EvidenceSet::new())
            .expect("collaborative baseline");
        prop_assert!(baseline.max_relative_divergence(&reference) < 1e-9);
        for threads in THREADS {
            let got = CollaborativeEngine::new(
                SchedulerConfig::with_threads(threads).with_delta(delta))
                .propagate(&jt, &EvidenceSet::new())
                .expect("collaborative");
            // divergence is exactly 0.0 only when every entry matches
            // bitwise (partials always fold in part order)
            prop_assert_eq!(
                got.max_relative_divergence(&baseline), 0.0,
                "threads={} δ={}", threads, delta
            );
        }
    }
}
