//! Property tests for incremental evidence-propagation sessions:
//! random junction trees × random evidence-delta sequences, every
//! incremental posterior checked against a fresh sequential
//! propagation under the session's full logical evidence.

use evprop::core::{CompiledModel, Engine, SequentialEngine, ShardState};
use evprop::incremental::{IncrementalSession, QueryMode};
use evprop::potential::{EvidenceSet, VarId};
use evprop::sched::SchedulerConfig;
use evprop::workloads::{materialize, random_tree, TreeParams};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random trees, random observe/retract churn, thread counts
    /// 1/2/4/8: the session's posteriors stay within 1e-9 of a fresh
    /// sequential engine at every step, whichever mode (cached,
    /// incremental slice, or fallback) answered the query.
    #[test]
    fn incremental_session_matches_fresh_sequential(
        seed in 0u64..5000,
        n in 4usize..24,
        w in 3usize..6,
        k in 1usize..4,
        threads_idx in 0usize..4,
        deltas in proptest::collection::vec((0usize..256, 0usize..3), 1..10),
    ) {
        let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
        let jt = materialize(&shape, seed);
        let model = Arc::new(CompiledModel::from_junction_tree(jt));
        let shard = ShardState::new(SchedulerConfig::with_threads(
            THREAD_COUNTS[threads_idx],
        ));
        let mut session = IncrementalSession::new(Arc::clone(&model));

        let vars: Vec<VarId> = shape
            .domains()
            .iter()
            .flat_map(|d| d.var_ids())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();

        let mut ev = EvidenceSet::new();
        // Effective-delta tracking: after a purely *additive* delta
        // (new-variable observation) the next query on a resident
        // session must take the incremental path — additions only grow
        // separator zero sets, so the zero-separator fallback cannot
        // legitimately fire. After a *reviving* delta (retraction or
        // state change) the fallback is permitted.
        let (mut pending, mut reviving) = (false, false);
        for (raw_var, action) in deltas {
            let var = vars[raw_var % vars.len()];
            match action {
                0 | 1 => {
                    let prior = ev.state_of(var);
                    if prior != Some(action) {
                        pending = true;
                        reviving |= prior.is_some();
                    }
                    session.observe(var, action).unwrap();
                    ev.observe(var, action);
                }
                _ => {
                    let got = session.retract(var);
                    prop_assert_eq!(got, ev.retract(var));
                    if got.is_some() {
                        pending = true;
                        reviving = true;
                    }
                }
            }
            // One fresh ground-truth propagation per delta, compared
            // against a spread of session queries.
            let cal = SequentialEngine
                .propagate_graph(model.junction_tree(), model.graph(), &ev)
                .unwrap();
            for v in vars.iter().step_by(3).copied() {
                if ev.state_of(v).is_some() {
                    continue;
                }
                let had_state = session.has_resident_state();
                let (got, mode) = session.query(&shard, v).unwrap();
                if pending {
                    if had_state && !reviving {
                        prop_assert!(
                            matches!(mode, QueryMode::Incremental { .. }),
                            "first query after an additive delta took {mode:?}"
                        );
                    }
                    pending = false;
                    reviving = false;
                }
                let want = cal.marginal(v).unwrap();
                for (g, w) in got.data().iter().zip(want.data()) {
                    prop_assert!(
                        (g - w).abs() < 1e-9,
                        "posterior of {:?} diverged in mode {:?}: {:?} vs {:?}",
                        v, mode, got.data(), want.data()
                    );
                }
            }
        }
    }
}
