//! Statistical cross-validation at scales the exact joint oracle cannot
//! reach: junction-tree posteriors vs forward-sampling estimates on a
//! 30-variable network (joint would need 2³⁰ entries).

use evprop::bayesnet::{random_network, ForwardSampler, RandomNetworkConfig};
use evprop::core::{CollaborativeEngine, InferenceSession};
use evprop::potential::{EvidenceSet, VarId};

#[test]
fn engine_matches_sampler_on_large_network() {
    let cfg = RandomNetworkConfig {
        num_vars: 30,
        max_parents: 2,
        cardinality: (2, 2),
        seed: 99,
    };
    let net = random_network(&cfg).expect("generator produces valid networks");
    let session = InferenceSession::from_network(&net).expect("network compiles");
    let engine = CollaborativeEngine::with_threads(4);
    let calibrated = session
        .propagate(&engine, &EvidenceSet::new())
        .expect("propagation succeeds");

    let mut sampler = ForwardSampler::new(&net, 5);
    const N: usize = 40_000;
    // collect all samples once, tally every variable
    let mut counts = vec![[0u32; 2]; 30];
    for _ in 0..N {
        let s = sampler.sample();
        for (v, &st) in s.iter().enumerate() {
            counts[v][st] += 1;
        }
    }

    for v in 0..30u32 {
        let exact = calibrated.marginal(VarId(v)).expect("marginal exists");
        let est = counts[v as usize][1] as f64 / N as f64;
        // SE ≤ 0.0025 at N = 40k; allow 5σ
        assert!(
            (exact.data()[1] - est).abs() < 0.0125,
            "V{v}: exact {} vs sampled {est}",
            exact.data()[1]
        );
    }
}

#[test]
fn conditional_query_matches_rejection_sampling() {
    // small evidence set, rejection sampling as the independent oracle
    let cfg = RandomNetworkConfig {
        num_vars: 14,
        max_parents: 3,
        cardinality: (2, 2),
        seed: 4,
    };
    let net = random_network(&cfg).expect("valid network");
    let session = InferenceSession::from_network(&net).expect("compiles");
    let ev_var = VarId(13);
    let query = VarId(2);
    let mut ev = EvidenceSet::new();
    ev.observe(ev_var, 1);
    let exact = session
        .propagate(&CollaborativeEngine::with_threads(2), &ev)
        .expect("runs")
        .marginal(query)
        .expect("marginal");

    let mut sampler = ForwardSampler::new(&net, 21);
    let (mut hits, mut kept) = (0u32, 0u32);
    for _ in 0..120_000 {
        let s = sampler.sample();
        if s[ev_var.index()] == 1 {
            kept += 1;
            hits += u32::from(s[query.index()] == 1);
        }
    }
    assert!(kept > 2_000, "evidence too rare for this test ({kept})");
    let est = hits as f64 / kept as f64;
    let se = (est * (1.0 - est) / kept as f64).sqrt();
    assert!(
        (exact.data()[1] - est).abs() < 6.0 * se + 0.005,
        "exact {} vs rejection {est} (kept {kept})",
        exact.data()[1]
    );
}
