//! Property tests for the serving path: a pooled session must behave
//! like a pure function of (network, query) — no state may leak from
//! one query into the next through the recycled arenas or the resident
//! workers.

use evprop::bayesnet::{random_network, RandomNetworkConfig};
use evprop::core::{InferenceSession, Query, QueryBatch, SequentialEngine};
use evprop::potential::{EvidenceSet, VarId};
use evprop::sched::SchedulerConfig;
use evprop::serve::{RuntimeConfig, ShardedRuntime};
use proptest::prelude::*;

/// Deterministically expands draw values into a query sequence over a
/// network with `n_vars` variables.
fn make_queries(net: &evprop::bayesnet::BayesianNetwork, draws: &[usize]) -> QueryBatch {
    let n_vars = net.num_vars();
    draws
        .iter()
        .map(|&d| {
            let target = VarId((d % n_vars) as u32);
            let mut ev = EvidenceSet::new();
            let obs = VarId(((d / 7) % n_vars) as u32);
            if obs != target && d % 3 != 0 {
                ev.observe(obs, (d / 11) % net.var(obs).cardinality());
            }
            Query::new(target, ev)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same pooled session answering the same randomized query
    /// sequence twice yields bit-identical posteriors (warm arenas and
    /// resident workers included), and both passes agree with the
    /// sequential engine.
    #[test]
    fn pooled_serving_is_stateless_across_queries(
        seed in 0u64..5000,
        n_vars in 4usize..10,
        max_parents in 1usize..4,
        threads in 1usize..4,
        draws in proptest::collection::vec(0usize..10_000, 3..10),
    ) {
        let cfg = RandomNetworkConfig {
            num_vars: n_vars,
            max_parents,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let session = InferenceSession::from_network(&net).expect("compiles");
        // δ-partitioning off: partial-table combination order is the one
        // nondeterministic float reduction, and bit-identity is the point
        session.pooled_engine_with(
            SchedulerConfig::with_threads(threads).without_partitioning(),
        );
        let queries = make_queries(&net, &draws);

        let serve = |qs: &QueryBatch| -> Vec<Option<Vec<f64>>> {
            qs.iter()
                .map(|q| {
                    session
                        .posterior_pooled(q.target, &q.evidence)
                        .ok()
                        .map(|t| t.data().to_vec())
                })
                .collect()
        };
        let first = serve(&queries);
        let second = serve(&queries);
        prop_assert_eq!(&first, &second, "state leaked between queries");

        for (q, got) in queries.iter().zip(&first) {
            let want = session.posterior(&SequentialEngine, q.target, &q.evidence);
            match (got, want) {
                (Some(g), Ok(w)) => {
                    for (a, b) in g.iter().zip(w.data()) {
                        prop_assert!((a - b).abs() < 1e-9, "diverges from sequential");
                    }
                }
                (None, Err(_)) => {} // both reject (impossible evidence)
                (g, w) => prop_assert!(
                    false,
                    "pooled and sequential disagree on answerability: {:?} vs {:?}",
                    g.is_some(),
                    w.is_ok()
                ),
            }
        }
    }

    /// `posterior_batch` is equivalent to issuing the queries one at a
    /// time on the same session.
    #[test]
    fn batch_equals_individual_queries(
        seed in 0u64..5000,
        n_vars in 4usize..8,
        draws in proptest::collection::vec(0usize..10_000, 2..6),
    ) {
        let cfg = RandomNetworkConfig {
            num_vars: n_vars,
            max_parents: 2,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let session = InferenceSession::from_network(&net).expect("compiles");
        session.pooled_engine_with(SchedulerConfig::with_threads(2).without_partitioning());
        let queries = make_queries(&net, &draws);
        // keep only answerable queries: the batch API aborts on error
        let queries: QueryBatch = queries
            .into_iter()
            .filter(|q| session.posterior_pooled(q.target, &q.evidence).is_ok())
            .collect();
        prop_assume!(!queries.is_empty());

        let batch = session.posterior_batch(&queries).expect("all answerable");
        prop_assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            let single = session.posterior_pooled(q.target, &q.evidence).unwrap();
            prop_assert_eq!(got.data(), single.data());
        }
    }

    /// A [`ShardedRuntime`] with K shards answering a randomized query
    /// mix — interleaved across shards however the dispatchers race —
    /// returns marginals bit-identical to the [`SequentialEngine`],
    /// regardless of shard count, micro-batch size, or the concurrent
    /// submission order.
    #[test]
    fn sharded_runtime_is_bit_identical_to_sequential(
        seed in 0u64..5000,
        n_vars in 4usize..10,
        shards in 1usize..4,
        threads_per_shard in 1usize..3,
        max_batch in 1usize..5,
        draws in proptest::collection::vec(0usize..10_000, 4..12),
    ) {
        let cfg = RandomNetworkConfig {
            num_vars: n_vars,
            max_parents: 2,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let session = InferenceSession::from_network(&net).expect("compiles");
        // The runtime re-roots identically (same Algorithm 1 on the
        // same tree), so sequential answers are comparable bit-for-bit.
        let reference = InferenceSession::from_network(&net).expect("compiles");
        let rt = ShardedRuntime::new(
            session,
            RuntimeConfig::new(shards, threads_per_shard)
                .without_partitioning()
                .with_max_batch(max_batch),
        );
        let queries = make_queries(&net, &draws);

        // Submit everything up front: jobs pile into the admission
        // queue and the K dispatchers race for micro-batches, so the
        // per-shard interleaving varies run to run. Answers must not.
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| rt.submit(q.clone()).expect("runtime accepting"))
            .collect();
        for (q, ticket) in queries.iter().zip(tickets) {
            let got = ticket.wait();
            let want = reference.posterior(&SequentialEngine, q.target, &q.evidence);
            match (got, want) {
                (Ok(g), Ok(w)) => prop_assert_eq!(
                    g.data(), w.data(),
                    "shard answer diverged from sequential"
                ),
                (Err(_), Err(_)) => {} // both reject (impossible evidence)
                (g, w) => prop_assert!(
                    false,
                    "sharded and sequential disagree on answerability: {:?} vs {:?}",
                    g.is_ok(),
                    w.is_ok()
                ),
            }
        }
        let stats = rt.stats();
        prop_assert_eq!(stats.served, queries.len() as u64);
        prop_assert!(stats.queue_high_water <= rt.config().queue_depth);
    }
}
