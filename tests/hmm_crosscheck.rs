//! Junction-tree engines vs the classic HMM algorithms on deep unrolled
//! chains — an *independent* oracle at depths the joint table cannot
//! reach (120 variables here), and exactly the long-critical-path regime
//! the paper's rerooting analysis targets.

use evprop::bayesnet::HiddenMarkovModel;
use evprop::core::{CollaborativeEngine, Engine, InferenceSession, SequentialEngine};
use evprop::potential::EvidenceSet;

const STEPS: usize = 60;

fn setup() -> (HiddenMarkovModel, InferenceSession, Vec<usize>, EvidenceSet) {
    let hmm = HiddenMarkovModel::random(3, 4, 77);
    let net = hmm.unroll(STEPS).expect("unrolls");
    let session = InferenceSession::from_network(&net).expect("compiles");
    // a deterministic pseudo-random observation sequence
    let obs: Vec<usize> = (0..STEPS).map(|t| (t * 7 + 3) % 4).collect();
    let mut ev = EvidenceSet::new();
    for (t, &o) in obs.iter().enumerate() {
        ev.observe(HiddenMarkovModel::observed_var(t), o);
    }
    (hmm, session, obs, ev)
}

#[test]
fn smoothing_matches_forward_backward() {
    let (hmm, session, obs, ev) = setup();
    let (gamma, likelihood) = hmm.smooth(&obs);
    for engine in [
        &SequentialEngine as &dyn Engine,
        &CollaborativeEngine::with_threads(4) as &dyn Engine,
    ] {
        let cal = session.propagate(engine, &ev).expect("propagates");
        // observation likelihood agrees (relative: it underflows absolute)
        let pe = cal.probability_of_evidence();
        assert!(
            ((pe - likelihood) / likelihood).abs() < 1e-6,
            "engine {}: P(o) {pe:e} vs {likelihood:e}",
            engine.name()
        );
        // smoothed hidden posteriors at every step
        for (t, g) in gamma.iter().enumerate() {
            let m = cal
                .marginal(HiddenMarkovModel::hidden_var(t))
                .expect("hidden marginal");
            for (i, &want) in g.iter().enumerate() {
                assert!(
                    (m.data()[i] - want).abs() < 1e-8,
                    "engine {} t={t} state={i}: {} vs {want}",
                    engine.name(),
                    m.data()[i]
                );
            }
        }
    }
}

#[test]
fn mpe_matches_viterbi() {
    let (hmm, session, obs, ev) = setup();
    let (path, p_viterbi) = hmm.viterbi(&obs);
    let mpe = session
        .most_probable_explanation(&CollaborativeEngine::with_threads(2), &ev)
        .expect("mpe");
    // joint max probabilities agree relatively (tiny absolute values)
    assert!(
        ((mpe.probability - p_viterbi) / p_viterbi).abs() < 1e-6,
        "P {:e} vs viterbi {:e}",
        mpe.probability,
        p_viterbi
    );
    // the decoded hidden path matches Viterbi's (strict inequality in the
    // DP makes ties essentially impossible with random parameters)
    for (t, &want) in path.iter().enumerate() {
        assert_eq!(
            mpe.state_of(HiddenMarkovModel::hidden_var(t)),
            Some(want),
            "t = {t}"
        );
    }
}

#[test]
fn collect_only_filtering_query() {
    // a filtering-style query: posterior of the LAST hidden state; the
    // collect-only path re-roots at its clique and halves the work
    let (hmm, session, obs, ev) = setup();
    let (gamma, _) = hmm.smooth(&obs);
    let last = HiddenMarkovModel::hidden_var(STEPS - 1);
    let fast = session
        .posterior_collect_only(&SequentialEngine, last, &ev)
        .expect("collect-only");
    for (i, &want) in gamma[STEPS - 1].iter().enumerate() {
        assert!((fast.data()[i] - want).abs() < 1e-8, "state {i}");
    }
}
