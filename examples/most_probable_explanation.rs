//! Most-probable-explanation (MPE) queries: the same parallel task-DAG
//! machinery running Dawid max-propagation instead of sum-propagation —
//! demonstrating the paper's claim that the scheduler covers a class of
//! DAG-structured computations, not one algorithm.
//!
//! ```sh
//! cargo run --release --example most_probable_explanation
//! ```

use evprop::bayesnet::networks::{asia, asia_vars};
use evprop::core::{CollaborativeEngine, EngineError, InferenceSession};
use evprop::potential::EvidenceSet;

fn main() -> Result<(), EngineError> {
    let net = asia();
    let session = InferenceSession::from_network(&net)?;
    let engine = CollaborativeEngine::with_threads(4);
    let (asia_trip, tub, smoke, lung, bronc, either, xray, dysp) = asia_vars();
    let names = [
        (asia_trip, "visited-asia"),
        (tub, "tuberculosis"),
        (smoke, "smoker"),
        (lung, "lung-cancer"),
        (bronc, "bronchitis"),
        (either, "tb-or-cancer"),
        (xray, "abnormal-xray"),
        (dysp, "dyspnoea"),
    ];

    // A patient presents with shortness of breath and an abnormal x-ray.
    let mut ev = EvidenceSet::new();
    ev.observe(dysp, 1);
    ev.observe(xray, 1);

    let mpe = session.most_probable_explanation(&engine, &ev)?;
    println!(
        "most probable joint explanation (P = {:.3e}):",
        mpe.probability
    );
    for (var, name) in names {
        let state = mpe.state_of(var).expect("all variables assigned");
        let mark = if ev.state_of(var).is_some() {
            " (observed)"
        } else {
            ""
        };
        println!(
            "  {name:<14} = {}{}",
            if state == 1 { "yes" } else { "no" },
            mark
        );
    }

    // Contrast with the per-variable posteriors: the MPE is a *joint*
    // argmax and may disagree with maximizing each marginal separately.
    let calibrated = session.propagate(&engine, &ev)?;
    println!("\nper-variable posteriors for comparison:");
    for (var, name) in names {
        let m = calibrated.marginal(var)?;
        println!("  P({name:<14}| e) = {:.4}", m.data()[1]);
    }
    Ok(())
}
