//! Scaling study on a generated junction tree: real threads on this
//! machine, plus the discrete-event simulator's 1–8-virtual-core curve.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use evprop::core::{CollaborativeEngine, Engine, EngineError, InferenceSession};
use evprop::potential::EvidenceSet;
use evprop::sched::SchedulerConfig;
use evprop::simcore::{simulate, CostModel, Policy};
use evprop::taskgraph::TaskGraph;
use evprop::workloads::{materialize, random_tree, TreeParams};
use std::time::Instant;

fn main() -> Result<(), EngineError> {
    // A 128-clique tree with 4096-entry tables: big enough to measure,
    // small enough for any laptop.
    let params = TreeParams::new(128, 12, 2, 4).with_seed(42);
    let shape = random_tree(&params);
    let jt = materialize(&shape, 7);
    println!(
        "workload: {} cliques, width {}, {:.1} MB of tables",
        shape.num_cliques(),
        shape.max_width(),
        shape.total_state_space() as f64 * 8.0 / 1e6
    );

    let session = InferenceSession::from_junction_tree(jt);
    let evidence = EvidenceSet::new();

    println!(
        "\nreal threads on this host ({} hardware cores):",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut t1 = None;
    for threads in [1usize, 2, 4, 8] {
        let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(threads));
        let start = Instant::now();
        let calibrated = session.propagate(&engine, &evidence)?;
        let dt = start.elapsed();
        let report = engine.last_report().expect("a run just completed");
        t1.get_or_insert(dt);
        println!(
            "  {:>9} {threads} threads: {:>8.2?}  (imbalance {:.3}, {} tasks partitioned, P(e)={:.3e})",
            engine.name(),
            dt,
            report.imbalance(),
            report.partitioned_tasks,
            calibrated.probability_of_evidence(),
        );
    }
    println!("  (wall-clock speedup requires as many hardware cores; see the simulator below)");

    println!("\ndiscrete-event simulator, virtual cores (same task graph):");
    let graph = TaskGraph::from_shape(session.junction_tree().shape());
    let model = CostModel::default();
    let base = simulate(&graph, Policy::collaborative(), 1, &model).makespan;
    for cores in [1usize, 2, 4, 8] {
        let r = simulate(&graph, Policy::collaborative(), cores, &model);
        println!(
            "  {cores} cores: makespan {:>12} units, speedup {:.2}, overhead {:.3}%",
            r.makespan,
            base as f64 / r.makespan as f64,
            100.0 * r.total_overhead() as f64 / (r.total_busy() + r.total_overhead()) as f64,
        );
    }
    Ok(())
}
