//! The collaborative scheduler on an arbitrary DAG computation — the
//! generalization the paper's introduction promises ("the proposed
//! method can be extended for online scheduling of DAG structured
//! computations").
//!
//! The workload here is a wavefront: a 2-D dynamic-programming grid
//! (edit-distance style) where cell (i, j) depends on (i−1, j) and
//! (i, j−1). Cells along an anti-diagonal are independent, so the DAG
//! exposes parallelism that grows and shrinks as the wavefront sweeps —
//! a classic stress test for dynamic load balancing.
//!
//! ```sh
//! cargo run --release --example generic_dag
//! ```

use evprop::sched::{DagBuilder, SchedulerConfig};
use std::sync::atomic::{AtomicU64, Ordering};

const N: usize = 24;

fn main() {
    // Each cell's "computation" combines its neighbors' results; cells
    // publish through atomics since tasks run on arbitrary threads.
    let grid: Vec<AtomicU64> = (0..N * N).map(|_| AtomicU64::new(0)).collect();

    let mut dag = DagBuilder::new();
    let mut handles = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            let mut deps = Vec::new();
            if i > 0 {
                deps.push(handles[(i - 1) * N + j]);
            }
            if j > 0 {
                deps.push(handles[i * N + j - 1]);
            }
            let grid = &grid;
            // heavier cells toward the middle: uneven weights exercise
            // the least-loaded allocation heuristic
            let weight = 1 + ((i * j) % 7) as u64;
            handles.push(dag.add_task(weight, &deps, move || {
                let up = if i > 0 {
                    grid[(i - 1) * N + j].load(Ordering::Acquire)
                } else {
                    0
                };
                let left = if j > 0 {
                    grid[i * N + j - 1].load(Ordering::Acquire)
                } else {
                    0
                };
                // toy recurrence: min-plus with a position-dependent cost
                let cost = ((i * 31 + j * 17) % 10) as u64;
                let v = up.min(left) + cost + 1;
                grid[i * N + j].store(v, Ordering::Release);
            }));
        }
    }

    println!("wavefront DAG: {} tasks over a {N}x{N} grid", dag.len());
    let report = dag.run(&SchedulerConfig::with_threads(4));
    let answer = grid[N * N - 1].load(Ordering::Relaxed);
    println!("dp[{},{}] = {answer}", N - 1, N - 1);

    // sequential reference
    let mut seq = vec![0u64; N * N];
    for i in 0..N {
        for j in 0..N {
            let up = if i > 0 { seq[(i - 1) * N + j] } else { 0 };
            let left = if j > 0 { seq[i * N + j - 1] } else { 0 };
            let cost = ((i * 31 + j * 17) % 10) as u64;
            seq[i * N + j] = up.min(left) + cost + 1;
        }
    }
    assert_eq!(
        answer,
        seq[N * N - 1],
        "parallel result must match sequential"
    );
    println!("matches the sequential recurrence");

    for (t, stats) in report.threads.iter().enumerate() {
        println!(
            "  thread {t}: {} tasks, weight {}",
            stats.tasks_executed, stats.weight_executed
        );
    }
    println!(
        "wall: {:?}, load imbalance {:.3}",
        report.wall,
        report.imbalance()
    );
}
