//! Quickstart: build a Bayesian network, compile it to a junction tree,
//! and run parallel exact inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use evprop::bayesnet::BayesianNetworkBuilder;
use evprop::core::{CollaborativeEngine, EngineError, InferenceSession, SequentialEngine};
use evprop::potential::EvidenceSet;

fn main() -> Result<(), EngineError> {
    // The classic sprinkler model, built by hand:
    //   Cloudy → Sprinkler, Cloudy → Rain, {Sprinkler, Rain} → WetGrass.
    let mut b = BayesianNetworkBuilder::new();
    let cloudy = b.add_variable(2);
    let sprinkler = b.add_variable(2);
    let rain = b.add_variable(2);
    let wet = b.add_variable(2);
    b.set_prior(cloudy, vec![0.5, 0.5]).expect("valid prior");
    b.set_cpt(sprinkler, &[cloudy], vec![vec![0.5, 0.5], vec![0.9, 0.1]])
        .expect("valid CPT");
    b.set_cpt(rain, &[cloudy], vec![vec![0.8, 0.2], vec![0.2, 0.8]])
        .expect("valid CPT");
    b.set_cpt(
        wet,
        &[sprinkler, rain],
        vec![
            vec![1.0, 0.0],
            vec![0.1, 0.9],
            vec![0.1, 0.9],
            vec![0.01, 0.99],
        ],
    )
    .expect("valid CPT");
    let net = b.build().expect("acyclic, fully specified");

    // Compile to a junction tree; the session re-roots it with the
    // paper's Algorithm 1 and prebuilds the task dependency graph.
    let session = InferenceSession::from_network(&net)?;
    println!(
        "junction tree: {} cliques, task graph: {} tasks, critical path {} units",
        session.junction_tree().num_cliques(),
        session.task_graph().num_tasks(),
        session.root_choice().critical_path,
    );

    // Observe wet grass; ask for P(Rain | WetGrass = true).
    let mut evidence = EvidenceSet::new();
    evidence.observe(wet, 1);

    let sequential = session.posterior(&SequentialEngine, rain, &evidence)?;
    let parallel = session.posterior(&CollaborativeEngine::with_threads(4), rain, &evidence)?;

    println!(
        "P(Rain | WetGrass)   sequential: {:.4}   collaborative(4 threads): {:.4}",
        sequential.data()[1],
        parallel.data()[1],
    );
    assert!((sequential.data()[1] - parallel.data()[1]).abs() < 1e-12);
    assert!((sequential.data()[1] - 0.7079).abs() < 5e-4);
    println!("engines agree; textbook value 0.7079 reproduced");
    Ok(())
}
