//! Junction-tree rerooting (the paper's §4) in action: build the Fig. 4
//! template, minimize the critical path with Algorithm 1, and watch the
//! simulated propagation speed up.
//!
//! ```sh
//! cargo run --release --example rerooting
//! ```

use evprop::jtree::{critical_path_weight, select_root, select_root_naive};
use evprop::simcore::{simulate, CostModel, Policy};
use evprop::taskgraph::TaskGraph;
use evprop::workloads::fig4_template;
use std::time::Instant;

fn main() {
    let model = CostModel::default();
    for b in [1usize, 2, 4, 8] {
        // 512 cliques of 15 binary variables, b+1 branches (Fig. 4).
        let shape = fig4_template(b, 512, 15);
        let original_cp = critical_path_weight(&shape);

        let t0 = Instant::now();
        let fast = select_root(&shape);
        let fast_time = t0.elapsed();
        let t0 = Instant::now();
        let naive = select_root_naive(&shape);
        let naive_time = t0.elapsed();
        assert_eq!(fast.critical_path, naive.critical_path);

        let mut rerooted = shape.clone();
        rerooted.reroot(fast.root).expect("root is in range");

        println!(
            "b+1 = {} branches: critical path {} -> {} (x{:.2}); \
             Algorithm 1 took {:.1?} vs naive {:.1?}",
            b + 1,
            original_cp,
            fast.critical_path,
            original_cp as f64 / fast.critical_path as f64,
            fast_time,
            naive_time,
        );

        // Fig. 5: evidence-propagation speedup due to rerooting, with the
        // Partition module disabled, on 1..8 virtual cores.
        let g_orig = TaskGraph::from_shape(&shape);
        let g_new = TaskGraph::from_shape(&rerooted);
        print!("    rerooting speedup by cores:");
        for cores in [1usize, 2, 4, 8] {
            let t_orig = simulate(
                &g_orig,
                Policy::collaborative_unpartitioned(),
                cores,
                &model,
            );
            let t_new = simulate(&g_new, Policy::collaborative_unpartitioned(), cores, &model);
            print!(
                "  P={cores}: {:.2}",
                t_orig.makespan as f64 / t_new.makespan as f64
            );
        }
        println!();
    }
}
