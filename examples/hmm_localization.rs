//! Hidden-Markov-model smoothing through the junction-tree engines: a
//! 1-D robot-localization flavor where the classic forward–backward
//! recursion double-checks the parallel propagation at every step.
//!
//! ```sh
//! cargo run --release --example hmm_localization
//! ```

use evprop::bayesnet::HiddenMarkovModel;
use evprop::core::{CollaborativeEngine, EngineError, InferenceSession};
use evprop::potential::EvidenceSet;

const CELLS: usize = 5; // positions along a corridor
const STEPS: usize = 12;

fn main() -> Result<(), EngineError> {
    // Motion model: mostly stay or move right; sensor reads the cell
    // with 70% accuracy, spilling to neighbors.
    let mut a = vec![vec![0.0f64; CELLS]; CELLS];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 0.4;
        row[(i + 1) % CELLS] = 0.5;
        row[(i + CELLS - 1) % CELLS] += 0.1;
    }
    let mut b = vec![vec![0.0f64; CELLS]; CELLS];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 0.7;
        row[(i + 1) % CELLS] += 0.15;
        row[(i + CELLS - 1) % CELLS] += 0.15;
    }
    let pi = vec![1.0 / CELLS as f64; CELLS];
    let hmm = HiddenMarkovModel::new(pi, a, b);

    // The robot actually sweeps right; sensors are noisy around that.
    let readings: Vec<usize> = (0..STEPS)
        .map(|t| (t + usize::from(t % 4 == 2)) % CELLS)
        .collect();
    println!("sensor readings: {readings:?}");

    // junction-tree smoothing over the unrolled 2·T-variable network
    let net = hmm.unroll(STEPS).expect("valid HMM parameters unroll");
    let session = InferenceSession::from_network(&net)?;
    let mut ev = EvidenceSet::new();
    for (t, &o) in readings.iter().enumerate() {
        ev.observe(HiddenMarkovModel::observed_var(t), o);
    }
    let calibrated = session.propagate(&CollaborativeEngine::with_threads(4), &ev)?;

    // classic forward–backward as the reference
    let (gamma, likelihood) = hmm.smooth(&readings);
    println!("P(readings) = {likelihood:.3e}\n");
    println!("smoothed position posteriors (junction tree | forward-backward):");
    #[allow(clippy::needless_range_loop)]
    for t in 0..STEPS {
        let m = calibrated.marginal(HiddenMarkovModel::hidden_var(t))?;
        let jt_best = (0..CELLS)
            .max_by(|&x, &y| m.data()[x].total_cmp(&m.data()[y]))
            .expect("nonempty");
        let fb_best = (0..CELLS)
            .max_by(|&x, &y| gamma[t][x].total_cmp(&gamma[t][y]))
            .expect("nonempty");
        assert_eq!(jt_best, fb_best);
        let bar: String = (0..(m.data()[jt_best] * 30.0) as usize)
            .map(|_| '#')
            .collect();
        println!(
            "  t={t:>2}: cell {jt_best} ({:.3} | {:.3}) {bar}",
            m.data()[jt_best],
            gamma[t][fb_best]
        );
        for i in 0..CELLS {
            assert!((m.data()[i] - gamma[t][i]).abs() < 1e-9);
        }
    }
    println!("\njunction-tree and forward-backward posteriors agree at every step");
    Ok(())
}
