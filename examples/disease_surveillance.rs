//! Large-scale noisy-OR diagnosis (QMR-style): 30 diseases, 80 symptoms
//! — a joint distribution of 2¹¹⁰ states, hopeless for brute force, easy
//! for junction-tree propagation.
//!
//! Demonstrates the full pipeline on a network class the paper's
//! introduction motivates (medical diagnosis / consumer help desks), plus
//! the collect-only fast path and the triangulation-heuristic choice.
//!
//! ```sh
//! cargo run --release --example disease_surveillance
//! ```

use evprop::bayesnet::{qmr_network, QmrConfig};
use evprop::core::{CollaborativeEngine, EngineError, InferenceSession};
use evprop::jtree::{EliminationHeuristic, JunctionTree};
use evprop::potential::{EvidenceSet, VarId};
use std::time::Instant;

fn main() -> Result<(), EngineError> {
    let cfg = QmrConfig {
        diseases: 30,
        symptoms: 80,
        parents_per_symptom: 3,
        seed: 2026,
    };
    let net = qmr_network(&cfg).expect("generator yields valid networks");
    println!(
        "QMR-style network: {} diseases, {} symptoms, {} edges",
        cfg.diseases,
        cfg.symptoms,
        net.num_edges()
    );

    // compare triangulation heuristics
    for (name, h) in [
        ("min-fill", EliminationHeuristic::MinFill),
        ("min-degree", EliminationHeuristic::MinDegree),
    ] {
        let jt = JunctionTree::from_network_with(&net, h)?;
        println!(
            "  {name:<10}: {} cliques, max width {}, {:.1} KB of tables",
            jt.num_cliques(),
            jt.shape().max_width(),
            jt.shape().total_state_space() as f64 * 8.0 / 1e3,
        );
    }

    let session = InferenceSession::from_network(&net)?;
    let engine = CollaborativeEngine::with_threads(4);

    // a patient presents with five symptoms
    let mut ev = EvidenceSet::new();
    for s in [0u32, 7, 13, 21, 40] {
        ev.observe(VarId(cfg.diseases as u32 + s), 1);
    }

    let t0 = Instant::now();
    let calibrated = session.propagate(&engine, &ev)?;
    let full_time = t0.elapsed();

    // rank diseases by posterior
    let mut ranked: Vec<(u32, f64)> = (0..cfg.diseases as u32)
        .map(|d| {
            let m = calibrated.marginal(VarId(d)).expect("disease marginal");
            (d, m.data()[1])
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop diagnoses given 5 observed symptoms ({full_time:?} full calibration):");
    for (d, p) in ranked.iter().take(5) {
        println!("  disease {d:>2}: P = {p:.4}");
    }

    // the collect-only fast path answers a single query with half the work
    let t0 = Instant::now();
    let fast = session.posterior_collect_only(&engine, VarId(ranked[0].0), &ev)?;
    let fast_time = t0.elapsed();
    println!(
        "\ncollect-only query of the top disease: P = {:.4} in {fast_time:?}",
        fast.data()[1]
    );
    assert!((fast.data()[1] - ranked[0].1).abs() < 1e-9);

    // most probable joint explanation of the presentation
    let mpe = session.most_probable_explanation(&engine, &ev)?;
    let active: Vec<u32> = (0..cfg.diseases as u32)
        .filter(|&d| mpe.state_of(VarId(d)) == Some(1))
        .collect();
    println!(
        "\nMPE: {} disease(s) active {:?}, P = {:.3e}",
        active.len(),
        active,
        mpe.probability
    );
    Ok(())
}
