//! End-to-end serving demo: boot the sharded runtime behind the TCP
//! front-end, then talk to it like any external client would — one
//! JSON request per line, one JSON response per line.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! In production the server side is `evprop serve net.bif --listen
//! 0.0.0.0:7878 --shards 4` and the client is anything that can speak
//! newline-delimited JSON over TCP (`nc`, a browser backend, the
//! bundled `evprop-loadgen`).

use evprop::bayesnet::networks;
use evprop::core::{InferenceSession, Query};
use evprop::potential::{EvidenceSet, VarId};
use evprop::serve::{NumericNames, RuntimeConfig, ShardedRuntime, TcpServer};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: compile the Asia network once, shard the serving
    // capacity 2 × 1 (two concurrent queries), bind an ephemeral port.
    let session = InferenceSession::from_network(&networks::asia())?;
    let runtime = Arc::new(ShardedRuntime::new(session, RuntimeConfig::new(2, 1)));
    let names = Arc::new(NumericNames::of(&networks::asia()));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&runtime), names)?;
    println!("server listening on {}", server.local_addr());

    // Client side: a plain TcpStream speaking the line protocol.
    let stream = TcpStream::connect(server.local_addr())?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    for request in [
        // P(lung cancer | dyspnoea)  — variables addressed as v<i>
        r#"{"target": "v3", "evidence": {"v7": 1}}"#,
        // soft evidence: a noisy X-ray detector
        r#"{"target": "v3", "likelihood": {"v6": [0.4, 0.8]}}"#,
        // opt-in timing: the response grows queue_us/exec_us/shard
        r#"{"target": "v3", "evidence": {"v7": 1}, "timing": true}"#,
        // malformed on purpose: the server answers with an error line
        r#"{"target": "not_a_variable"}"#,
        // introspection commands: live stats and recent-query timings
        r#"{"cmd": "stats"}"#,
        r#"{"cmd": "trace"}"#,
    ] {
        writeln!(writer, "{request}")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        println!("request : {request}");
        println!("response: {}", response.trim_end());
    }

    // The same queries are also available in-process, skipping TCP:
    let mut ev = EvidenceSet::new();
    ev.observe(VarId(7), 1);
    let marginal = runtime.query(Query::new(VarId(3), ev))?;
    println!("in-process marginal: {:?}", marginal.data());

    let stats = runtime.stats();
    println!(
        "served {} queries across {} shards (p50 {:?}, p99 {:?})",
        stats.served,
        stats.shards.len(),
        stats.p50,
        stats.p99
    );
    server.stop();
    runtime.shutdown();
    Ok(())
}
