//! Medical diagnosis with the Lauritzen–Spiegelhalter "Asia" chest
//! clinic — the domain that motivated junction-tree inference.
//!
//! Walks through a consultation: symptoms and test results arrive one at
//! a time, and the posterior over diseases is re-propagated after each.
//!
//! ```sh
//! cargo run --release --example medical_diagnosis
//! ```

use evprop::bayesnet::networks::{asia, asia_vars};
use evprop::core::{CollaborativeEngine, EngineError, InferenceSession};
use evprop::potential::{EvidenceSet, VarId};

fn report(
    session: &InferenceSession,
    engine: &CollaborativeEngine,
    ev: &EvidenceSet,
    label: &str,
) -> Result<(), EngineError> {
    let (_, tub, _, lung, bronc, ..) = asia_vars();
    let diseases: [(&str, VarId); 3] = [
        ("tuberculosis", tub),
        ("lung cancer", lung),
        ("bronchitis", bronc),
    ];
    println!("\n== {label} ==");
    let calibrated = session.propagate(engine, ev)?;
    for (name, var) in diseases {
        let m = calibrated.marginal(var)?;
        println!("  P({name:<12} | evidence) = {:.4}", m.data()[1]);
    }
    println!(
        "  P(evidence) = {:.6}",
        calibrated.probability_of_evidence()
    );
    Ok(())
}

fn main() -> Result<(), EngineError> {
    let net = asia();
    let session = InferenceSession::from_network(&net)?;
    let engine = CollaborativeEngine::with_threads(4);
    let (asia_trip, _tub, smoke, _lung, _bronc, _either, xray, dysp) = asia_vars();

    let mut ev = EvidenceSet::new();
    report(&session, &engine, &ev, "no evidence (population priors)")?;

    ev.observe(dysp, 1);
    report(&session, &engine, &ev, "patient reports dyspnoea")?;

    ev.observe(smoke, 1);
    report(&session, &engine, &ev, "... and is a smoker")?;

    ev.observe(xray, 1);
    report(&session, &engine, &ev, "... and the x-ray is abnormal")?;

    ev.observe(asia_trip, 1);
    report(
        &session,
        &engine,
        &ev,
        "... and recently visited Asia (tuberculosis prior rises)",
    )?;

    // The session was reused for five queries over four evidence sets —
    // compilation, rerooting and task-graph construction happened once.
    println!(
        "\nreused one session ({} tasks) for all queries",
        session.task_graph().num_tasks()
    );
    Ok(())
}
