//! Tracing must be an observer, never a participant: on random
//! junction trees, a propagation recorded through an attached
//! [`TraceSink`] must produce **bit-identical** tables to the same
//! propagation with no sink — recording reads the clock, it never
//! reorders, re-times, or re-folds any arithmetic.
//!
//! Also checks the analyzer's accounting against the scheduler's own
//! [`ThreadStats`]: both are fed by the same `Instant` pair per task,
//! so their per-thread busy totals must agree within 1% (the
//! acceptance bar; the deliberate design makes them agree exactly
//! whenever no ring overflow drops events).

#![cfg(feature = "trace")]

use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::{CollabPool, SchedulerConfig, TableArena};
use evprop_taskgraph::{PropagationMode, TaskGraph};
use evprop_trace::{analyze, TraceSink};
use evprop_workloads::{materialize, random_tree, TreeParams};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn traced_propagation_is_bit_identical_to_untraced(
        seed in 0u64..1_000_000,
        num_cliques in 2usize..8,
        width in 2usize..4,
        states in 2usize..4,
        degree in 1usize..4,
        threads in 1usize..5,
        delta_small in proptest::bool::ANY,
        max_mode in proptest::bool::ANY,
        stealing in proptest::bool::ANY,
        observe in proptest::bool::ANY,
    ) {
        let params = TreeParams::new(num_cliques, width, states, degree).with_seed(seed);
        let shape = random_tree(&params);
        let jt = materialize(&shape, seed);
        let mode = if max_mode {
            PropagationMode::MaxProduct
        } else {
            PropagationMode::SumProduct
        };
        let graph = TaskGraph::from_shape_mode(&shape, mode);
        let mut ev = EvidenceSet::new();
        if observe {
            ev.observe(VarId(0), (seed as usize) % states);
        }
        let mut cfg = SchedulerConfig::with_threads(threads);
        cfg.partition_threshold = Some(if delta_small { 3 } else { 4096 });
        cfg.work_stealing = stealing;

        let pool = CollabPool::new(threads);

        // Untraced run: the pool has never seen a sink.
        let plain = TableArena::initialize(&graph, jt.potentials(), &ev);
        pool.run(&graph, &plain, &cfg).expect("untraced job");
        let plain = plain.into_tables();

        // Traced run of the identical job on the same pool.
        let sink = Arc::new(TraceSink::for_workers(threads, 1 << 14));
        pool.set_trace_sink(Some(Arc::clone(&sink)));
        let traced = TableArena::initialize(&graph, jt.potentials(), &ev);
        pool.run(&graph, &traced, &cfg).expect("traced job");
        let traced = traced.into_tables();
        pool.set_trace_sink(None);

        prop_assert_eq!(plain.len(), traced.len());
        for (i, (a, b)) in plain.iter().zip(&traced).enumerate() {
            prop_assert_eq!(
                a.data(), b.data(),
                "buffer {} differs between traced and untraced runs \
                 (threads {}, stealing {})",
                i, threads, stealing
            );
        }

        // The sink actually saw the job: one Job span on the control
        // row, and at least one task span per executed task.
        let trace = sink.drain();
        let a = analyze(&trace);
        prop_assert_eq!(a.jobs, 1);
        prop_assert!(
            a.threads.iter().map(|t| t.tasks).sum::<u64>() >= graph.num_tasks() as u64,
            "fewer task spans than graph tasks"
        );
    }
}

/// Analyzer busy totals vs the scheduler's own `ThreadStats`, on a
/// bigger tree where per-thread busy time is comfortably measurable.
#[test]
fn analyzer_busy_agrees_with_thread_stats_within_one_percent() {
    let threads = 4;
    let shape = random_tree(&TreeParams::new(48, 9, 2, 3).with_seed(0xF9));
    let jt = materialize(&shape, 0xF9);
    let graph = TaskGraph::from_shape(&shape);
    let mut cfg = SchedulerConfig::with_threads(threads);
    cfg.partition_threshold = Some(4096);

    let pool = CollabPool::new(threads);
    let sink = Arc::new(TraceSink::for_workers(threads, 1 << 16));
    pool.set_trace_sink(Some(Arc::clone(&sink)));

    let runs = 3;
    let mut stats_busy = vec![0u64; threads];
    for _ in 0..runs {
        let arena = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());
        let report = pool.run(&graph, &arena, &cfg).expect("job");
        for (i, t) in report.threads.iter().enumerate() {
            stats_busy[i] += u64::try_from(t.busy.as_nanos()).unwrap();
        }
    }

    let trace = sink.drain();
    assert_eq!(trace.total_dropped(), 0, "ring overflow would skew totals");
    let a = analyze(&trace);
    for (i, &stat_ns) in stats_busy.iter().enumerate() {
        let span_ns = a.threads[i].busy_ns;
        assert!(stat_ns > 0, "thread {i} recorded no busy time");
        let dev = (span_ns as f64 - stat_ns as f64).abs() / stat_ns as f64;
        assert!(
            dev < 0.01,
            "thread {i}: analyzer busy {span_ns} ns vs ThreadStats {stat_ns} ns ({:.3}% off)",
            dev * 100.0
        );
    }
}
