//! Schedule-stress suite (`--features stress`): thousands of tiny-δ,
//! high-thread propagations on one resident [`CollabPool`], each checked
//! against the sequential oracle.
//!
//! δ = 1 with 8 workers on small tables maximizes scheduler churn —
//! every task shatters into single-entry subtasks, the ready lists stay
//! near-empty so stealing fires constantly, and the pool's serve-many
//! path (`TableArena::reset` between jobs) is exercised on every
//! iteration. With `debug_assertions` on, every window goes through the
//! arena overlap checker and every job ends with the drained-weights
//! assertion, so a single scheduling bug anywhere in thousands of
//! distinct interleavings fails the suite deterministically.
#![cfg(feature = "stress")]

use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::{CollabPool, SchedulerConfig, TableArena};
use evprop_taskgraph::{execute_full, PropagationMode, TaskGraph};
use evprop_workloads::{materialize, random_tree, TreeParams};

/// Sequential reference: all tasks in topological order on plain tables.
fn run_sequential(graph: &TaskGraph, arena: &mut TableArena) {
    let order = graph.topological_order().unwrap();
    let tables = arena.tables_mut();
    for t in order {
        execute_full(&graph.task(t).kind, tables);
    }
}

#[test]
fn thousands_of_tiny_delta_propagations_match_oracle() {
    const TREES: u64 = 8;
    const QUERIES_PER_TREE: usize = 125; // × 2 modes × 8 trees = 2000 runs

    let pool = CollabPool::new(8);
    let mut cfg = SchedulerConfig::with_threads(8);
    cfg.partition_threshold = Some(1);
    cfg.work_stealing = true;

    for tree_seed in 0..TREES {
        let params = TreeParams::new(
            3 + (tree_seed as usize % 4), // 3..=6 cliques
            2 + (tree_seed as usize % 2), // width 2..=3
            2,
            2,
        )
        .with_seed(tree_seed);
        let shape = random_tree(&params);
        let jt = materialize(&shape, tree_seed);

        for mode in [PropagationMode::SumProduct, PropagationMode::MaxProduct] {
            let graph = TaskGraph::from_shape_mode(&shape, mode);
            let mut par = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());

            for q in 0..QUERIES_PER_TREE {
                // vary the query: alternate evidence on variable 0
                let mut ev = EvidenceSet::new();
                if q % 3 != 0 {
                    ev.observe(VarId(0), q % 2);
                }

                let mut seq = TableArena::initialize(&graph, jt.potentials(), &ev);
                run_sequential(&graph, &mut seq);
                let oracle = seq.into_tables();

                par.reset(&graph, jt.potentials(), &ev);
                pool.run(&graph, &par, &cfg).expect("no worker panicked");
                // the arena outlives the job, so peek without consuming
                for (i, (want, have)) in oracle.iter().zip(par.tables_mut()).enumerate() {
                    assert!(
                        want.approx_eq(have, 1e-9),
                        "tree {tree_seed} mode {mode:?} query {q}: buffer {i} diverged"
                    );
                }
            }
        }
    }
}
