//! Property tests for the collaborative scheduler's Partition module:
//! on random junction trees, partitioned collaborative propagation must
//! match the sequential engine — and must be *deterministic* across
//! thread counts.
//!
//! Two different strengths of "match", on purpose:
//!
//! * **Max-product** (`max = true` marginalization): `max` is exact on
//!   floats, so the partitioned result is compared **bit-for-bit**
//!   against the sequential oracle.
//! * **Sum-product**: FP addition is not associative, so a partitioned
//!   sum legitimately differs from the sequential fold in the last ulps
//!   — the oracle comparison is `1e-9` relative. But because the
//!   combiner folds partials in part order (not arrival order), the
//!   collaborative result itself must be **bitwise identical across
//!   thread counts and stealing schedules** for a fixed δ; that is
//!   asserted exactly.

use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_sched::{run_collaborative, SchedulerConfig, TableArena};
use evprop_taskgraph::{execute_full, PropagationMode, TaskGraph};
use evprop_workloads::{materialize, random_tree, TreeParams};
use proptest::prelude::*;

/// Sequential reference: all tasks in topological order on plain tables.
fn run_sequential(graph: &TaskGraph, arena: &mut TableArena) {
    let order = graph.topological_order().unwrap();
    let tables = arena.tables_mut();
    for t in order {
        execute_full(&graph.task(t).kind, tables);
    }
}

/// δ values from the issue: 1 and 3 partition every table aggressively,
/// 64 partitions only the larger cliques, 4096 disables partitioning on
/// these small trees (exercising the unpartitioned `exec_full` path).
const DELTAS: [usize; 4] = [1, 3, 64, 4096];
const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partitioned_collab_matches_sequential(
        seed in 0u64..1_000_000,
        num_cliques in 2usize..8,
        width in 2usize..4,
        states in 2usize..4,
        degree in 1usize..4,
        delta_idx in 0usize..4,
        max_mode in proptest::bool::ANY,
        stealing in proptest::bool::ANY,
        observe in proptest::bool::ANY,
    ) {
        let params = TreeParams::new(num_cliques, width, states, degree).with_seed(seed);
        let shape = random_tree(&params);
        let jt = materialize(&shape, seed);
        let mode = if max_mode {
            PropagationMode::MaxProduct
        } else {
            PropagationMode::SumProduct
        };
        let graph = TaskGraph::from_shape_mode(&shape, mode);
        let mut ev = EvidenceSet::new();
        if observe {
            // variable 0 always exists (clique 0 introduces it)
            ev.observe(VarId(0), (seed as usize) % states);
        }

        let mut seq = TableArena::initialize(&graph, jt.potentials(), &ev);
        run_sequential(&graph, &mut seq);
        let oracle = seq.into_tables();

        let delta = DELTAS[delta_idx];
        let mut baseline: Option<Vec<PotentialTable>> = None;
        for &threads in &THREADS {
            let mut cfg = SchedulerConfig::with_threads(threads);
            cfg.partition_threshold = Some(delta);
            cfg.work_stealing = stealing;
            let arena = TableArena::initialize(&graph, jt.potentials(), &ev);
            run_collaborative(&graph, &arena, &cfg);
            let got = arena.into_tables();
            prop_assert_eq!(got.len(), oracle.len());

            for (i, (want, have)) in oracle.iter().zip(&got).enumerate() {
                if max_mode {
                    prop_assert_eq!(
                        want.data(), have.data(),
                        "max-mode buffer {} not bit-identical (threads {}, delta {})",
                        i, threads, delta
                    );
                } else {
                    prop_assert!(
                        want.approx_eq(have, 1e-9),
                        "sum-mode buffer {} beyond 1e-9 of oracle (threads {}, delta {})",
                        i, threads, delta
                    );
                }
            }
            match &baseline {
                None => baseline = Some(got),
                Some(base) => {
                    for (i, (a, b)) in base.iter().zip(&got).enumerate() {
                        prop_assert_eq!(
                            a.data(), b.data(),
                            "buffer {} differs across thread counts (threads {}, delta {})",
                            i, threads, delta
                        );
                    }
                }
            }
        }
    }
}
