//! Property tests for the generic DAG scheduler: random layered DAGs,
//! random thread counts, verified execution order and exactly-once
//! semantics under concurrency.

use evprop_sched::{DagBuilder, DagTaskId, SchedulerConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A random DAG description: for each task, indices of earlier tasks it
/// depends on (kept sparse).
fn arb_dag() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..60).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0usize..usize::MAX, 0..4), n).prop_map(
            |raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(i, deps)| {
                        let mut d: Vec<usize> =
                            deps.into_iter().filter(|_| i > 0).map(|x| x % i).collect();
                        d.sort_unstable();
                        d.dedup();
                        d
                    })
                    .collect()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every task runs exactly once, after all of its dependencies.
    #[test]
    fn exactly_once_and_ordered(
        dag_spec in arb_dag(),
        threads in 1usize..5,
        weights in proptest::collection::vec(1u64..100, 60),
        stealing in proptest::bool::ANY,
    ) {
        let n = dag_spec.len();
        let stamps: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let runs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let clock = AtomicUsize::new(1);

        let mut dag = DagBuilder::new();
        let mut ids: Vec<DagTaskId> = Vec::with_capacity(n);
        for (i, deps) in dag_spec.iter().enumerate() {
            let handles: Vec<DagTaskId> = deps.iter().map(|&d| ids[d]).collect();
            let stamps = &stamps;
            let runs = &runs;
            let clock = &clock;
            ids.push(dag.add_task(weights[i % weights.len()], &handles, move || {
                runs[i].fetch_add(1, Ordering::Relaxed);
                stamps[i].store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            }));
        }
        let mut cfg = SchedulerConfig::with_threads(threads);
        cfg.work_stealing = stealing;
        let report = dag.run(&cfg);

        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        prop_assert_eq!(executed, n);
        for i in 0..n {
            prop_assert_eq!(runs[i].load(Ordering::Relaxed), 1, "task {} runs once", i);
            for &d in &dag_spec[i] {
                prop_assert!(
                    stamps[d].load(Ordering::Relaxed) < stamps[i].load(Ordering::Relaxed),
                    "task {} ran before dependency {}", i, d
                );
            }
        }
        // weight accounting matches
        let total_weight: u64 = report.threads.iter().map(|t| t.weight_executed).sum();
        let expected: u64 = (0..n).map(|i| weights[i % weights.len()]).sum();
        prop_assert_eq!(total_weight, expected);
    }
}
