//! The shared table arena the worker threads execute against.

use evprop_potential::{EvidenceSet, PotentialTable};
use evprop_taskgraph::{BufferId, BufferInit, TaskGraph};
use std::cell::UnsafeCell;
use std::fmt;

/// The buffers (clique potentials, separators, scratch) shared by all
/// worker threads during one propagation run.
///
/// # Safety model
///
/// Interior mutability without per-access locks is what makes the
/// collaborative scheduler fast, and it is sound for the same reason the
/// paper's Pthreads code is: the task dependency graph orders every pair
/// of conflicting accesses —
///
/// * each buffer has a unique writer task at any moment
///   ([`TaskGraph::validate`] proves all writers of a buffer are totally
///   ordered by dependency paths);
/// * readers of a buffer are ordered after its relevant writer and before
///   the next one by the same graph;
/// * partitioned subtasks write **disjoint ranges** of the destination
///   (or private partial tables, for marginalization);
/// * the scheduler's atomic dependency counters (`fetch_sub` with
///   `AcqRel`) and ready-list mutexes carry the happens-before edges
///   between the completing and the launching thread.
///
/// ## Reuse across jobs
///
/// The serving path keeps one arena alive across many scheduler runs
/// ([`TableArena::reset`] instead of a fresh
/// [`TableArena::initialize`]). This is sound under one extra
/// invariant: **jobs on an arena are serialized**. `reset` takes
/// `&mut self`, so the borrow checker proves no worker can hold an
/// accessor while buffers are being rewritten; a scheduler run borrows
/// the arena shared (`&TableArena`) for its whole duration and joins or
/// parks every worker before returning, so the next `reset` — and the
/// next job — starts only after every access of the previous job
/// happened-before it (the pool's job-completion handshake carries the
/// edge, exactly as the dependency counters do within a job). Buffer
/// *identity* (count and domains, checked by [`TableArena::matches`])
/// is what ties an arena to a task graph; contents are irrelevant to
/// soundness because every propagation fully overwrites the buffers it
/// reads through the DAG's write-before-read ordering.
///
/// All `unsafe` access is confined to this module's two accessors.
pub struct TableArena {
    cells: Vec<UnsafeCell<PotentialTable>>,
}

// SAFETY: see the type-level safety model; cross-thread access is
// externally synchronized by the task DAG.
unsafe impl Sync for TableArena {}

impl TableArena {
    /// Allocates and initializes every buffer of `graph`:
    /// clique buffers copy `clique_potentials` (then absorb `evidence`),
    /// separators start at ones, scratch at zeros. Hard evidence is
    /// absorbed into every containing clique (idempotent); each soft
    /// likelihood is multiplied into exactly **one** clique — applying it
    /// twice would double-count the observation.
    ///
    /// # Panics
    ///
    /// Panics if `clique_potentials` does not cover every clique
    /// referenced by the graph, evidence states are out of range, or an
    /// evidence variable (hard or soft) appears in no clique — caller
    /// bugs that would otherwise silently yield prior posteriors.
    pub fn initialize(
        graph: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidence: &EvidenceSet,
    ) -> Self {
        let mut cells: Vec<UnsafeCell<PotentialTable>> = graph
            .buffers()
            .iter()
            .map(|spec| {
                let table = match spec.init {
                    BufferInit::CliquePotential(c) => {
                        let mut t = clique_potentials[c.index()].clone();
                        evidence
                            .absorb_into(&mut t)
                            .expect("evidence states are validated upstream");
                        t
                    }
                    BufferInit::Ones => PotentialTable::ones(spec.domain.clone()),
                    BufferInit::Zeros => PotentialTable::zeros(spec.domain.clone()),
                };
                UnsafeCell::new(table)
            })
            .collect();
        apply_soft_and_check(graph, evidence, &mut cells);
        TableArena { cells }
    }

    /// `true` when this arena's buffer layout (count and domains) was
    /// built for `graph` — the precondition of [`TableArena::reset`].
    pub fn matches(&self, graph: &TaskGraph) -> bool {
        self.cells.len() == graph.buffers().len()
            && graph.buffers().iter().zip(&self.cells).all(|(spec, cell)| {
                // SAFETY: &self + immutable read of the domain; callers
                // never invoke `matches` while a job is running (jobs
                // borrow the arena for their whole duration).
                let t = unsafe { &*cell.get() };
                *t.domain() == spec.domain
            })
    }

    /// Re-initializes every buffer **in place** for a fresh query:
    /// identical post-state to [`TableArena::initialize`] with zero
    /// allocations — clique buffers copy `clique_potentials` again and
    /// absorb `evidence`, separators reset to ones, scratch to zeros.
    /// This is the steady-state serving path: compile and allocate once,
    /// reset per query.
    ///
    /// # Panics
    ///
    /// Panics if the arena was not built for this graph (see
    /// [`TableArena::matches`]) or on the evidence conditions of
    /// [`TableArena::initialize`].
    pub fn reset(
        &mut self,
        graph: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidence: &EvidenceSet,
    ) {
        assert!(
            self.matches(graph),
            "arena layout does not match this task graph"
        );
        for (cell, spec) in self.cells.iter_mut().zip(graph.buffers()) {
            let t = cell.get_mut();
            match spec.init {
                BufferInit::CliquePotential(c) => {
                    t.copy_from(&clique_potentials[c.index()])
                        .expect("matches() verified the domains");
                    evidence
                        .absorb_into(t)
                        .expect("evidence states are validated upstream");
                }
                BufferInit::Ones => t.reset_ones(),
                BufferInit::Zeros => t.reset_zeros(),
            }
        }
        apply_soft_and_check(graph, evidence, &mut self.cells);
    }

    /// Initializes a **batch** arena for `base.replicate(evidences.len())`:
    /// copy `i`'s clique buffers absorb `evidences[i]`. See
    /// [`evprop_taskgraph::TaskGraph::replicate`].
    ///
    /// # Panics
    ///
    /// Panics on empty `evidences` or the conditions of
    /// [`TableArena::initialize`].
    pub fn initialize_batch(
        base: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidences: &[EvidenceSet],
    ) -> Self {
        assert!(!evidences.is_empty(), "need at least one evidence case");
        let mut cells = Vec::with_capacity(base.buffers().len() * evidences.len());
        for ev in evidences {
            let one = TableArena::initialize(base, clique_potentials, ev);
            cells.extend(one.cells);
        }
        TableArena { cells }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the arena holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Shared access to a buffer.
    ///
    /// # Safety
    ///
    /// The caller must guarantee (via the task DAG) that no concurrent
    /// task writes buffer `b`, except for writes to ranges disjoint from
    /// those this reader inspects.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, b: BufferId) -> &PotentialTable {
        &*self.cells[b.index()].get()
    }

    /// Exclusive access to a buffer.
    ///
    /// # Safety
    ///
    /// The caller must guarantee (via the task DAG) exclusive write
    /// access: no concurrent reader or writer of buffer `b`, or — for
    /// partitioned subtasks — that all concurrent accesses touch disjoint
    /// entry ranges.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, b: BufferId) -> &mut PotentialTable {
        &mut *self.cells[b.index()].get()
    }

    /// Consumes the arena, returning the final buffer contents (used by
    /// engines to read calibrated clique potentials after a run).
    pub fn into_tables(self) -> Vec<PotentialTable> {
        self.cells.into_iter().map(UnsafeCell::into_inner).collect()
    }

    /// Single-threaded mutable view for sequential engines and tests.
    pub fn tables_mut(&mut self) -> &mut [PotentialTable] {
        // SAFETY: &mut self guarantees exclusivity; UnsafeCell<T> has the
        // same layout as T.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.cells.as_mut_ptr() as *mut PotentialTable,
                self.cells.len(),
            )
        }
    }
}

/// Shared tail of [`TableArena::initialize`] and [`TableArena::reset`]:
/// reject evidence no clique covers (a hard observation on a variable
/// outside every clique would be silently dropped by per-table
/// absorption) and multiply each soft likelihood into exactly one
/// clique.
fn apply_soft_and_check(
    graph: &TaskGraph,
    evidence: &EvidenceSet,
    cells: &mut [UnsafeCell<PotentialTable>],
) {
    for e in evidence.iter() {
        assert!(
            graph.clique_buffer_containing(e.var).is_some(),
            "evidence variable {} appears in no clique of this junction tree",
            e.var
        );
    }
    for lk in evidence.soft() {
        let target = graph
            .clique_buffer_containing(lk.var)
            .expect("soft-evidence variable appears in some clique");
        lk.apply_to(cells[target.index()].get_mut())
            .expect("likelihood length matches the variable");
    }
}

impl fmt::Debug for TableArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableArena({} buffers)", self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_jtree::TreeShape;
    use evprop_potential::{Domain, VarId, Variable};

    fn two_clique_graph() -> (TaskGraph, Vec<PotentialTable>) {
        let d0 = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(1)), Variable::binary(VarId(2))]).unwrap();
        let shape = TreeShape::new(vec![d0.clone(), d1.clone()], &[(0, 1)], 0).unwrap();
        let pots = vec![
            PotentialTable::from_data(d0, vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            PotentialTable::ones(d1),
        ];
        (TaskGraph::from_shape(&shape), pots)
    }

    #[test]
    fn initialization_follows_specs() {
        let (g, pots) = two_clique_graph();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        let mut arena = TableArena::initialize(&g, &pots, &ev);
        assert_eq!(arena.len(), g.buffers().len());
        assert!(!arena.is_empty());
        let tables = arena.tables_mut();
        // clique 0 with evidence V0=1 absorbed
        assert_eq!(tables[0].data(), &[0.0, 0.0, 0.3, 0.4]);
        // clique 1 untouched by that evidence
        assert_eq!(tables[1].data(), &[1.0, 1.0, 1.0, 1.0]);
        // sep_old buffer is ones; find one
        let ones = g
            .buffers()
            .iter()
            .position(|b| b.init == BufferInit::Ones)
            .unwrap();
        assert!(tables[ones].data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn into_tables_roundtrip() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let tables = arena.into_tables();
        assert_eq!(tables.len(), g.buffers().len());
        assert_eq!(tables[0].data(), pots[0].data());
    }

    #[test]
    fn reset_equals_fresh_initialize() {
        let (g, pots) = two_clique_graph();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        ev.observe_likelihood(VarId(2), vec![0.2, 0.9]);

        // dirty the arena with a different query first
        let mut dirty_ev = EvidenceSet::new();
        dirty_ev.observe(VarId(2), 0);
        let mut arena = TableArena::initialize(&g, &pots, &dirty_ev);
        assert!(arena.matches(&g));
        arena.reset(&g, &pots, &ev);

        let fresh = TableArena::initialize(&g, &pots, &ev);
        let (a, b) = (arena.into_tables(), fresh.into_tables());
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(x.approx_eq(y, 0.0), "buffer {i} differs after reset");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn reset_rejects_foreign_graph() {
        let (g, pots) = two_clique_graph();
        let mut arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // a graph with different buffer domains
        let d0 = Domain::new(vec![Variable::binary(VarId(5)), Variable::binary(VarId(6))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(6)), Variable::binary(VarId(7))]).unwrap();
        let shape = TreeShape::new(vec![d0, d1], &[(0, 1)], 0).unwrap();
        let other = TaskGraph::from_shape(&shape);
        assert!(!arena.matches(&other));
        arena.reset(&other, &pots, &EvidenceSet::new());
    }

    #[test]
    fn arena_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<TableArena>();
    }
}
