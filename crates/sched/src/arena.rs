//! The shared table arena the worker threads execute against.
//!
//! # Safety model
//!
//! Interior mutability without per-access locks is what makes the
//! collaborative scheduler fast, and it is sound for the same reason the
//! paper's Pthreads code is: the task dependency graph orders every pair
//! of conflicting accesses —
//!
//! * each buffer has a unique writer task at any moment
//!   ([`TaskGraph::validate`](evprop_taskgraph::TaskGraph) proves all
//!   writers of a buffer are totally ordered by dependency paths);
//! * readers of a buffer are ordered after its relevant writer and before
//!   the next one by the same graph;
//! * partitioned subtasks write **disjoint ranges** of the destination
//!   (or private partial tables, for marginalization);
//! * the scheduler's atomic dependency counters (`fetch_sub` with
//!   `AcqRel`) and ready-list mutexes carry the happens-before edges
//!   between the completing and the launching thread.
//!
//! ## Why references are not enough
//!
//! Range-disjointness makes concurrent *machine* writes fine, but Rust's
//! aliasing rules are stricter than the machine's: two threads holding
//! `&mut PotentialTable` to the same buffer is undefined behavior even
//! if they only ever touch disjoint entries — a `&mut` claims the whole
//! object. The arena therefore never hands workers references to a
//! buffer that could be partially owned. Instead, a job derives one
//! [`ArenaView`] up front ([`TableArena::job_view`]): the raw base
//! pointer of every buffer's entry storage, captured while the job
//! holder is provably the arena's only user. All worker access flows
//! through that view as **windows** —
//!
//! * [`ArenaView::write_range`] → [`RangeView`], a `*mut f64`-backed
//!   `&mut [f64]` over exactly one [`EntryRange`] (a full-buffer range
//!   for non-partitioned tasks, the subtask's own range otherwise);
//! * [`ArenaView::read_range`] → [`ReadView`], a shared window over a
//!   buffer no concurrent task writes.
//!
//! Disjoint `&mut [f64]` windows carved out of one allocation via raw
//! pointers are exactly `split_at_mut` semantics: no two live `&mut`
//! ever overlap, and no reference to the `PotentialTable` structs exists
//! while a job runs. Buffer *shape* (the [`Domain`](evprop_potential::Domain))
//! comes from the task graph's buffer specs, not from the tables, so the
//! raw primitives in [`evprop_potential::raw`] need no table references
//! either.
//!
//! ## The overlap checker (race-detector-lite)
//!
//! With `debug_assertions` on, every live window is registered in the
//! view: creating a window whose range intersects another live window on
//! the same buffer — where at least one of the two is a write — panics
//! with both ranges and owning threads. Release builds compile the
//! checker out entirely; unit tests, the schedule-stress suite, Miri and
//! TSan all run with it enabled, so a scheduler bug that ever *requests*
//! overlapping ownership is caught deterministically even when the
//! racy interleaving itself is never observed.
//!
//! ## Why `unsafe impl Sync` remains sound
//!
//! `TableArena` is `Sync` so `&TableArena` can cross threads, but the
//! only cross-thread access paths are `ArenaView` windows whose
//! preconditions (DAG ordering + disjoint ranges + serialized jobs)
//! reproduce the exclusive-access discipline the borrow checker cannot
//! see. `matches` reads only buffer domains, which no job ever writes.
//! Everything else (`reset`, `tables_mut`, `into_tables`) takes `&mut
//! self` or ownership and is therefore exclusive by construction.
//!
//! ## Reuse across jobs
//!
//! The serving path keeps one arena alive across many scheduler runs
//! ([`TableArena::reset`] instead of a fresh
//! [`TableArena::initialize`]). This is sound under one extra
//! invariant: **jobs on an arena are serialized**. `reset` takes
//! `&mut self`, so the borrow checker proves no worker can hold a
//! window while buffers are being rewritten; a scheduler run derives its
//! `ArenaView` once, borrows the arena shared for its whole duration and
//! joins or parks every worker before returning, so the next `reset` —
//! and the next job's `job_view` — starts only after every access of the
//! previous job happened-before it (the pool's job-completion handshake
//! carries the edge, exactly as the dependency counters do within a
//! job). Buffer *identity* (count and domains, checked by
//! [`TableArena::matches`]) is what ties an arena to a task graph;
//! contents are irrelevant to soundness because every propagation fully
//! overwrites the buffers it reads through the DAG's write-before-read
//! ordering.
//!
//! All `unsafe` access is confined to this module.

use evprop_jtree::CliqueId;
use evprop_potential::{EntryRange, EvidenceSet, PotentialTable};
use evprop_taskgraph::{BufferId, BufferInit, TaskGraph};
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;

/// The buffers (clique potentials, separators, scratch) shared by all
/// worker threads during one propagation run. See the module docs for
/// the safety model.
pub struct TableArena {
    cells: Vec<UnsafeCell<PotentialTable>>,
}

// SAFETY: see the module-level safety model; cross-thread access only
// happens through `ArenaView` windows, which are externally synchronized
// by the task DAG, and through `matches`' domain reads, which no job
// writes.
unsafe impl Sync for TableArena {}

impl TableArena {
    /// Allocates and initializes every buffer of `graph`:
    /// clique buffers copy `clique_potentials` (then absorb `evidence`),
    /// separators start at ones, scratch at zeros. Hard evidence is
    /// absorbed into every containing clique (idempotent); each soft
    /// likelihood is multiplied into exactly **one** clique — applying it
    /// twice would double-count the observation.
    ///
    /// # Panics
    ///
    /// Panics if `clique_potentials` does not cover every clique
    /// referenced by the graph, evidence states are out of range, or an
    /// evidence variable (hard or soft) appears in no clique — caller
    /// bugs that would otherwise silently yield prior posteriors.
    pub fn initialize(
        graph: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidence: &EvidenceSet,
    ) -> Self {
        let mut cells: Vec<UnsafeCell<PotentialTable>> = graph
            .buffers()
            .iter()
            .map(|spec| {
                let table = match spec.init {
                    BufferInit::CliquePotential(c) => {
                        let mut t = clique_potentials[c.index()].clone();
                        evidence
                            .absorb_into(&mut t)
                            .expect("evidence states are validated upstream");
                        t
                    }
                    BufferInit::Ones => PotentialTable::ones(spec.domain.clone()),
                    BufferInit::Zeros => PotentialTable::zeros(spec.domain.clone()),
                };
                UnsafeCell::new(table)
            })
            .collect();
        apply_soft_and_check(graph, evidence, &mut cells);
        TableArena { cells }
    }

    /// `true` when this arena's buffer layout (count and domains) was
    /// built for `graph` — the precondition of [`TableArena::reset`].
    pub fn matches(&self, graph: &TaskGraph) -> bool {
        self.cells.len() == graph.buffers().len()
            && graph.buffers().iter().zip(&self.cells).all(|(spec, cell)| {
                // SAFETY: &self + immutable read of the domain; callers
                // never invoke `matches` while a job is running (jobs
                // borrow the arena for their whole duration).
                let t = unsafe { &*cell.get() };
                *t.domain() == spec.domain
            })
    }

    /// Re-initializes every buffer **in place** for a fresh query:
    /// identical post-state to [`TableArena::initialize`] with zero
    /// allocations — clique buffers copy `clique_potentials` again and
    /// absorb `evidence`, separators reset to ones, scratch to zeros.
    /// This is the steady-state serving path: compile and allocate once,
    /// reset per query.
    ///
    /// # Panics
    ///
    /// Panics if the arena was not built for this graph (see
    /// [`TableArena::matches`]) or on the evidence conditions of
    /// [`TableArena::initialize`].
    pub fn reset(
        &mut self,
        graph: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidence: &EvidenceSet,
    ) {
        assert!(
            self.matches(graph),
            "arena layout does not match this task graph"
        );
        for (cell, spec) in self.cells.iter_mut().zip(graph.buffers()) {
            let t = cell.get_mut();
            match spec.init {
                BufferInit::CliquePotential(c) => {
                    t.copy_from(&clique_potentials[c.index()])
                        .expect("matches() verified the domains");
                    evidence
                        .absorb_into(t)
                        .expect("evidence states are validated upstream");
                }
                BufferInit::Ones => t.reset_ones(),
                BufferInit::Zeros => t.reset_zeros(),
            }
        }
        apply_soft_and_check(graph, evidence, &mut self.cells);
    }

    /// Re-initializes **only the clique buffers of `cliques`** in place:
    /// each one copies its potential back from `clique_potentials`,
    /// absorbs the hard items of `evidence`, and re-applies any soft
    /// likelihood routed to it. Scratch buffers and every other clique
    /// are left untouched — this is the incremental engine's partial
    /// reset, run before a dirty-slice job so re-collected cliques
    /// start from their raw potentials while clean subtrees keep their
    /// cached messages.
    ///
    /// # Panics
    ///
    /// Panics if the arena was not built for this graph (see
    /// [`TableArena::matches`]) or on the evidence conditions of
    /// [`TableArena::initialize`].
    pub fn reset_cliques(
        &mut self,
        graph: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidence: &EvidenceSet,
        cliques: &[CliqueId],
    ) {
        assert!(
            self.matches(graph),
            "arena layout does not match this task graph"
        );
        for &c in cliques {
            let buf = graph.clique_buffer(c);
            let t = self.cells[buf.index()].get_mut();
            t.copy_from(&clique_potentials[c.index()])
                .expect("matches() verified the domains");
            evidence
                .absorb_into(t)
                .expect("evidence states are validated upstream");
        }
        for lk in evidence.soft() {
            let target = graph
                .clique_buffer_containing(lk.var)
                .expect("soft-evidence variable appears in some clique");
            if cliques.iter().any(|&c| graph.clique_buffer(c) == target) {
                lk.apply_to(self.cells[target.index()].get_mut())
                    .expect("likelihood length matches the variable");
            }
        }
    }

    /// Initializes a **batch** arena for `base.replicate(evidences.len())`:
    /// copy `i`'s clique buffers absorb `evidences[i]`. See
    /// [`evprop_taskgraph::TaskGraph::replicate`].
    ///
    /// # Panics
    ///
    /// Panics on empty `evidences` or the conditions of
    /// [`TableArena::initialize`].
    pub fn initialize_batch(
        base: &TaskGraph,
        clique_potentials: &[PotentialTable],
        evidences: &[EvidenceSet],
    ) -> Self {
        assert!(!evidences.is_empty(), "need at least one evidence case");
        let mut cells = Vec::with_capacity(base.buffers().len() * evidences.len());
        for ev in evidences {
            let one = TableArena::initialize(base, clique_potentials, ev);
            cells.extend(one.cells);
        }
        TableArena { cells }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the arena holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Derives the per-job [`ArenaView`]: the raw base pointer and length
    /// of every buffer's entry storage. This is the **only** gateway to
    /// the arena during a scheduler job — workers never see the
    /// `PotentialTable` structs themselves.
    ///
    /// # Safety
    ///
    /// The caller must be the arena's sole user for the lifetime of the
    /// returned view (the *serialized jobs* invariant): no concurrent
    /// `job_view`, `matches`, `tables_mut` or `reset`, and no access to
    /// the buffers except through this view's windows. The pool's
    /// submission lock plus its job-completion handshake provide exactly
    /// this.
    pub unsafe fn job_view(&self) -> ArenaView<'_> {
        let bufs = self
            .cells
            .iter()
            .map(|cell| {
                // A transient exclusive borrow, sound because the caller
                // is the arena's only user right now; it dies before the
                // next iteration, leaving only the raw base pointer.
                let t = &mut *cell.get();
                RawBuf {
                    ptr: t.data_mut().as_mut_ptr(),
                    len: t.len(),
                }
            })
            .collect();
        ArenaView {
            bufs,
            _arena: PhantomData,
            #[cfg(debug_assertions)]
            registry: Registry::default(),
        }
    }

    /// Consumes the arena, returning the final buffer contents (used by
    /// engines to read calibrated clique potentials after a run).
    pub fn into_tables(self) -> Vec<PotentialTable> {
        self.cells.into_iter().map(UnsafeCell::into_inner).collect()
    }

    /// Single-threaded mutable view for sequential engines and tests.
    ///
    /// Replacing a table wholesale through this slice (rather than
    /// mutating entries in place) is allowed — any later job re-derives
    /// its base pointers via [`TableArena::job_view`], so the swap is
    /// observed.
    pub fn tables_mut(&mut self) -> &mut [PotentialTable] {
        // SAFETY: &mut self guarantees exclusivity; UnsafeCell<T> has the
        // same layout as T.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.cells.as_mut_ptr() as *mut PotentialTable,
                self.cells.len(),
            )
        }
    }
}

/// Raw base pointer + length of one buffer's entry storage.
#[derive(Clone, Copy)]
struct RawBuf {
    ptr: *mut f64,
    len: usize,
}

/// One job's gateway to the arena: per-buffer raw base pointers captured
/// under exclusivity by [`TableArena::job_view`]. Workers share an
/// `&ArenaView` and carve disjoint windows out of it; see the module
/// docs for why this — and not references to the tables — is the sound
/// shape for range-partitioned subtasks.
pub struct ArenaView<'a> {
    bufs: Vec<RawBuf>,
    _arena: PhantomData<&'a TableArena>,
    #[cfg(debug_assertions)]
    registry: Registry,
}

// SAFETY: the view is a table of raw pointers; all dereferences go
// through the unsafe window constructors whose contracts (task-DAG
// ordering + range disjointness) make cross-thread use sound.
unsafe impl Sync for ArenaView<'_> {}
// SAFETY: same argument — moving the pointer table to another thread
// grants nothing the Sync impl doesn't already.
unsafe impl Send for ArenaView<'_> {}

impl ArenaView<'_> {
    /// Number of buffers in the underlying arena.
    pub fn num_buffers(&self) -> usize {
        self.bufs.len()
    }

    /// Entry count of buffer `b`.
    pub fn buffer_len(&self, b: BufferId) -> usize {
        self.bufs[b.index()].len
    }

    /// An exclusive window over `range` of buffer `b` — the accessor a
    /// partitioned subtask gets for exactly its own [`EntryRange`], and
    /// a non-partitioned task for the full buffer
    /// ([`ArenaView::write_full`]).
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned view, no other thread may read
    /// or write any entry of `b` inside `range` — guaranteed in the
    /// scheduler by the task DAG (sole writer per buffer) plus the
    /// Partition module's disjoint ranges. The debug-assertions overlap
    /// checker verifies this dynamically.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the buffer, or (debug builds) if the
    /// window overlaps another live window in violation of the safety
    /// contract.
    pub unsafe fn write_range(&self, b: BufferId, range: EntryRange) -> RangeView<'_> {
        let buf = self.bufs[b.index()];
        assert!(
            range.start <= range.end && range.end <= buf.len,
            "range {}..{} out of bounds for buffer {} of {} entries",
            range.start,
            range.end,
            b.index(),
            buf.len
        );
        RangeView {
            ptr: buf.ptr.add(range.start),
            len: range.len(),
            _view: PhantomData,
            #[cfg(debug_assertions)]
            reg: self.registry.register(b.index(), range, true),
            #[cfg(debug_assertions)]
            registry: &self.registry,
        }
    }

    /// An exclusive window over all of buffer `b`.
    ///
    /// # Safety
    ///
    /// As [`ArenaView::write_range`] with the full range.
    pub unsafe fn write_full(&self, b: BufferId) -> RangeView<'_> {
        self.write_range(b, EntryRange::full(self.bufs[b.index()].len))
    }

    /// A shared window over `range` of buffer `b`.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned view, no thread may write any
    /// entry of `b` inside `range` — in the scheduler, sources of a
    /// running task are ordered against all their writers by the task
    /// DAG. Concurrent shared windows may overlap freely.
    ///
    /// # Panics
    ///
    /// As [`ArenaView::write_range`].
    pub unsafe fn read_range(&self, b: BufferId, range: EntryRange) -> ReadView<'_> {
        let buf = self.bufs[b.index()];
        assert!(
            range.start <= range.end && range.end <= buf.len,
            "range {}..{} out of bounds for buffer {} of {} entries",
            range.start,
            range.end,
            b.index(),
            buf.len
        );
        ReadView {
            ptr: buf.ptr.add(range.start) as *const f64,
            len: range.len(),
            _view: PhantomData,
            #[cfg(debug_assertions)]
            reg: self.registry.register(b.index(), range, false),
            #[cfg(debug_assertions)]
            registry: &self.registry,
        }
    }

    /// A shared window over all of buffer `b`.
    ///
    /// # Safety
    ///
    /// As [`ArenaView::read_range`] with the full range.
    pub unsafe fn read_full(&self, b: BufferId) -> ReadView<'_> {
        self.read_range(b, EntryRange::full(self.bufs[b.index()].len))
    }
}

impl fmt::Debug for ArenaView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaView({} buffers)", self.bufs.len())
    }
}

/// An exclusive `*mut f64`-backed window over one [`EntryRange`] of one
/// arena buffer — all a partitioned subtask ever owns of its
/// destination. Created by [`ArenaView::write_range`]; unregisters from
/// the debug overlap checker on drop.
pub struct RangeView<'v> {
    ptr: *mut f64,
    len: usize,
    _view: PhantomData<&'v ArenaView<'v>>,
    #[cfg(debug_assertions)]
    reg: u64,
    #[cfg(debug_assertions)]
    registry: &'v Registry,
}

impl RangeView<'_> {
    /// The window as a mutable slice. Disjointness of live windows
    /// (the constructor's safety contract) makes this exactly
    /// `split_at_mut` semantics.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr/len denote a live, in-bounds window; the
        // constructor's contract guarantees no concurrent access to it,
        // and &mut self prevents a second slice from this view.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Number of entries in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the window covers nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for RangeView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RangeView({} entries)", self.len)
    }
}

#[cfg(debug_assertions)]
impl Drop for RangeView<'_> {
    fn drop(&mut self) {
        self.registry.unregister(self.reg);
    }
}

/// A shared window over one [`EntryRange`] of one arena buffer. Created
/// by [`ArenaView::read_range`]; unregisters from the debug overlap
/// checker on drop.
pub struct ReadView<'v> {
    ptr: *const f64,
    len: usize,
    _view: PhantomData<&'v ArenaView<'v>>,
    #[cfg(debug_assertions)]
    reg: u64,
    #[cfg(debug_assertions)]
    registry: &'v Registry,
}

impl std::ops::Deref for ReadView<'_> {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        // SAFETY: ptr/len denote a live, in-bounds window; the
        // constructor's contract guarantees no concurrent writer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl fmt::Debug for ReadView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReadView({} entries)", self.len)
    }
}

#[cfg(debug_assertions)]
impl Drop for ReadView<'_> {
    fn drop(&mut self) {
        self.registry.unregister(self.reg);
    }
}

/// The debug-assertions-only overlap checker: a registry of every live
/// window. Any new window intersecting a live one on the same buffer —
/// with at least one of the two being a write — is a violation of the
/// arena's safety contract and panics immediately, regardless of whether
/// the racy interleaving would have been observed.
#[cfg(debug_assertions)]
#[derive(Default)]
struct Registry {
    live: parking_lot::Mutex<Vec<LiveAccess>>,
    next: std::sync::atomic::AtomicU64,
}

#[cfg(debug_assertions)]
struct LiveAccess {
    id: u64,
    buf: usize,
    range: EntryRange,
    write: bool,
    owner: std::thread::ThreadId,
}

#[cfg(debug_assertions)]
impl Registry {
    fn register(&self, buf: usize, range: EntryRange, write: bool) -> u64 {
        let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let owner = std::thread::current().id();
        let mut live = self.live.lock();
        for a in live.iter() {
            let intersects = a.buf == buf && a.range.start < range.end && range.start < a.range.end;
            if intersects && (write || a.write) {
                panic!(
                    "arena access overlap on buffer {buf}: {} {}..{} (thread {:?}) vs live {} \
                     {}..{} (thread {:?})",
                    if write { "write" } else { "read" },
                    range.start,
                    range.end,
                    owner,
                    if a.write { "write" } else { "read" },
                    a.range.start,
                    a.range.end,
                    a.owner,
                );
            }
        }
        live.push(LiveAccess {
            id,
            buf,
            range,
            write,
            owner,
        });
        id
    }

    fn unregister(&self, id: u64) {
        self.live.lock().retain(|a| a.id != id);
    }
}

/// Shared tail of [`TableArena::initialize`] and [`TableArena::reset`]:
/// reject evidence no clique covers (a hard observation on a variable
/// outside every clique would be silently dropped by per-table
/// absorption) and multiply each soft likelihood into exactly one
/// clique.
fn apply_soft_and_check(
    graph: &TaskGraph,
    evidence: &EvidenceSet,
    cells: &mut [UnsafeCell<PotentialTable>],
) {
    for e in evidence.iter() {
        assert!(
            graph.clique_buffer_containing(e.var).is_some(),
            "evidence variable {} appears in no clique of this junction tree",
            e.var
        );
    }
    for lk in evidence.soft() {
        let target = graph
            .clique_buffer_containing(lk.var)
            .expect("soft-evidence variable appears in some clique");
        lk.apply_to(cells[target.index()].get_mut())
            .expect("likelihood length matches the variable");
    }
}

impl fmt::Debug for TableArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableArena({} buffers)", self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_jtree::TreeShape;
    use evprop_potential::{Domain, VarId, Variable};

    fn two_clique_graph() -> (TaskGraph, Vec<PotentialTable>) {
        let d0 = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(1)), Variable::binary(VarId(2))]).unwrap();
        let shape = TreeShape::new(vec![d0.clone(), d1.clone()], &[(0, 1)], 0).unwrap();
        let pots = vec![
            PotentialTable::from_data(d0, vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            PotentialTable::ones(d1),
        ];
        (TaskGraph::from_shape(&shape), pots)
    }

    #[test]
    fn initialization_follows_specs() {
        let (g, pots) = two_clique_graph();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        let mut arena = TableArena::initialize(&g, &pots, &ev);
        assert_eq!(arena.len(), g.buffers().len());
        assert!(!arena.is_empty());
        let tables = arena.tables_mut();
        // clique 0 with evidence V0=1 absorbed
        assert_eq!(tables[0].data(), &[0.0, 0.0, 0.3, 0.4]);
        // clique 1 untouched by that evidence
        assert_eq!(tables[1].data(), &[1.0, 1.0, 1.0, 1.0]);
        // sep_old buffer is ones; find one
        let ones = g
            .buffers()
            .iter()
            .position(|b| b.init == BufferInit::Ones)
            .unwrap();
        assert!(tables[ones].data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn into_tables_roundtrip() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let tables = arena.into_tables();
        assert_eq!(tables.len(), g.buffers().len());
        assert_eq!(tables[0].data(), pots[0].data());
    }

    #[test]
    fn reset_equals_fresh_initialize() {
        let (g, pots) = two_clique_graph();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        ev.observe_likelihood(VarId(2), vec![0.2, 0.9]);

        // dirty the arena with a different query first
        let mut dirty_ev = EvidenceSet::new();
        dirty_ev.observe(VarId(2), 0);
        let mut arena = TableArena::initialize(&g, &pots, &dirty_ev);
        assert!(arena.matches(&g));
        arena.reset(&g, &pots, &ev);

        let fresh = TableArena::initialize(&g, &pots, &ev);
        let (a, b) = (arena.into_tables(), fresh.into_tables());
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(x.approx_eq(y, 0.0), "buffer {i} differs after reset");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn reset_rejects_foreign_graph() {
        let (g, pots) = two_clique_graph();
        let mut arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // a graph with different buffer domains
        let d0 = Domain::new(vec![Variable::binary(VarId(5)), Variable::binary(VarId(6))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(6)), Variable::binary(VarId(7))]).unwrap();
        let shape = TreeShape::new(vec![d0, d1], &[(0, 1)], 0).unwrap();
        let other = TaskGraph::from_shape(&shape);
        assert!(!arena.matches(&other));
        arena.reset(&other, &pots, &EvidenceSet::new());
    }

    #[test]
    fn arena_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<TableArena>();
        assert_sync::<ArenaView<'static>>();
    }

    #[test]
    fn windows_read_and_write_buffers() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // SAFETY: this test is the arena's only user.
        let view = unsafe { arena.job_view() };
        assert_eq!(view.num_buffers(), g.buffers().len());
        assert_eq!(view.buffer_len(BufferId(0)), 4);
        {
            // SAFETY: disjoint windows of buffer 0, nothing else live.
            let mut lo = unsafe { view.write_range(BufferId(0), EntryRange { start: 0, end: 2 }) };
            let mut hi = unsafe { view.write_range(BufferId(0), EntryRange { start: 2, end: 4 }) };
            lo.as_mut_slice().fill(7.0);
            hi.as_mut_slice().copy_from_slice(&[8.0, 9.0]);
            assert_eq!(lo.len(), 2);
            assert!(!hi.is_empty());
        }
        {
            // SAFETY: the writers above are dropped.
            let all = unsafe { view.read_full(BufferId(0)) };
            assert_eq!(&*all, &[7.0, 7.0, 8.0, 9.0]);
        }
        drop(view);
        assert_eq!(arena.into_tables()[0].data(), &[7.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn overlapping_reads_are_allowed() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // SAFETY: sole user; shared windows may overlap.
        let view = unsafe { arena.job_view() };
        let a = unsafe { view.read_full(BufferId(0)) };
        let b = unsafe { view.read_range(BufferId(0), EntryRange { start: 1, end: 3 }) };
        assert_eq!(a[1], b[0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "arena access overlap")]
    fn overlap_checker_catches_intersecting_writes() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // SAFETY: deliberately violating the disjointness contract to
        // exercise the checker; the second window must panic before any
        // aliasing slice is materialized.
        let view = unsafe { arena.job_view() };
        let _first = unsafe { view.write_range(BufferId(0), EntryRange { start: 0, end: 3 }) };
        let _second = unsafe { view.write_range(BufferId(0), EntryRange { start: 2, end: 4 }) };
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "arena access overlap")]
    fn overlap_checker_catches_read_under_write() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // SAFETY: deliberate contract violation, as above.
        let view = unsafe { arena.job_view() };
        let _w = unsafe { view.write_full(BufferId(0)) };
        let _r = unsafe { view.read_range(BufferId(0), EntryRange { start: 1, end: 2 }) };
    }

    #[test]
    fn disjoint_windows_on_distinct_buffers_coexist() {
        let (g, pots) = two_clique_graph();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        // SAFETY: sole user; windows target different buffers.
        let view = unsafe { arena.job_view() };
        let mut w0 = unsafe { view.write_full(BufferId(0)) };
        let r1 = unsafe { view.read_full(BufferId(1)) };
        w0.as_mut_slice()[0] = r1[0];
    }
}
