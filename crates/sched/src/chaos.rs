//! Deterministic fault injection, compiled in only with the `chaos`
//! feature and armed only when the `EVPROP_CHAOS` environment variable
//! is set.
//!
//! The spec is a comma-separated list of `key=value` fields:
//!
//! ```text
//! EVPROP_CHAOS=seed=42,worker_kill=0.02,kernel_slow_us=500@0.05,conn_drop=0.01,queue_stall_ms=5@0.02
//! ```
//!
//! - `seed=N` — base of the deterministic draw sequence (default 0).
//! - `worker_kill=R` — probability that a pool worker dies (a genuine
//!   thread death, outside the job's panic guard) when it picks up a
//!   job, exercising the supervision/respawn path.
//! - `kernel_slow_us=U@R` — with probability `R`, a worker sleeps `U`
//!   microseconds before executing a task (an artificially slow kernel,
//!   pushing queries past their deadlines).
//! - `conn_drop=R` — probability that the server tears a connection
//!   down right before answering a request.
//! - `queue_stall_ms=M@R` — with probability `R`, a dispatcher stalls
//!   `M` milliseconds before draining its next batch.
//!
//! Draws are a counter-indexed `splitmix64` stream: for a fixed seed
//! the *sequence* of outcomes is fixed, so the total number of
//! injections for a given request volume is tightly concentrated and a
//! CI job can assert lower bounds on it. A rate of `0` (or an unset
//! variable) disables an injection point entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Parsed `EVPROP_CHAOS` spec; all-zero when the variable is unset, in
/// which case every injection point is a single branch on a cached
/// struct.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosSpec {
    /// Base seed of the draw stream.
    pub seed: u64,
    /// Worker-death probability per job pickup.
    pub worker_kill: f64,
    /// Artificial kernel slowdown, microseconds.
    pub kernel_slow_us: u64,
    /// Probability of the slowdown per task.
    pub kernel_slow_rate: f64,
    /// Connection-teardown probability per answered request.
    pub conn_drop: f64,
    /// Dispatcher stall, milliseconds.
    pub queue_stall_ms: u64,
    /// Probability of the stall per batch.
    pub queue_stall_rate: f64,
}

impl ChaosSpec {
    /// Parses the `EVPROP_CHAOS` grammar. Unknown keys and malformed
    /// values are rejected loudly: a chaos run with a typo'd spec that
    /// silently injects nothing would report a green result it never
    /// earned.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec::default();
        for field in spec.split(',').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("chaos field {field:?} is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos rate {v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("chaos rate {v:?} is outside [0, 1]"));
                }
                Ok(r)
            };
            // `U@R` — a magnitude with an occurrence rate.
            let at = |v: &str| -> Result<(u64, f64), String> {
                let (mag, r) = v
                    .split_once('@')
                    .ok_or_else(|| format!("chaos value {v:?} is not magnitude@rate"))?;
                let mag = mag
                    .parse()
                    .map_err(|_| format!("chaos magnitude {mag:?} is not an integer"))?;
                Ok((mag, rate(r)?))
            };
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("chaos seed {value:?} is not an integer"))?;
                }
                "worker_kill" => out.worker_kill = rate(value)?,
                "kernel_slow_us" => (out.kernel_slow_us, out.kernel_slow_rate) = at(value)?,
                "conn_drop" => out.conn_drop = rate(value)?,
                "queue_stall_ms" => (out.queue_stall_ms, out.queue_stall_rate) = at(value)?,
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        Ok(out)
    }
}

/// The process-wide spec, parsed once from `EVPROP_CHAOS`. A malformed
/// spec aborts startup (panics) rather than running a silently
/// fault-free "chaos" test.
pub fn spec() -> &'static ChaosSpec {
    static SPEC: OnceLock<ChaosSpec> = OnceLock::new();
    SPEC.get_or_init(|| match std::env::var("EVPROP_CHAOS") {
        Ok(s) => ChaosSpec::parse(&s).unwrap_or_else(|e| panic!("EVPROP_CHAOS: {e}")),
        Err(_) => ChaosSpec::default(),
    })
}

/// Counter-indexed splitmix64: draw `i` of stream `seed`.
fn draw(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn roll(rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let i = COUNTER.fetch_add(1, Ordering::Relaxed);
    // Compare the top 53 bits against the rate as a dyadic fraction.
    let u = (draw(spec().seed, i) >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

/// Whether the worker picking up a job should die (thread death outside
/// the panic guard, so the pool's reaper — not `catch_unwind` — must
/// recover).
pub fn should_kill_worker() -> bool {
    roll(spec().worker_kill)
}

/// An artificial per-task kernel slowdown, when one fires.
pub fn kernel_slowdown() -> Option<Duration> {
    let s = spec();
    roll(s.kernel_slow_rate).then(|| Duration::from_micros(s.kernel_slow_us))
}

/// Whether the server should tear this connection down mid-exchange.
pub fn should_drop_conn() -> bool {
    roll(spec().conn_drop)
}

/// A dispatcher stall before the next batch, when one fires.
pub fn queue_stall() -> Option<Duration> {
    let s = spec();
    roll(s.queue_stall_rate).then(|| Duration::from_millis(s.queue_stall_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let s = ChaosSpec::parse(
            "seed=42,worker_kill=0.25,kernel_slow_us=500@0.05,conn_drop=0.01,queue_stall_ms=5@0.02",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.worker_kill, 0.25);
        assert_eq!((s.kernel_slow_us, s.kernel_slow_rate), (500, 0.05));
        assert_eq!(s.conn_drop, 0.01);
        assert_eq!((s.queue_stall_ms, s.queue_stall_rate), (5, 0.02));
    }

    #[test]
    fn rejects_typos_and_bad_rates() {
        assert!(ChaosSpec::parse("worker_kil=0.1").is_err());
        assert!(ChaosSpec::parse("worker_kill=1.5").is_err());
        assert!(ChaosSpec::parse("kernel_slow_us=500").is_err());
        assert!(ChaosSpec::parse("seed").is_err());
        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::default());
    }

    #[test]
    fn draw_stream_is_deterministic() {
        let a: Vec<u64> = (0..8).map(|i| draw(7, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| draw(7, i)).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
