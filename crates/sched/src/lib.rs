//! The **collaborative scheduler** (§6 of the paper) on real OS threads.
//!
//! Every worker thread runs the paper's four modules:
//!
//! * **Allocate** — when a task completes, its successors' dependency
//!   degrees are decreased; tasks reaching degree 0 are placed on the
//!   local ready list (LL) of the thread with the smallest weight
//!   counter;
//! * **Fetch** — each thread takes the task at the head of its own LL;
//! * **Partition** — a fetched task whose potential table exceeds the
//!   threshold δ is split into range subtasks: the first runs
//!   immediately, the middle ones are spread across the other threads'
//!   LLs, and a *final* subtask — the only one inheriting the original
//!   task's successors — combines the results (added for
//!   marginalization, concatenated otherwise);
//! * **Execute** — the node-level primitive runs against the shared
//!   table arena.
//!
//! The global task list (GL) of the paper corresponds to the immutable
//! [`TaskGraph`](evprop_taskgraph::TaskGraph) plus an append-only arena
//! of dynamic subtasks; per-task dependency degrees are atomics, so
//! "locking an entry" is a single `fetch_sub`.
//!
//! A work-stealing variant (idle threads pop from the *tail* of a
//! victim's LL) is provided as the ablation the paper's §8 gestures at.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cancel;
#[cfg(feature = "chaos")]
pub mod chaos;
mod collab;
mod config;
mod generic;
mod pool;

pub use arena::{ArenaView, RangeView, ReadView, TableArena};
pub use cancel::CancelToken;
pub use collab::run_collaborative;
pub use config::SchedulerConfig;
pub use generic::{DagBuilder, DagTaskId};
pub use pool::{CollabPool, JobError, JobPanic};
// The statistic types live in `evprop-trace` (shared with the serving
// runtime's metrics and the timeline analyzer); re-exported here so
// scheduler callers keep a single import path.
pub use evprop_trace::{RunReport, ThreadStats};
