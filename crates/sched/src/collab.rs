//! The collaborative scheduling algorithm (Algorithm 2 of the paper).

use crate::{RunReport, SchedulerConfig, TableArena, ThreadStats};
use crossbeam::utils::Backoff;
use evprop_potential::{EntryRange, PotentialTable};
use evprop_taskgraph::{TaskGraph, TaskId, TaskKind};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A schedulable unit: a static graph task, or one subtask of a
/// partitioned task (`part` indexes into the record's range list; the
/// last part is the combiner that inherits the original successors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exec {
    Static(TaskId),
    Part { rec: usize, part: usize },
}

/// Runtime record of one partitioned task (the paper's `T̂_1 … T̂_n`).
struct Record {
    task: TaskId,
    ranges: Vec<EntryRange>,
    /// Subtasks the combiner still waits for (`n − 1` initially).
    final_deps: AtomicU32,
    /// Private partial tables produced by marginalization subtasks,
    /// added together by the combiner.
    partials: Mutex<Vec<PotentialTable>>,
}

/// One thread's local ready list (LL) with its weight counter.
struct LocalList {
    queue: Mutex<VecDeque<Exec>>,
    weight: AtomicU64,
    /// Whether the owning thread is currently spinning for work — used
    /// as the tie-breaker so zero-weight *idle* threads win allocations
    /// over zero-weight busy ones.
    idle: AtomicBool,
}

/// Everything one scheduler **job** shares between workers. Built per
/// propagation by [`run_collaborative`] or [`crate::CollabPool::run`];
/// the pool hands workers a raw pointer to this for the job's duration.
pub(crate) struct Shared<'g> {
    graph: &'g TaskGraph,
    arena: &'g TableArena,
    cfg: &'g SchedulerConfig,
    /// Remaining dependency degree per static task.
    deps: Vec<AtomicU32>,
    lls: Vec<LocalList>,
    records: Mutex<Vec<Arc<Record>>>,
    /// Static tasks not yet (semantically) complete.
    remaining: AtomicUsize,
    partitioned: AtomicUsize,
    subtasks: AtomicUsize,
}

impl<'g> Shared<'g> {
    /// Prepares a job for `p` workers: dependency counters, one local
    /// ready list per worker, and the initially-ready tasks distributed
    /// round-robin (Line 1 of Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if the graph and arena disagree on buffer count.
    pub(crate) fn prepare(
        graph: &'g TaskGraph,
        arena: &'g TableArena,
        cfg: &'g SchedulerConfig,
        p: usize,
    ) -> Self {
        assert_eq!(
            graph.buffers().len(),
            arena.len(),
            "arena was not initialized for this graph"
        );
        let shared = Shared {
            graph,
            arena,
            cfg,
            deps: (0..graph.num_tasks())
                .map(|t| AtomicU32::new(graph.dependency_degree(TaskId(t))))
                .collect(),
            lls: (0..p)
                .map(|_| LocalList {
                    queue: Mutex::new(VecDeque::new()),
                    weight: AtomicU64::new(0),
                    idle: AtomicBool::new(false),
                })
                .collect(),
            records: Mutex::new(Vec::new()),
            remaining: AtomicUsize::new(graph.num_tasks()),
            partitioned: AtomicUsize::new(0),
            subtasks: AtomicUsize::new(0),
        };
        for (i, t) in graph.initial_ready().into_iter().enumerate() {
            let w = graph.task(t).weight;
            let ll = &shared.lls[i % p];
            ll.queue.lock().push_back(Exec::Static(t));
            ll.weight.fetch_add(w, Ordering::Relaxed);
        }
        shared
    }

    /// Folds the job-wide counters into `report` after all workers
    /// finished.
    pub(crate) fn finish_into(&self, report: &mut RunReport) {
        report.partitioned_tasks = self.partitioned.load(Ordering::Relaxed);
        report.subtasks_spawned = self.subtasks.load(Ordering::Relaxed);
    }
}

/// Runs two-phase evidence propagation: every task of `graph` executes
/// against `arena` under the collaborative scheduler with `cfg.num_threads`
/// workers. Returns per-thread statistics.
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_jtree::JunctionTree;
/// use evprop_potential::EvidenceSet;
/// use evprop_sched::{run_collaborative, SchedulerConfig, TableArena};
/// use evprop_taskgraph::TaskGraph;
///
/// let jt = JunctionTree::from_network(&networks::asia()).unwrap();
/// let graph = TaskGraph::from_shape(jt.shape());
/// let arena = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());
/// let report = run_collaborative(&graph, &arena, &SchedulerConfig::with_threads(2));
/// let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
/// assert!(executed >= graph.num_tasks());
/// ```
///
/// The arena must have been initialized for this graph
/// ([`TableArena::initialize`]); after the call the clique buffers hold
/// the calibrated potentials.
///
/// # Panics
///
/// Panics if the graph and arena disagree on buffer count.
///
/// This is the *spawn-per-query* path: it builds a one-shot
/// [`crate::CollabPool`], runs the single job, and tears the pool down —
/// paying `cfg.num_threads` thread spawns and joins per call. Services
/// answering many queries should hold a [`crate::CollabPool`] and call
/// [`crate::CollabPool::run`] directly to amortize that cost.
pub fn run_collaborative(
    graph: &TaskGraph,
    arena: &TableArena,
    cfg: &SchedulerConfig,
) -> RunReport {
    crate::CollabPool::new(cfg.num_threads).run(graph, arena, cfg)
}

/// The per-thread loop: Fetch → (Partition) → Execute → Allocate.
pub(crate) fn worker(sh: &Shared<'_>, id: usize) -> ThreadStats {
    let start = Instant::now();
    let mut stats = ThreadStats::default();
    let backoff = Backoff::new();
    loop {
        if sh.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // Fetch: head of own LL.
        let mine = sh.lls[id].queue.lock().pop_front();
        let e = match mine {
            Some(e) => {
                sh.lls[id]
                    .weight
                    .fetch_sub(exec_weight(sh, e), Ordering::Relaxed);
                sh.lls[id].idle.store(false, Ordering::Relaxed);
                backoff.reset();
                e
            }
            None => {
                if let Some(e) = sh.cfg.work_stealing.then(|| steal(sh, id)).flatten() {
                    sh.lls[id].idle.store(false, Ordering::Relaxed);
                    stats.steals += 1;
                    backoff.reset();
                    e
                } else {
                    sh.lls[id].idle.store(true, Ordering::Relaxed);
                    let spin_start = Instant::now();
                    backoff.snooze();
                    stats.idle_spin += spin_start.elapsed();
                    continue;
                }
            }
        };
        process(sh, id, e, &mut stats);
    }
    stats.overhead = start.elapsed().saturating_sub(stats.busy);
    stats
}

/// Work-stealing extension: pop from the tail of the heaviest victim
/// (keeping the victim's weight counter consistent).
fn steal(sh: &Shared<'_>, thief: usize) -> Option<Exec> {
    let victim = (0..sh.lls.len())
        .filter(|&j| j != thief)
        .max_by_key(|&j| sh.lls[j].weight.load(Ordering::Relaxed))?;
    let e = sh.lls[victim].queue.lock().pop_back()?;
    sh.lls[victim]
        .weight
        .fetch_sub(exec_weight(sh, e), Ordering::Relaxed);
    Some(e)
}

fn exec_weight(sh: &Shared<'_>, e: Exec) -> u64 {
    match e {
        Exec::Static(t) => sh.graph.task(t).weight,
        Exec::Part { rec, part } => {
            let r = sh.records.lock()[rec].clone();
            r.ranges[part].len() as u64
        }
    }
}

/// Allocate module: give a ready task to the thread with the smallest
/// weight counter (`arg min_t W_t`, Line 7 of Algorithm 2).
fn allocate(sh: &Shared<'_>, e: Exec, w: u64, stats: &mut ThreadStats) {
    stats.allocations += 1;
    let j = (0..sh.lls.len())
        .min_by_key(|&j| {
            (
                sh.lls[j].weight.load(Ordering::Relaxed),
                !sh.lls[j].idle.load(Ordering::Relaxed),
                j,
            )
        })
        .expect("at least one thread");
    sh.lls[j].weight.fetch_add(w, Ordering::Relaxed);
    sh.lls[j].queue.lock().push_back(e);
}

/// Executes one unit and performs the Allocate bookkeeping for whatever
/// it unblocks.
fn process(sh: &Shared<'_>, id: usize, e: Exec, stats: &mut ThreadStats) {
    match e {
        Exec::Static(t) => {
            let task = sh.graph.task(t);
            let len = task.weight as usize;
            match sh.cfg.partition_threshold {
                // Partition module: large task → subtasks of ≤ δ entries.
                Some(delta) if len > delta => {
                    let ranges = EntryRange::split(len, delta);
                    let n = ranges.len();
                    debug_assert!(n >= 2);
                    let record = Arc::new(Record {
                        task: t,
                        ranges,
                        final_deps: AtomicU32::new((n - 1) as u32),
                        partials: Mutex::new(Vec::new()),
                    });
                    let rec = {
                        let mut recs = sh.records.lock();
                        recs.push(record.clone());
                        recs.len() - 1
                    };
                    sh.partitioned.fetch_add(1, Ordering::Relaxed);
                    sh.subtasks.fetch_add(n, Ordering::Relaxed);
                    // middle subtasks spread across threads
                    for part in 1..n - 1 {
                        allocate(
                            sh,
                            Exec::Part { rec, part },
                            record.ranges[part].len() as u64,
                            stats,
                        );
                    }
                    // first subtask runs here, now
                    run_part(sh, id, rec, &record, 0, stats);
                }
                _ => {
                    let t0 = Instant::now();
                    // SAFETY: the task DAG gives this task exclusive
                    // access to its destination buffer (TaskGraph::validate).
                    unsafe { exec_full(&task.kind, sh.arena) };
                    record_exec(stats, t0, task.weight);
                    complete_static(sh, t, stats);
                }
            }
        }
        Exec::Part { rec, part } => {
            let record = sh.records.lock()[rec].clone();
            run_part(sh, id, rec, &record, part, stats);
        }
    }
}

fn record_exec(stats: &mut ThreadStats, t0: Instant, weight: u64) {
    stats.busy += t0.elapsed();
    stats.tasks_executed += 1;
    stats.weight_executed += weight;
}

/// Executes subtask `part` of a partitioned task.
fn run_part(
    sh: &Shared<'_>,
    _id: usize,
    rec: usize,
    record: &Record,
    part: usize,
    stats: &mut ThreadStats,
) {
    let n = record.ranges.len();
    let range = record.ranges[part];
    let task = sh.graph.task(record.task);
    let is_final = part == n - 1;

    let t0 = Instant::now();
    match task.kind {
        TaskKind::Marginalize { src, dst, max } => {
            if is_final {
                // SAFETY: all sibling subtasks have completed (final_deps
                // reached 0), so this task is the sole accessor of dst.
                let d = unsafe { sh.arena.get_mut(dst) };
                let s = unsafe { sh.arena.get(src) };
                d.fill(0.0);
                if max {
                    s.max_marginalize_range_into(range, d)
                        .expect("separator domain nests in clique domain");
                    for p in record.partials.lock().drain(..) {
                        d.max_assign(&p)
                            .expect("partials share the separator domain");
                    }
                } else {
                    s.marginalize_range_into(range, d)
                        .expect("separator domain nests in clique domain");
                    for p in record.partials.lock().drain(..) {
                        d.add_assign(&p)
                            .expect("partials share the separator domain");
                    }
                }
            } else {
                // private partial table; only the arena *source* is read
                // SAFETY: concurrent subtasks only read src.
                let s = unsafe { sh.arena.get(src) };
                let spec = &sh.graph.buffers()[dst.index()];
                stats.tables_allocated += 1;
                let mut partial = PotentialTable::zeros(spec.domain.clone());
                if max {
                    s.max_marginalize_range_into(range, &mut partial)
                        .expect("separator domain nests in clique domain");
                } else {
                    s.marginalize_range_into(range, &mut partial)
                        .expect("separator domain nests in clique domain");
                }
                record.partials.lock().push(partial);
            }
        }
        TaskKind::Divide { num, den, dst } => {
            // SAFETY: sibling subtasks write disjoint dst ranges.
            let d = unsafe { sh.arena.get_mut(dst) };
            let (nm, dn) = unsafe { (sh.arena.get(num), sh.arena.get(den)) };
            d.data_mut()[range.start..range.end]
                .copy_from_slice(&nm.data()[range.start..range.end]);
            d.divide_assign_range(range, dn)
                .expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            // SAFETY: sibling subtasks write disjoint dst ranges.
            let d = unsafe { sh.arena.get_mut(dst) };
            let s = unsafe { sh.arena.get(src) };
            s.extend_range_into(range, d)
                .expect("separator domain nests in clique domain");
        }
        TaskKind::Multiply { src, dst } => {
            // SAFETY: sibling subtasks write disjoint dst ranges.
            let d = unsafe { sh.arena.get_mut(dst) };
            let s = unsafe { sh.arena.get(src) };
            d.multiply_assign_range(range, s)
                .expect("extended ratio matches clique domain");
        }
    }
    record_exec(stats, t0, range.len() as u64);

    if is_final {
        complete_static(sh, record.task, stats);
    } else if record.final_deps.fetch_sub(1, Ordering::AcqRel) == 1 {
        // combiner becomes ready
        allocate(
            sh,
            Exec::Part { rec, part: n - 1 },
            record.ranges[n - 1].len() as u64,
            stats,
        );
    }
}

/// A static task is semantically done: decrease successors' dependency
/// degrees (allocating any that reach zero) and the remaining counter.
fn complete_static(sh: &Shared<'_>, t: TaskId, stats: &mut ThreadStats) {
    for &s in sh.graph.successors(t) {
        if sh.deps[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
            allocate(sh, Exec::Static(s), sh.graph.task(s).weight, stats);
        }
    }
    sh.remaining.fetch_sub(1, Ordering::AcqRel);
}

/// Whole-task execution against the arena; mirrors
/// `evprop_taskgraph::execute_full`, which the sequential engine uses —
/// keeping both paths trivially comparable.
///
/// # Safety
///
/// Caller must hold (via the task DAG) exclusive access to the task's
/// destination buffer and shared access to its sources.
unsafe fn exec_full(kind: &TaskKind, arena: &TableArena) {
    match *kind {
        TaskKind::Marginalize { src, dst, max } => {
            let d = arena.get_mut(dst);
            let s = arena.get(src);
            d.fill(0.0);
            let range = EntryRange::full(s.len());
            if max {
                s.max_marginalize_range_into(range, d)
                    .expect("separator domain nests in clique domain");
            } else {
                s.marginalize_range_into(range, d)
                    .expect("separator domain nests in clique domain");
            }
        }
        TaskKind::Divide { num, den, dst } => {
            let d = arena.get_mut(dst);
            let (nm, dn) = (arena.get(num), arena.get(den));
            d.data_mut().copy_from_slice(nm.data());
            d.divide_assign(dn).expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            let d = arena.get_mut(dst);
            let s = arena.get(src);
            s.extend_range_into(EntryRange::full(d.len()), d)
                .expect("separator domain nests in clique domain");
        }
        TaskKind::Multiply { src, dst } => {
            let d = arena.get_mut(dst);
            let s = arena.get(src);
            d.multiply_assign(s)
                .expect("extended ratio matches clique domain");
        }
    }
}

/// Convenience: total busy time across threads (used by tests).
#[allow(dead_code)]
pub(crate) fn total_busy(report: &RunReport) -> Duration {
    report.threads.iter().map(|t| t.busy).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use evprop_jtree::JunctionTree;
    use evprop_potential::EvidenceSet;
    use evprop_taskgraph::execute_full as seq_execute;

    /// Sequential reference: run all tasks in topological order.
    fn run_sequential(graph: &TaskGraph, arena: &mut TableArena) {
        let order = graph.topological_order().unwrap();
        let tables = arena.tables_mut();
        for t in order {
            seq_execute(&graph.task(t).kind, tables);
        }
    }

    fn asia_setup() -> (TaskGraph, Vec<PotentialTable>) {
        let jt = JunctionTree::from_network(&networks::asia()).unwrap();
        let g = TaskGraph::from_shape(jt.shape());
        let pots = jt.potentials().to_vec();
        (g, pots)
    }

    fn compare_engines(threads: usize, delta: Option<usize>, stealing: bool) {
        let (g, pots) = asia_setup();
        let ev = {
            let mut e = EvidenceSet::new();
            e.observe(evprop_potential::VarId(7), 1); // dysp = yes
            e
        };
        let mut seq = TableArena::initialize(&g, &pots, &ev);
        run_sequential(&g, &mut seq);
        let seq_tables = seq.into_tables();

        let mut cfg = SchedulerConfig::with_threads(threads);
        cfg.partition_threshold = delta;
        cfg.work_stealing = stealing;
        let par = TableArena::initialize(&g, &pots, &ev);
        let report = run_collaborative(&g, &par, &cfg);
        let par_tables = par.into_tables();

        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
        for (i, (a, b)) in seq_tables.iter().zip(&par_tables).enumerate() {
            assert!(
                a.approx_eq(b, 1e-9),
                "buffer {i} differs: {:?} vs {:?}",
                a,
                b
            );
        }
    }

    #[test]
    fn matches_sequential_single_thread() {
        compare_engines(1, None, false);
    }

    #[test]
    fn matches_sequential_multithreaded() {
        for p in [2, 4, 8] {
            compare_engines(p, None, false);
        }
    }

    #[test]
    fn matches_sequential_with_partitioning() {
        // tiny δ forces aggressive partitioning on every table
        for delta in [1, 2, 3, 7] {
            compare_engines(4, Some(delta), false);
        }
    }

    #[test]
    fn matches_sequential_with_stealing() {
        compare_engines(4, Some(2), true);
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let jt = {
            // single-clique tree
            let d = evprop_potential::Domain::new(vec![evprop_potential::Variable::binary(
                evprop_potential::VarId(0),
            )])
            .unwrap();
            let shape = evprop_jtree::TreeShape::new(vec![d.clone()], &[], 0).unwrap();
            JunctionTree::from_parts(shape, vec![PotentialTable::ones(d)]).unwrap()
        };
        let g = TaskGraph::from_shape(jt.shape());
        let arena = TableArena::initialize(&g, jt.potentials(), &EvidenceSet::new());
        let report = run_collaborative(&g, &arena, &SchedulerConfig::with_threads(4));
        assert_eq!(report.partitioned_tasks, 0);
        assert!(report.threads.iter().all(|t| t.tasks_executed == 0));
    }

    #[test]
    fn partition_stats_reported() {
        let (g, pots) = asia_setup();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2).with_delta(2);
        let report = run_collaborative(&g, &arena, &cfg);
        assert!(report.partitioned_tasks > 0);
        assert!(report.subtasks_spawned > report.partitioned_tasks);
    }

    #[test]
    fn all_threads_do_work_on_wide_trees() {
        // star-ish tree: many leaves → concurrent chains
        use evprop_potential::{Domain, VarId, Variable};
        let k = 8usize;
        let mut domains =
            vec![Domain::new((0..k as u32).map(|i| Variable::binary(VarId(i))).collect()).unwrap()];
        for i in 0..k as u32 {
            domains.push(Domain::new(vec![Variable::binary(VarId(i))]).unwrap());
        }
        let edges: Vec<(usize, usize)> = (1..=k).map(|i| (0, i)).collect();
        let shape = evprop_jtree::TreeShape::new(domains, &edges, 0).unwrap();
        let g = TaskGraph::from_shape(&shape);
        let pots: Vec<PotentialTable> = shape
            .domains()
            .iter()
            .map(|d| PotentialTable::ones(d.clone()))
            .collect();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2).without_partitioning();
        let report = run_collaborative(&g, &arena, &cfg);
        let total: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert_eq!(total, g.num_tasks());
    }
}
