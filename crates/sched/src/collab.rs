//! The collaborative scheduling algorithm (Algorithm 2 of the paper).

use crate::{ArenaView, CancelToken, RunReport, SchedulerConfig, TableArena, ThreadStats};
use crossbeam::utils::Backoff;
use evprop_potential::{raw, EntryRange, PotentialTable};
use evprop_taskgraph::{PlanId, TaskGraph, TaskId, TaskKind};
#[cfg(feature = "trace")]
use evprop_trace::{PrimitiveKind, SpanKind, TraceSink};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A schedulable unit: a static graph task, or one subtask of a
/// partitioned task (`part` indexes into the record's range list; the
/// last part is the combiner that inherits the original successors).
///
/// A `Part` carries its weight (its plan's op count) inline so the
/// Fetch, Steal and Allocate modules never have to consult the global
/// record list just to keep weight counters accurate, and its interned
/// [`PlanId`] so the executor runs the precompiled index map for its
/// range instead of recomputing strides (`None` for Divide, which is
/// contiguous on both sides and needs no plan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exec {
    Static(TaskId),
    Part {
        rec: usize,
        part: usize,
        weight: u64,
        plan: Option<PlanId>,
    },
}

/// Runtime record of one partitioned task (the paper's `T̂_1 … T̂_n`).
struct Record {
    task: TaskId,
    ranges: Vec<EntryRange>,
    /// Subtasks the combiner still waits for (`n − 1` initially).
    final_deps: AtomicU32,
    /// Private partial tables produced by marginalization subtasks,
    /// tagged with their part index. The combiner folds them in part
    /// order, so the combined result is bitwise identical no matter
    /// which threads ran which subtask in which interleaving.
    partials: Mutex<Vec<(usize, PotentialTable)>>,
}

/// One thread's local ready list (LL) with its weight counter.
///
/// The weight counter is kept consistent with the queue *under the
/// queue's lock*: every push adds the unit's weight after enqueueing and
/// every pop subtracts it before releasing the lock, so a unit is never
/// counted twice (or subtracted twice by a racing thief) no matter how
/// fetches and steals interleave.
struct LocalList {
    queue: Mutex<VecDeque<Exec>>,
    weight: AtomicU64,
    /// Whether the owning thread is currently spinning for work — used
    /// as the tie-breaker so zero-weight *idle* threads win allocations
    /// over zero-weight busy ones.
    idle: AtomicBool,
}

impl LocalList {
    fn push_back(&self, e: Exec, w: u64) {
        let mut q = self.queue.lock();
        q.push_back(e);
        self.weight.fetch_add(w, Ordering::Relaxed);
    }
}

/// Everything one scheduler **job** shares between workers. Built per
/// propagation by [`run_collaborative`] or [`crate::CollabPool::run`];
/// the pool hands workers a raw pointer to this for the job's duration.
pub(crate) struct Shared<'g> {
    graph: &'g TaskGraph,
    /// The job's window-granting view of the arena; see the safety model
    /// in [`crate::arena`]. Workers never touch the tables directly.
    view: ArenaView<'g>,
    cfg: &'g SchedulerConfig,
    /// Remaining dependency degree per static task.
    deps: Vec<AtomicU32>,
    lls: Vec<LocalList>,
    records: Mutex<Vec<Arc<Record>>>,
    /// Static tasks not yet (semantically) complete.
    remaining: AtomicUsize,
    partitioned: AtomicUsize,
    subtasks: AtomicUsize,
    /// Set when a worker panicked mid-job: the job's bookkeeping is
    /// unrecoverable (the panicked task's successors will never become
    /// ready), so every other worker must stop waiting for `remaining`
    /// to hit zero and bail out instead of spinning forever.
    aborted: AtomicBool,
    /// Optional cooperative cancellation token, checked by every worker
    /// at task boundaries alongside the abort flag. A cancelled job
    /// stops early and leaves `remaining > 0`, which the pool reports
    /// as [`crate::JobError::Cancelled`]; a job that drains before any
    /// worker observes the token completes normally.
    cancel: Option<CancelToken>,
    /// Optional span sink: worker `id` records into row `id`, the
    /// submitter records the job span on the control row. An `Arc`
    /// (not a borrow) so attaching a sink never narrows the job
    /// descriptor's `'g` lifetime.
    #[cfg(feature = "trace")]
    trace: Option<Arc<TraceSink>>,
}

impl<'g> Shared<'g> {
    /// Prepares a job for `p` workers: dependency counters, one local
    /// ready list per worker, and the initially-ready tasks placed by
    /// the same weight-aware rule the Allocate module uses (`arg min_t
    /// W_t`, Line 7 of Algorithm 2) — round-robin would hand one thread
    /// several heavy roots while another starts idle.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the *serialized jobs* invariant for the
    /// lifetime of the returned `Shared`: it is the arena's only user,
    /// and nothing accesses the arena except through this job's view
    /// (see [`TableArena::job_view`]). [`crate::CollabPool::run`]
    /// guarantees this with its submission lock and completion
    /// handshake.
    ///
    /// # Panics
    ///
    /// Panics if the graph and arena disagree on buffer count.
    pub(crate) unsafe fn prepare(
        graph: &'g TaskGraph,
        arena: &'g TableArena,
        cfg: &'g SchedulerConfig,
        p: usize,
    ) -> Self {
        assert_eq!(
            graph.buffers().len(),
            arena.len(),
            "arena was not initialized for this graph"
        );
        let shared = Shared {
            graph,
            // SAFETY: forwarded to our caller — sole arena user for the
            // lifetime of this job.
            view: arena.job_view(),
            cfg,
            deps: (0..graph.num_tasks())
                .map(|t| AtomicU32::new(graph.dependency_degree(TaskId(t))))
                .collect(),
            lls: (0..p)
                .map(|_| LocalList {
                    queue: Mutex::new(VecDeque::new()),
                    weight: AtomicU64::new(0),
                    idle: AtomicBool::new(false),
                })
                .collect(),
            records: Mutex::new(Vec::new()),
            remaining: AtomicUsize::new(graph.num_tasks()),
            partitioned: AtomicUsize::new(0),
            subtasks: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            cancel: None,
            #[cfg(feature = "trace")]
            trace: None,
        };
        for t in graph.initial_ready() {
            let w = graph.task(t).weight;
            shared.lls[least_loaded(&shared.lls)].push_back(Exec::Static(t), w);
        }
        shared
    }

    /// Folds the job-wide counters into `report` after all workers
    /// finished.
    pub(crate) fn finish_into(&self, report: &mut RunReport) {
        report.partitioned_tasks = self.partitioned.load(Ordering::Relaxed);
        report.subtasks_spawned = self.subtasks.load(Ordering::Relaxed);
    }

    /// Marks the job as unrecoverable (a worker panicked). Release
    /// ordering pairs with the Acquire load in the worker loop: a
    /// worker observing the flag also observes that no more of this
    /// job's tasks will complete.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// `true` once [`Shared::abort`] ran.
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Attaches the job's cancellation token. Like
    /// [`Shared::set_trace`], this must happen before any worker starts
    /// the job (the pool does it under its submission lock,
    /// pre-handoff).
    pub(crate) fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Whether the job's token (if any) has fired. One `Option` branch
    /// when no token is attached — the steady-state serving path.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// How many static tasks never (semantically) completed — nonzero
    /// after a cancelled or aborted job.
    pub(crate) fn tasks_remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Attaches the sink workers record into. Must happen before any
    /// worker starts the job (the pool does it under its submission
    /// lock, pre-handoff).
    #[cfg(feature = "trace")]
    pub(crate) fn set_trace(&mut self, sink: Option<Arc<TraceSink>>) {
        self.trace = sink;
    }

    /// Records the whole-job span on the sink's control row.
    #[cfg(feature = "trace")]
    pub(crate) fn trace_job_span(&self, started: Instant, tasks: usize) {
        if let Some(sink) = &self.trace {
            sink.control().span(
                SpanKind::Job {
                    tasks: tasks as u32,
                },
                sink.clock().ns_at(started),
                sink.clock().now_ns(),
            );
        }
    }

    /// The recording handle worker `id` threads through its loop.
    #[cfg(feature = "trace")]
    fn tracer(&self, id: usize) -> WorkerTracer<'_> {
        WorkerTracer {
            // Rows beyond the sink (a sink sized for fewer workers
            // than the pool has) silently record nothing rather than
            // panicking mid-job.
            sink: self.trace.as_deref().filter(|s| id < s.rows()),
            row: id,
            idle_since: None,
        }
    }

    #[cfg(not(feature = "trace"))]
    fn tracer(&self, _id: usize) -> WorkerTracer {
        WorkerTracer
    }

    /// Post-job invariant: every ready list is empty and every weight
    /// counter is back at zero. A leftover queue entry means a lost
    /// task; a nonzero weight means a bookkeeping leak that would skew
    /// every Allocate decision of the *next* job on a reused pool.
    /// Release builds skip the check (and the tests that call it), so
    /// the method is debug/test-only.
    #[cfg_attr(not(any(debug_assertions, test)), allow(dead_code))]
    pub(crate) fn assert_drained(&self) {
        for (i, ll) in self.lls.iter().enumerate() {
            let q = ll.queue.lock();
            assert!(
                q.is_empty(),
                "thread {i}'s ready list still holds {} entries after the job",
                q.len()
            );
            let w = ll.weight.load(Ordering::Relaxed);
            assert_eq!(w, 0, "thread {i}'s weight counter leaked {w} after the job");
        }
    }
}

/// Per-worker recording handle: buffers the current idle stretch and
/// forwards scheduler events to the worker's sink row. Without the
/// `trace` feature it is a zero-sized type whose methods are empty —
/// the hot path carries no tracing code at all.
#[cfg(feature = "trace")]
struct WorkerTracer<'s> {
    sink: Option<&'s TraceSink>,
    row: usize,
    /// Start of the current contiguous idle stretch, so back-to-back
    /// snoozes collapse into one `IdleSpin` span instead of flooding
    /// the ring with one event per backoff step.
    idle_since: Option<Instant>,
}

#[cfg(feature = "trace")]
impl WorkerTracer<'_> {
    fn fetch(&self) {
        if let Some(s) = self.sink {
            s.recorder(self.row)
                .instant(SpanKind::Fetch, s.clock().now_ns());
        }
    }

    fn steal(&self, victim: usize) {
        if let Some(s) = self.sink {
            s.recorder(self.row).instant(
                SpanKind::Steal {
                    victim: victim as u32,
                },
                s.clock().now_ns(),
            );
        }
    }

    fn idle_begin(&mut self, at: Instant) {
        if self.sink.is_some() {
            self.idle_since.get_or_insert(at);
        }
    }

    fn work_resumed(&mut self) {
        if let (Some(s), Some(t0)) = (self.sink, self.idle_since.take()) {
            s.recorder(self.row)
                .span(SpanKind::IdleSpin, s.clock().ns_at(t0), s.clock().now_ns());
        }
    }

    fn partition(&self, kind: &TaskKind, parts: usize) {
        if let Some(s) = self.sink {
            let (buffer, _) = task_target(kind);
            s.recorder(self.row).instant(
                SpanKind::Partition {
                    buffer,
                    parts: parts as u32,
                },
                s.clock().now_ns(),
            );
        }
    }

    /// Records a task span from the *same* two instants the
    /// `ThreadStats::busy` measurement used, so the analyzer's busy
    /// totals and the stats agree exactly.
    fn task(&self, kind: &TaskKind, weight: u64, part: Option<u32>, t0: Instant, t1: Instant) {
        if let Some(s) = self.sink {
            let (buffer, primitive) = task_target(kind);
            s.recorder(self.row).span(
                SpanKind::Task {
                    buffer,
                    primitive,
                    weight,
                    part,
                },
                s.clock().ns_at(t0),
                s.clock().ns_at(t1),
            );
        }
    }

    fn finish(&mut self) {
        self.work_resumed();
    }
}

/// Destination buffer and primitive of a task kind, for span labels.
#[cfg(feature = "trace")]
fn task_target(kind: &TaskKind) -> (u32, PrimitiveKind) {
    match *kind {
        TaskKind::Marginalize { dst, max, .. } => (
            dst.index() as u32,
            if max {
                PrimitiveKind::MaxMarginalize
            } else {
                PrimitiveKind::Marginalize
            },
        ),
        TaskKind::Divide { dst, .. } => (dst.index() as u32, PrimitiveKind::Divide),
        TaskKind::Extend { dst, .. } => (dst.index() as u32, PrimitiveKind::Extend),
        TaskKind::Multiply { dst, .. } => (dst.index() as u32, PrimitiveKind::Multiply),
    }
}

#[cfg(not(feature = "trace"))]
struct WorkerTracer;

#[cfg(not(feature = "trace"))]
impl WorkerTracer {
    fn fetch(&self) {}
    fn steal(&self, _victim: usize) {}
    fn idle_begin(&mut self, _at: Instant) {}
    fn work_resumed(&mut self) {}
    fn partition(&self, _kind: &TaskKind, _parts: usize) {}
    fn task(&self, _kind: &TaskKind, _weight: u64, _part: Option<u32>, _t0: Instant, _t1: Instant) {
    }
    fn finish(&mut self) {}
}

/// Runs two-phase evidence propagation: every task of `graph` executes
/// against `arena` under the collaborative scheduler with `cfg.num_threads`
/// workers. Returns per-thread statistics.
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_jtree::JunctionTree;
/// use evprop_potential::EvidenceSet;
/// use evprop_sched::{run_collaborative, SchedulerConfig, TableArena};
/// use evprop_taskgraph::TaskGraph;
///
/// let jt = JunctionTree::from_network(&networks::asia()).unwrap();
/// let graph = TaskGraph::from_shape(jt.shape());
/// let arena = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());
/// let report = run_collaborative(&graph, &arena, &SchedulerConfig::with_threads(2));
/// let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
/// assert!(executed >= graph.num_tasks());
/// ```
///
/// The arena must have been initialized for this graph
/// ([`TableArena::initialize`]); after the call the clique buffers hold
/// the calibrated potentials.
///
/// # Panics
///
/// Panics if the graph and arena disagree on buffer count.
///
/// This is the *spawn-per-query* path: it builds a one-shot
/// [`crate::CollabPool`], runs the single job, and tears the pool down —
/// paying `cfg.num_threads` thread spawns and joins per call. Services
/// answering many queries should hold a [`crate::CollabPool`] and call
/// [`crate::CollabPool::run`] directly to amortize that cost (and to
/// observe worker panics as an `Err` instead of the re-panic here).
pub fn run_collaborative(
    graph: &TaskGraph,
    arena: &TableArena,
    cfg: &SchedulerConfig,
) -> RunReport {
    crate::CollabPool::new(cfg.num_threads)
        .run(graph, arena, cfg)
        .unwrap_or_else(|p| panic!("{p}"))
}

/// The per-thread loop: Fetch → (Partition) → Execute → Allocate.
pub(crate) fn worker(sh: &Shared<'_>, id: usize) -> ThreadStats {
    let start = Instant::now();
    let mut stats = ThreadStats::default();
    let mut tr = sh.tracer(id);
    let backoff = Backoff::new();
    loop {
        if sh.remaining.load(Ordering::Acquire) == 0 || sh.is_aborted() || sh.is_cancelled() {
            break;
        }
        // Fetch: head of own LL.
        let e = match pop_front(sh, id) {
            Some(e) => {
                sh.lls[id].idle.store(false, Ordering::Relaxed);
                backoff.reset();
                tr.work_resumed();
                tr.fetch();
                e
            }
            None => {
                if let Some((e, victim)) = sh.cfg.work_stealing.then(|| steal(sh, id)).flatten() {
                    sh.lls[id].idle.store(false, Ordering::Relaxed);
                    stats.steals += 1;
                    backoff.reset();
                    tr.work_resumed();
                    tr.steal(victim);
                    e
                } else {
                    sh.lls[id].idle.store(true, Ordering::Relaxed);
                    let spin_start = Instant::now();
                    tr.idle_begin(spin_start);
                    backoff.snooze();
                    stats.idle_spin += spin_start.elapsed();
                    continue;
                }
            }
        };
        process(sh, id, e, &mut stats, &tr);
    }
    tr.finish();
    stats.overhead = start.elapsed().saturating_sub(stats.busy);
    stats
}

/// Pops the head of thread `id`'s LL, keeping the weight counter
/// consistent under the queue lock.
fn pop_front(sh: &Shared<'_>, id: usize) -> Option<Exec> {
    let ll = &sh.lls[id];
    let mut q = ll.queue.lock();
    let e = q.pop_front()?;
    ll.weight
        .fetch_sub(exec_weight(sh.graph, e), Ordering::Relaxed);
    Some(e)
}

/// Work-stealing extension: pop from the tail of the heaviest victim,
/// returning the unit and the victim's id. The weight is recomputed
/// from the unit actually popped, under the victim's queue lock —
/// subtracting a weight read *before* the pop could double-subtract
/// when a racing fetch drains the same entry.
fn steal(sh: &Shared<'_>, thief: usize) -> Option<(Exec, usize)> {
    let victim = (0..sh.lls.len())
        .filter(|&j| j != thief)
        .max_by_key(|&j| sh.lls[j].weight.load(Ordering::Relaxed))?;
    let ll = &sh.lls[victim];
    let mut q = ll.queue.lock();
    let e = q.pop_back()?;
    ll.weight
        .fetch_sub(exec_weight(sh.graph, e), Ordering::Relaxed);
    Some((e, victim))
}

/// A unit's weight without any global lookup: static weights live in the
/// graph, subtask weights ride inline in the token.
fn exec_weight(graph: &TaskGraph, e: Exec) -> u64 {
    match e {
        Exec::Static(t) => graph.task(t).weight,
        Exec::Part { weight, .. } => weight,
    }
}

/// The Allocate target: the thread with the smallest weight counter,
/// preferring idle threads on ties (then lowest id). Shared by the
/// Allocate module and the initial distribution in [`Shared::prepare`].
fn least_loaded(lls: &[LocalList]) -> usize {
    (0..lls.len())
        .min_by_key(|&j| {
            (
                lls[j].weight.load(Ordering::Relaxed),
                !lls[j].idle.load(Ordering::Relaxed),
                j,
            )
        })
        .expect("at least one thread")
}

/// Allocate module: give a ready task to the thread with the smallest
/// weight counter (`arg min_t W_t`, Line 7 of Algorithm 2).
fn allocate(sh: &Shared<'_>, e: Exec, w: u64, stats: &mut ThreadStats) {
    stats.allocations += 1;
    sh.lls[least_loaded(&sh.lls)].push_back(e, w);
}

/// Executes one unit and performs the Allocate bookkeeping for whatever
/// it unblocks.
fn process(sh: &Shared<'_>, id: usize, e: Exec, stats: &mut ThreadStats, tr: &WorkerTracer) {
    #[cfg(feature = "chaos")]
    if let Some(delay) = crate::chaos::kernel_slowdown() {
        std::thread::sleep(delay);
    }
    match e {
        Exec::Static(t) => {
            // Fault injection: poison one task to exercise the pool's
            // panic containment (a real panic here would be a bug in a
            // primitive or an OOM inside a partial-table allocation).
            if sh.cfg.poison_task == Some(t.index()) {
                panic!("injected poison: task {} panicked", t.index());
            }
            let task = sh.graph.task(t);
            let len = sh.graph.partition_len(t);
            match sh.cfg.partition_threshold {
                // Partition module: large task → subtasks of ≤ δ entries.
                Some(delta) if len > delta => {
                    let ranges = EntryRange::split(len, delta);
                    let n = ranges.len();
                    debug_assert!(n >= 2);
                    let record = Arc::new(Record {
                        task: t,
                        ranges,
                        final_deps: AtomicU32::new((n - 1) as u32),
                        partials: Mutex::new(Vec::new()),
                    });
                    let rec = {
                        let mut recs = sh.records.lock();
                        recs.push(record.clone());
                        recs.len() - 1
                    };
                    sh.partitioned.fetch_add(1, Ordering::Relaxed);
                    sh.subtasks.fetch_add(n, Ordering::Relaxed);
                    tr.partition(&task.kind, n);
                    // middle subtasks spread across threads
                    for part in 1..n - 1 {
                        let (plan, weight) = subtask_plan(sh, t, record.ranges[part]);
                        allocate(
                            sh,
                            Exec::Part {
                                rec,
                                part,
                                weight,
                                plan,
                            },
                            weight,
                            stats,
                        );
                    }
                    // first subtask runs here, now
                    let (plan, _) = subtask_plan(sh, t, record.ranges[0]);
                    run_part(sh, id, rec, &record, 0, plan, stats, tr);
                }
                _ => {
                    let t0 = Instant::now();
                    // SAFETY: the task DAG gives this task exclusive
                    // access to its destination buffer
                    // (TaskGraph::validate) and orders every writer of
                    // its sources before it.
                    unsafe { exec_full(sh, t) };
                    let t1 = record_exec(stats, t0, task.weight);
                    tr.task(&task.kind, task.weight, None, t0, t1);
                    complete_static(sh, t, stats);
                }
            }
        }
        Exec::Part {
            rec, part, plan, ..
        } => {
            let record = sh.records.lock()[rec].clone();
            run_part(sh, id, rec, &record, part, plan, stats, tr);
        }
    }
}

/// Interned plan id and plan op-count weight for one subtask range of
/// task `t`. The graph's [`PlanCache`](evprop_taskgraph::PlanCache)
/// memoizes ids by `(task, range)` without compiling — the program is
/// built by whichever worker dereferences it first in `run_part`, and
/// every later propagation hits both caches. A plan's `ops()` equals
/// its range length by definition, so the weight never needs the
/// compiled program; Divide carries no plan (contiguous on both sides)
/// and gets the same range-length weight.
fn subtask_plan(sh: &Shared<'_>, t: TaskId, range: EntryRange) -> (Option<PlanId>, u64) {
    (sh.graph.ranged_plan_id(t, range), range.len() as u64)
}

/// Books one executed unit into `stats`, returning the end instant so
/// a trace span can reuse the exact same measurement.
fn record_exec(stats: &mut ThreadStats, t0: Instant, weight: u64) -> Instant {
    let t1 = Instant::now();
    stats.busy += t1.duration_since(t0);
    stats.tasks_executed += 1;
    stats.weight_executed += weight;
    t1
}

/// Executes subtask `part` of a partitioned task.
///
/// Every arena access goes through a window of the job's [`ArenaView`]:
/// a subtask owns exactly its own [`EntryRange`] of the destination
/// (never a reference to the table), sibling ranges are disjoint by
/// construction ([`EntryRange::split`]), and sources are shared
/// read-only windows — the Rust-visible shape of the paper's
/// "concurrent writes to one table are fine because ranges are
/// disjoint" argument.
///
/// Cross-domain subtasks execute through the interned [`KernelPlan`]
/// named by `plan` (compiled once per `(task, range)` and cached on the
/// graph); with `plan-off` they run the stride-walking kernels instead,
/// which compute bitwise-identical results.
#[allow(clippy::too_many_arguments)]
fn run_part(
    sh: &Shared<'_>,
    _id: usize,
    rec: usize,
    record: &Record,
    part: usize,
    plan: Option<PlanId>,
    stats: &mut ThreadStats,
    tr: &WorkerTracer,
) {
    #[cfg(feature = "plan-off")]
    let _ = plan;
    let n = record.ranges.len();
    let range = record.ranges[part];
    let task = sh.graph.task(record.task);
    let is_final = part == n - 1;
    let buffers = sh.graph.buffers();

    let t0 = Instant::now();
    match task.kind {
        TaskKind::Marginalize { src, dst, max } => {
            #[cfg(feature = "plan-off")]
            let src_domain = &buffers[src.index()].domain;
            let dst_domain = &buffers[dst.index()].domain;
            #[cfg(not(feature = "plan-off"))]
            let kplan = sh
                .graph
                .plans()
                .get(plan.expect("marginalize subtasks carry a plan"));
            // SAFETY: the task DAG orders every writer of src before
            // this task; sibling subtasks only read src (overlapping
            // shared windows are fine).
            let s = unsafe { sh.view.read_full(src) };
            if is_final {
                // SAFETY: all sibling subtasks have completed (final_deps
                // reached 0), so this subtask is the sole accessor of dst.
                let mut d = unsafe { sh.view.write_full(dst) };
                let out = d.as_mut_slice();
                out.fill(0.0);
                #[cfg(not(feature = "plan-off"))]
                if max {
                    kplan
                        .marginalize_max_into(&s, out)
                        .expect("plan was compiled for these buffers");
                } else {
                    kplan
                        .marginalize_sum_into(&s, out)
                        .expect("plan was compiled for these buffers");
                }
                #[cfg(feature = "plan-off")]
                if max {
                    raw::max_marginalize_range_into_raw(src_domain, &s, range, dst_domain, out)
                        .expect("separator domain nests in clique domain");
                } else {
                    raw::marginalize_range_into_raw(src_domain, &s, range, dst_domain, out)
                        .expect("separator domain nests in clique domain");
                }
                // Fold partials in part order: the combined marginal is
                // then bitwise reproducible across thread counts and
                // schedules (FP addition is not associative, so an
                // arrival-order fold would not be).
                let mut parts = record.partials.lock();
                parts.sort_unstable_by_key(|&(i, _)| i);
                for (_, p) in parts.drain(..) {
                    if max {
                        raw::max_assign_raw(out, p.data())
                            .expect("partials share the separator domain");
                    } else {
                        raw::add_assign_raw(out, p.data())
                            .expect("partials share the separator domain");
                    }
                }
            } else {
                // private partial table; only the arena source is read
                stats.tables_allocated += 1;
                let mut partial = PotentialTable::zeros(dst_domain.clone());
                #[cfg(not(feature = "plan-off"))]
                if max {
                    kplan
                        .marginalize_max_into(&s, partial.data_mut())
                        .expect("plan was compiled for these buffers");
                } else {
                    kplan
                        .marginalize_sum_into(&s, partial.data_mut())
                        .expect("plan was compiled for these buffers");
                }
                #[cfg(feature = "plan-off")]
                if max {
                    raw::max_marginalize_range_into_raw(
                        src_domain,
                        &s,
                        range,
                        dst_domain,
                        partial.data_mut(),
                    )
                    .expect("separator domain nests in clique domain");
                } else {
                    raw::marginalize_range_into_raw(
                        src_domain,
                        &s,
                        range,
                        dst_domain,
                        partial.data_mut(),
                    )
                    .expect("separator domain nests in clique domain");
                }
                record.partials.lock().push((part, partial));
            }
        }
        TaskKind::Divide { num, den, dst } => {
            // SAFETY: sibling subtasks own disjoint dst windows; num and
            // den are only read, ordered after their writers by the DAG.
            let nm = unsafe { sh.view.read_full(num) };
            let dn = unsafe { sh.view.read_full(den) };
            let mut d = unsafe { sh.view.write_range(dst, range) };
            raw::divide_range_into(&nm, &dn, range, d.as_mut_slice())
                .expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            #[cfg(feature = "plan-off")]
            let src_domain = &buffers[src.index()].domain;
            #[cfg(feature = "plan-off")]
            let dst_domain = &buffers[dst.index()].domain;
            // SAFETY: as for Divide — disjoint dst windows, read-only src.
            let s = unsafe { sh.view.read_full(src) };
            let mut d = unsafe { sh.view.write_range(dst, range) };
            #[cfg(not(feature = "plan-off"))]
            sh.graph
                .plans()
                .get(plan.expect("extend subtasks carry a plan"))
                .extend_into(&s, d.as_mut_slice())
                .expect("plan was compiled for these buffers");
            #[cfg(feature = "plan-off")]
            raw::extend_range_into_raw(src_domain, &s, dst_domain, range, d.as_mut_slice())
                .expect("separator domain nests in clique domain");
        }
        TaskKind::Multiply { src, dst } => {
            #[cfg(feature = "plan-off")]
            let src_domain = &buffers[src.index()].domain;
            #[cfg(feature = "plan-off")]
            let dst_domain = &buffers[dst.index()].domain;
            // SAFETY: as for Divide — disjoint dst windows, read-only src.
            let s = unsafe { sh.view.read_full(src) };
            let mut d = unsafe { sh.view.write_range(dst, range) };
            #[cfg(not(feature = "plan-off"))]
            sh.graph
                .plans()
                .get(plan.expect("multiply subtasks carry a plan"))
                .multiply_into(&s, d.as_mut_slice())
                .expect("plan was compiled for these buffers");
            #[cfg(feature = "plan-off")]
            raw::multiply_range_into(src_domain, &s, dst_domain, range, d.as_mut_slice())
                .expect("extended ratio matches clique domain");
        }
    }
    let t1 = record_exec(stats, t0, range.len() as u64);
    tr.task(&task.kind, range.len() as u64, Some(part as u32), t0, t1);

    if is_final {
        complete_static(sh, record.task, stats);
    } else if record.final_deps.fetch_sub(1, Ordering::AcqRel) == 1 {
        // combiner becomes ready
        let (plan, weight) = subtask_plan(sh, record.task, record.ranges[n - 1]);
        allocate(
            sh,
            Exec::Part {
                rec,
                part: n - 1,
                weight,
                plan,
            },
            weight,
            stats,
        );
    }
}

/// A static task is semantically done: decrease successors' dependency
/// degrees (allocating any that reach zero) and the remaining counter.
fn complete_static(sh: &Shared<'_>, t: TaskId, stats: &mut ThreadStats) {
    for &s in sh.graph.successors(t) {
        if sh.deps[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
            allocate(sh, Exec::Static(s), sh.graph.task(s).weight, stats);
        }
    }
    sh.remaining.fetch_sub(1, Ordering::AcqRel);
}

/// Whole-task execution through the job's view: the task's interned
/// full-range [`KernelPlan`] over the full range (or, with `plan-off`,
/// the same raw walker primitives the partitioned path uses), so the
/// partitioned and unpartitioned schedules compute literally the same
/// arithmetic.
///
/// # Safety
///
/// Caller must hold (via the task DAG) exclusive access to the task's
/// destination buffer and shared access to its sources.
unsafe fn exec_full(sh: &Shared<'_>, t: TaskId) {
    #[cfg(feature = "plan-off")]
    let buffers = sh.graph.buffers();
    #[cfg(not(feature = "plan-off"))]
    let plan = |msg: &str| sh.graph.task_plan(t).expect(msg);
    match sh.graph.task(t).kind {
        TaskKind::Marginalize { src, dst, max } => {
            let s = sh.view.read_full(src);
            let mut d = sh.view.write_full(dst);
            let out = d.as_mut_slice();
            out.fill(0.0);
            #[cfg(not(feature = "plan-off"))]
            {
                let kplan = plan("marginalize tasks carry a plan");
                if max {
                    kplan
                        .marginalize_max_into(&s, out)
                        .expect("plan was compiled for these buffers");
                } else {
                    kplan
                        .marginalize_sum_into(&s, out)
                        .expect("plan was compiled for these buffers");
                }
            }
            #[cfg(feature = "plan-off")]
            {
                let src_domain = &buffers[src.index()].domain;
                let dst_domain = &buffers[dst.index()].domain;
                let range = EntryRange::full(s.len());
                if max {
                    raw::max_marginalize_range_into_raw(src_domain, &s, range, dst_domain, out)
                        .expect("separator domain nests in clique domain");
                } else {
                    raw::marginalize_range_into_raw(src_domain, &s, range, dst_domain, out)
                        .expect("separator domain nests in clique domain");
                }
            }
        }
        TaskKind::Divide { num, den, dst } => {
            let nm = sh.view.read_full(num);
            let dn = sh.view.read_full(den);
            let mut d = sh.view.write_full(dst);
            raw::divide_range_into(&nm, &dn, EntryRange::full(nm.len()), d.as_mut_slice())
                .expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            let s = sh.view.read_full(src);
            let mut d = sh.view.write_full(dst);
            #[cfg(not(feature = "plan-off"))]
            plan("extend tasks carry a plan")
                .extend_into(&s, d.as_mut_slice())
                .expect("plan was compiled for these buffers");
            #[cfg(feature = "plan-off")]
            {
                let src_domain = &buffers[src.index()].domain;
                let dst_domain = &buffers[dst.index()].domain;
                let range = EntryRange::full(d.len());
                raw::extend_range_into_raw(src_domain, &s, dst_domain, range, d.as_mut_slice())
                    .expect("separator domain nests in clique domain");
            }
        }
        TaskKind::Multiply { src, dst } => {
            let s = sh.view.read_full(src);
            let mut d = sh.view.write_full(dst);
            #[cfg(not(feature = "plan-off"))]
            plan("multiply tasks carry a plan")
                .multiply_into(&s, d.as_mut_slice())
                .expect("plan was compiled for these buffers");
            #[cfg(feature = "plan-off")]
            {
                let src_domain = &buffers[src.index()].domain;
                let dst_domain = &buffers[dst.index()].domain;
                let range = EntryRange::full(d.len());
                raw::multiply_range_into(src_domain, &s, dst_domain, range, d.as_mut_slice())
                    .expect("extended ratio matches clique domain");
            }
        }
    }
}

/// Convenience: total busy time across threads (used by tests).
#[allow(dead_code)]
pub(crate) fn total_busy(report: &RunReport) -> Duration {
    report.threads.iter().map(|t| t.busy).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use evprop_jtree::JunctionTree;
    use evprop_potential::EvidenceSet;
    use evprop_taskgraph::execute_full as seq_execute;

    /// Sequential reference: run all tasks in topological order.
    fn run_sequential(graph: &TaskGraph, arena: &mut TableArena) {
        let order = graph.topological_order().unwrap();
        let tables = arena.tables_mut();
        for t in order {
            seq_execute(&graph.task(t).kind, tables);
        }
    }

    fn asia_setup() -> (TaskGraph, Vec<PotentialTable>) {
        let jt = JunctionTree::from_network(&networks::asia()).unwrap();
        let g = TaskGraph::from_shape(jt.shape());
        let pots = jt.potentials().to_vec();
        (g, pots)
    }

    fn compare_engines(threads: usize, delta: Option<usize>, stealing: bool) {
        let (g, pots) = asia_setup();
        let ev = {
            let mut e = EvidenceSet::new();
            e.observe(evprop_potential::VarId(7), 1); // dysp = yes
            e
        };
        let mut seq = TableArena::initialize(&g, &pots, &ev);
        run_sequential(&g, &mut seq);
        let seq_tables = seq.into_tables();

        let mut cfg = SchedulerConfig::with_threads(threads);
        cfg.partition_threshold = delta;
        cfg.work_stealing = stealing;
        let par = TableArena::initialize(&g, &pots, &ev);
        let report = run_collaborative(&g, &par, &cfg);
        let par_tables = par.into_tables();

        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
        for (i, (a, b)) in seq_tables.iter().zip(&par_tables).enumerate() {
            assert!(
                a.approx_eq(b, 1e-9),
                "buffer {i} differs: {:?} vs {:?}",
                a,
                b
            );
        }
    }

    #[test]
    fn matches_sequential_single_thread() {
        compare_engines(1, None, false);
    }

    #[test]
    fn matches_sequential_multithreaded() {
        for p in [2, 4, 8] {
            compare_engines(p, None, false);
        }
    }

    #[test]
    fn matches_sequential_with_partitioning() {
        // tiny δ forces aggressive partitioning on every table
        for delta in [1, 2, 3, 7] {
            compare_engines(4, Some(delta), false);
        }
    }

    #[test]
    fn matches_sequential_with_stealing() {
        compare_engines(4, Some(2), true);
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let jt = {
            // single-clique tree
            let d = evprop_potential::Domain::new(vec![evprop_potential::Variable::binary(
                evprop_potential::VarId(0),
            )])
            .unwrap();
            let shape = evprop_jtree::TreeShape::new(vec![d.clone()], &[], 0).unwrap();
            JunctionTree::from_parts(shape, vec![PotentialTable::ones(d)]).unwrap()
        };
        let g = TaskGraph::from_shape(jt.shape());
        let arena = TableArena::initialize(&g, jt.potentials(), &EvidenceSet::new());
        let report = run_collaborative(&g, &arena, &SchedulerConfig::with_threads(4));
        assert_eq!(report.partitioned_tasks, 0);
        assert!(report.threads.iter().all(|t| t.tasks_executed == 0));
    }

    #[test]
    fn partition_stats_reported() {
        let (g, pots) = asia_setup();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2).with_delta(2);
        let report = run_collaborative(&g, &arena, &cfg);
        assert!(report.partitioned_tasks > 0);
        assert!(report.subtasks_spawned > report.partitioned_tasks);
    }

    #[test]
    fn all_threads_do_work_on_wide_trees() {
        // star-ish tree: many leaves → concurrent chains
        use evprop_potential::{Domain, VarId, Variable};
        let k = 8usize;
        let mut domains =
            vec![Domain::new((0..k as u32).map(|i| Variable::binary(VarId(i))).collect()).unwrap()];
        for i in 0..k as u32 {
            domains.push(Domain::new(vec![Variable::binary(VarId(i))]).unwrap());
        }
        let edges: Vec<(usize, usize)> = (1..=k).map(|i| (0, i)).collect();
        let shape = evprop_jtree::TreeShape::new(domains, &edges, 0).unwrap();
        let g = TaskGraph::from_shape(&shape);
        let pots: Vec<PotentialTable> = shape
            .domains()
            .iter()
            .map(|d| PotentialTable::ones(d.clone()))
            .collect();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2).without_partitioning();
        let report = run_collaborative(&g, &arena, &cfg);
        let total: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert_eq!(total, g.num_tasks());
    }

    /// Regression for the weight-accounting races: after a job with
    /// aggressive partitioning *and* stealing, every LL must be empty
    /// and every weight counter exactly zero. A double-subtract in
    /// `steal` (or a fetch/steal race on one entry) leaves a counter
    /// wrapped or nonzero and fails here.
    #[test]
    fn weights_drain_to_zero_after_run() {
        let (g, pots) = asia_setup();
        for (threads, delta, stealing) in [(1, None, false), (4, Some(1), true), (8, Some(2), true)]
        {
            let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
            let mut cfg = SchedulerConfig::with_threads(threads);
            cfg.partition_threshold = delta;
            cfg.work_stealing = stealing;
            // SAFETY: this test is the arena's only user; workers are
            // joined by the scope before `assert_drained` runs.
            let sh = unsafe { Shared::prepare(&g, &arena, &cfg, threads) };
            std::thread::scope(|s| {
                for id in 0..threads {
                    let shr = &sh;
                    s.spawn(move || worker(shr, id));
                }
            });
            sh.assert_drained();
        }
    }

    /// A token that fired before the handoff stops every worker at its
    /// first boundary check: no task runs, `remaining` stays at the
    /// full task count, and the workers return instead of spinning.
    #[test]
    fn pre_fired_token_stops_workers_before_any_task() {
        let (g, pots) = asia_setup();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2);
        // SAFETY: this test is the arena's only user; workers are
        // joined by the scope.
        let mut sh = unsafe { Shared::prepare(&g, &arena, &cfg, 2) };
        let token = CancelToken::new();
        token.cancel();
        sh.set_cancel(Some(token));
        let reports = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|id| {
                    let shr = &sh;
                    s.spawn(move || worker(shr, id))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        assert_eq!(sh.tasks_remaining(), g.num_tasks());
        assert!(reports.iter().all(|r| r.tasks_executed == 0));
    }

    /// The weight-aware initial distribution: with one worker far ahead
    /// in weight, new roots must land on the lighter workers first.
    #[test]
    fn prepare_distributes_roots_by_weight() {
        let (g, pots) = asia_setup();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let cfg = SchedulerConfig::with_threads(2);
        // SAFETY: sole user of the arena; no workers run in this test.
        let sh = unsafe { Shared::prepare(&g, &arena, &cfg, 2) };
        let weights: Vec<u64> = sh
            .lls
            .iter()
            .map(|ll| ll.weight.load(Ordering::Relaxed))
            .collect();
        let total: u64 = g.initial_ready().iter().map(|&t| g.task(t).weight).sum();
        assert_eq!(weights.iter().sum::<u64>(), total);
        // least-loaded placement keeps the gap below the heaviest root
        let heaviest = g
            .initial_ready()
            .iter()
            .map(|&t| g.task(t).weight)
            .max()
            .unwrap_or(0);
        assert!(weights[0].abs_diff(weights[1]) <= heaviest);
    }
}
