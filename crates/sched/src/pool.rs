//! Persistent worker pool: spawn threads once, run many jobs.
//!
//! [`run_collaborative`](crate::run_collaborative) spawns and joins
//! `num_threads` OS threads for every propagation. That is fine for a
//! one-off calibration but dominates latency when a service answers a
//! stream of queries over one compiled junction tree. [`CollabPool`]
//! keeps the workers alive between jobs: they park on a condvar, a job
//! submission bumps an epoch and wakes them, and the submitter blocks
//! until every worker has checked back in — the compile-once,
//! serve-many half of the scheduler.
//!
//! # Safety model
//!
//! [`CollabPool::run`] borrows a [`Shared`] job descriptor on its own
//! stack and hands workers a lifetime-erased pointer to it (a `usize`
//! in the job slot). This is the classic scoped-thread pattern routed
//! through a pool instead of `std::thread::scope`:
//!
//! * `run` does not return until every worker has decremented the
//!   job's `active` count under the slot mutex, so the `Shared` (and
//!   the `&TaskGraph`/`&TableArena`/`&SchedulerConfig` inside it)
//!   strictly outlives all worker access.
//! * Workers read the pointer only between observing the new epoch and
//!   decrementing `active`, both under the same mutex, so the
//!   mutex/condvar handshake carries the happens-before edges in both
//!   directions (job visible to workers; results visible to the
//!   submitter).
//! * An internal submission lock serializes concurrent `run` calls, so
//!   at most one job's pointer is ever live in the slot.
//!
//! # Panic containment
//!
//! A panic inside a worker job (a bug in a primitive, an OOM in a
//! partial-table allocation, injected poison in tests) must not hang
//! the submitter or kill the pool: the worker loop catches the unwind,
//! marks the job aborted so sibling workers stop waiting for tasks that
//! will never complete, and checks back in; `run` then returns the
//! panic as a [`JobPanic`] error instead of blocking forever. The pool
//! itself stays usable — the next job starts from a fresh job
//! descriptor — though the *arena* of the failed job is left in an
//! unspecified intermediate state and must be re-initialized (or
//! discarded) by the caller before reuse.
//!
//! # Supervision
//!
//! `catch_unwind` cannot save a worker whose thread genuinely dies —
//! a panic *outside* the job guard (injected by the chaos harness, or
//! a defect in the loop itself) exits the thread without decrementing
//! `active`, which would hang the submitter forever. The pool
//! therefore supervises its own threads: the completion handshake
//! waits in bounded slices and, on each timeout, reaps finished
//! (dead) worker handles — joining them, respawning a replacement
//! parked past the in-flight job, settling the missing `active`
//! decrements, and failing only that job with a [`JobPanic`]. A
//! pre-submission sweep does the same between jobs. Sibling shards
//! (other pools) are untouched, and [`CollabPool::restarts`] counts
//! every respawn for the serving stats.

use crate::collab::{worker, Shared};
use crate::{CancelToken, RunReport, SchedulerConfig, TableArena, ThreadStats};
use evprop_taskgraph::TaskGraph;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the completion handshake waits between checks for dead
/// worker threads. Long enough that healthy jobs (microseconds to
/// milliseconds) never pay for a sweep; short enough that a killed
/// worker is reaped and its job failed promptly.
const REAP_INTERVAL: Duration = Duration::from_millis(25);

/// A worker thread panicked while executing a pool job. Carries the
/// panic payload's message when it was a string (the common case).
#[derive(Clone, Debug)]
pub struct JobPanic {
    message: String,
}

impl JobPanic {
    /// The panic payload's message, if one could be extracted.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker thread panicked during the job: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Why a pool job did not produce a result.
#[derive(Clone, Debug)]
pub enum JobError {
    /// A worker panicked (or its thread died) mid-job; the pool reaped
    /// and respawned any dead threads and remains usable.
    Panicked(JobPanic),
    /// The job's [`CancelToken`] fired before the job drained; the
    /// workers stopped at task boundaries and no result was produced.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(p) => p.fmt(f),
            JobError::Cancelled => write!(f, "job cancelled before completion"),
        }
    }
}

impl std::error::Error for JobError {}

/// The job slot workers and submitter rendezvous over.
struct Slot {
    /// Bumped once per submitted job; workers use it to detect fresh
    /// work after spurious wakeups.
    epoch: u64,
    /// Lifetime-erased `*const Shared<'_>` of the current job, if one
    /// is running.
    job: Option<usize>,
    /// Workers still executing the current job.
    active: usize,
    /// Per-worker statistics for the current job.
    results: Vec<ThreadStats>,
    /// Message of the first worker panic in the current job, if any.
    panic: Option<String>,
    shutdown: bool,
}

struct Inner {
    slot: Mutex<Slot>,
    /// Workers wait here for the next epoch.
    job_cv: Condvar,
    /// The submitter waits here for `active == 0`.
    done_cv: Condvar,
    /// Pending injected worker deaths: each picked-up job decrements
    /// this and, when it wins a decrement, kills its thread *outside*
    /// the panic guard — exercising the reap/respawn path, not
    /// `catch_unwind`. Test/bench fault injection; zero in production.
    kill: AtomicUsize,
    /// Dead worker threads reaped and respawned over the pool's life.
    restarts: AtomicU64,
}

/// A persistent pool of collaborative-scheduler workers.
///
/// Construct once, then call [`run`](Self::run) per propagation; the
/// pool's thread count (not `cfg.num_threads`) decides the worker
/// count of every job. Dropping the pool shuts the workers down and
/// joins them.
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_jtree::JunctionTree;
/// use evprop_potential::EvidenceSet;
/// use evprop_sched::{CollabPool, SchedulerConfig, TableArena};
/// use evprop_taskgraph::TaskGraph;
///
/// let jt = JunctionTree::from_network(&networks::asia()).unwrap();
/// let graph = TaskGraph::from_shape(jt.shape());
/// let pool = CollabPool::new(2);
/// let cfg = SchedulerConfig::with_threads(2);
/// for _ in 0..3 {
///     let arena = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());
///     let report = pool.run(&graph, &arena, &cfg).expect("no worker panicked");
///     assert_eq!(report.threads.len(), 2);
/// }
/// ```
pub struct CollabPool {
    inner: Arc<Inner>,
    /// Serializes `run` calls: only one job may occupy the slot.
    submit: Mutex<()>,
    /// Sink attached to every subsequent job (worker rows + job spans
    /// on the control row).
    #[cfg(feature = "trace")]
    trace: Mutex<Option<Arc<evprop_trace::TraceSink>>>,
    /// Worker handles, index = worker id. Behind a lock so the
    /// supervisor can swap a dead thread's handle for its replacement.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Cached `handles.len()` so `num_threads` stays lock-free.
    threads: usize,
}

impl CollabPool {
    /// Spawns `num_threads` (at least 1) parked workers.
    pub fn new(num_threads: usize) -> Self {
        let p = num_threads.max(1);
        let inner = Arc::new(Inner {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                active: 0,
                results: vec![ThreadStats::default(); p],
                panic: None,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            kill: AtomicUsize::new(0),
            restarts: AtomicU64::new(0),
        });
        let handles = (0..p)
            .map(|id| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("evprop-worker-{id}"))
                    .spawn(move || worker_loop(&inner, id, 0))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        CollabPool {
            inner,
            submit: Mutex::new(()),
            #[cfg(feature = "trace")]
            trace: Mutex::new(None),
            handles: Mutex::new(handles),
            threads: p,
        }
    }

    /// Number of worker threads (every job runs on exactly this many).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Dead worker threads the supervisor has reaped and respawned over
    /// the pool's lifetime.
    pub fn restarts(&self) -> u64 {
        self.inner.restarts.load(Ordering::Relaxed)
    }

    /// Fault injection for tests and the robustness harness: the next
    /// `n` job pickups each kill their worker thread *outside* the
    /// job's panic guard (a genuine thread death, recovered by the
    /// supervisor — not by `catch_unwind`). Hidden because it is not
    /// part of the stable API.
    #[doc(hidden)]
    pub fn inject_worker_deaths(&self, n: usize) {
        self.inner.kill.fetch_add(n, Ordering::AcqRel);
    }

    /// Joins and respawns every worker thread that has died, returning
    /// how many were reaped. Replacements park with `start_epoch` set
    /// to the current epoch so they never join the job that was in
    /// flight (or just finished) when their predecessor died — the
    /// submitter has already settled that job's accounting.
    fn reap_dead(&self, start_epoch: u64) -> usize {
        let mut handles = self.handles.lock();
        let mut dead = 0;
        for (id, handle) in handles.iter_mut().enumerate() {
            if !handle.is_finished() {
                continue;
            }
            let inner = Arc::clone(&self.inner);
            let fresh = std::thread::Builder::new()
                .name(format!("evprop-worker-{id}"))
                .spawn(move || worker_loop(&inner, id, start_epoch))
                .expect("failed to respawn pool worker");
            let old = std::mem::replace(handle, fresh);
            let _ = old.join(); // finished; the Err payload is the death cause
            dead += 1;
            self.inner.restarts.fetch_add(1, Ordering::Relaxed);
        }
        dead
    }

    /// Attaches (or with `None`, detaches) a span sink recorded into by
    /// every subsequent job: worker `id` writes scheduler events to row
    /// `id`, and each job's overall span lands on the sink's control
    /// row. Size the sink with
    /// [`TraceSink::for_workers`](evprop_trace::TraceSink::for_workers)`(num_threads(), …)`;
    /// worker rows beyond the sink record nothing.
    ///
    /// Takes effect from the next job (jobs already running keep the
    /// sink they started with).
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&self, sink: Option<Arc<evprop_trace::TraceSink>>) {
        *self.trace.lock() = sink;
    }

    /// Runs one propagation job on the resident workers and blocks
    /// until it completes. Semantics match
    /// [`run_collaborative`](crate::run_collaborative), except the
    /// worker count is the pool's, and `report.wall` excludes thread
    /// spawn (there is none).
    ///
    /// Concurrent calls from different threads are serialized
    /// internally; jobs never interleave.
    ///
    /// # Errors
    ///
    /// [`JobPanic`] when a worker panicked mid-job. The pool remains
    /// usable for subsequent jobs, but the arena's buffers are in an
    /// unspecified intermediate state — re-initialize or discard it.
    ///
    /// # Panics
    ///
    /// Panics if the graph and arena disagree on buffer count.
    pub fn run(
        &self,
        graph: &TaskGraph,
        arena: &TableArena,
        cfg: &SchedulerConfig,
    ) -> Result<RunReport, JobPanic> {
        let submission = self.submit.lock();
        self.run_locked(submission, graph, arena, cfg, None)
            .map_err(|e| match e {
                JobError::Panicked(p) => p,
                JobError::Cancelled => unreachable!("no cancel token was attached"),
            })
    }

    /// Like [`CollabPool::run`], but the job can be stopped early by
    /// `cancel`: workers check the token at task boundaries and bail,
    /// and the call returns [`JobError::Cancelled`] with no result. If
    /// the job drains before any worker observes the fired token, the
    /// run succeeds and the arena holds the same bits an uncancelled
    /// run would have produced. After a cancelled run the arena is in
    /// an unspecified intermediate state — re-initialize before reuse.
    pub fn run_cancellable(
        &self,
        graph: &TaskGraph,
        arena: &TableArena,
        cfg: &SchedulerConfig,
        cancel: &CancelToken,
    ) -> Result<RunReport, JobError> {
        let submission = self.submit.lock();
        self.run_locked(submission, graph, arena, cfg, Some(cancel))
    }

    /// Non-blocking variant of [`CollabPool::run`]: returns `None`
    /// without running anything when another submitter currently holds
    /// the pool (instead of queueing behind it). Lets a caller that owns
    /// several pools route a job to an idle one.
    pub fn try_run(
        &self,
        graph: &TaskGraph,
        arena: &TableArena,
        cfg: &SchedulerConfig,
    ) -> Option<Result<RunReport, JobPanic>> {
        let submission = self.submit.try_lock()?;
        Some(
            self.run_locked(submission, graph, arena, cfg, None)
                .map_err(|e| match e {
                    JobError::Panicked(p) => p,
                    JobError::Cancelled => unreachable!("no cancel token was attached"),
                }),
        )
    }

    fn run_locked(
        &self,
        _submission: MutexGuard<'_, ()>,
        graph: &TaskGraph,
        arena: &TableArena,
        cfg: &SchedulerConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<RunReport, JobError> {
        let p = self.num_threads();
        let mut report = RunReport {
            threads: vec![ThreadStats::default(); p],
            ..Default::default()
        };
        assert_eq!(
            graph.buffers().len(),
            arena.len(),
            "arena was not initialized for this graph"
        );
        if graph.num_tasks() == 0 {
            return Ok(report);
        }

        // Pre-submission sweep: a worker that died between jobs (or
        // whose death the last reap raced) is respawned before this job
        // sets `active`, so the handshake never waits on a ghost.
        {
            let epoch = self.inner.slot.lock().epoch;
            self.reap_dead(epoch);
        }

        // SAFETY: the submission lock makes this job the arena's only
        // user until we return — no other job can derive a view or
        // touch the buffers — and the completion handshake below joins
        // every worker access before we drop `shared`.
        let mut shared = unsafe { Shared::prepare(graph, arena, cfg, p) };
        shared.set_cancel(cancel.cloned());
        #[cfg(feature = "trace")]
        shared.set_trace(self.trace.lock().clone());
        let shared = shared;

        let wall_start = Instant::now();
        let panicked = {
            let mut slot = self.inner.slot.lock();
            slot.job = Some(&shared as *const Shared<'_> as usize);
            slot.active = p;
            slot.panic = None;
            slot.epoch += 1;
            self.inner.job_cv.notify_all();
            while slot.active > 0 {
                if self.inner.done_cv.wait_for(&mut slot, REAP_INTERVAL) {
                    // Timed out: any worker that died mid-job exited
                    // without decrementing `active`. Reap and respawn
                    // the dead (replacements park past this epoch),
                    // settle their missing decrements, and fail the job
                    // — its bookkeeping is unrecoverable.
                    let dead = self.reap_dead(slot.epoch);
                    if dead > 0 {
                        slot.active = slot.active.saturating_sub(dead);
                        if slot.panic.is_none() {
                            slot.panic = Some(format!(
                                "{dead} worker thread(s) died mid-job \
                                 (reaped and respawned)"
                            ));
                        }
                        // Live siblings stop waiting for tasks the dead
                        // worker will never complete.
                        shared.abort();
                    }
                }
            }
            slot.job = None;
            report.threads.clone_from_slice(&slot.results);
            slot.panic.take()
        };
        report.wall = wall_start.elapsed();
        #[cfg(feature = "trace")]
        shared.trace_job_span(wall_start, graph.num_tasks());
        if let Some(message) = panicked {
            // The aborted job left tasks in ready lists and nonzero
            // weight counters; `shared` (and all of them) drops here, so
            // nothing leaks into the next job.
            return Err(JobError::Panicked(JobPanic { message }));
        }
        if shared.tasks_remaining() > 0 {
            // No panic, tasks left behind: the cancel token fired and
            // the workers bailed at their next boundary. The ready
            // lists drop with `shared`; nothing leaks into the next
            // job. (`assert_drained` is deliberately skipped — a
            // cancelled job legitimately leaves entries behind.)
            return Err(JobError::Cancelled);
        }
        // Catch scheduler bookkeeping leaks (lost tasks, weight-counter
        // drift) at the end of every job while testing.
        #[cfg(debug_assertions)]
        shared.assert_drained();
        shared.finish_into(&mut report);
        Ok(report)
    }
}

impl std::fmt::Debug for CollabPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollabPool")
            .field("num_threads", &self.num_threads())
            .finish_non_exhaustive()
    }
}

impl Drop for CollabPool {
    fn drop(&mut self) {
        {
            let mut slot = self.inner.slot.lock();
            slot.shutdown = true;
            self.inner.job_cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = self.handles.get_mut().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// What a resident worker does for its whole life: park, wake on a new
/// epoch, run the job, report back, park again. A respawned
/// replacement starts with `start_epoch` at the epoch that was current
/// when its predecessor died, so it skips that (already-settled) job.
fn worker_loop(inner: &Inner, id: usize, start_epoch: u64) {
    let mut seen_epoch = start_epoch;
    loop {
        let job = {
            let mut slot = inner.slot.lock();
            while !slot.shutdown && slot.epoch == seen_epoch {
                inner.job_cv.wait(&mut slot);
            }
            if slot.shutdown {
                return;
            }
            seen_epoch = slot.epoch;
            slot.job.expect("a fresh epoch always carries a job")
        };

        // Injected worker death: panic *outside* the catch_unwind below,
        // so the thread genuinely dies without checking back in — only
        // the supervisor's reap path can recover. The message is never
        // observed (the reaper writes its own); dying is the point.
        if inner
            .kill
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |k| k.checked_sub(1))
            .is_ok()
        {
            panic!("injected worker death: thread {id} killed outside the job guard");
        }
        #[cfg(feature = "chaos")]
        if crate::chaos::should_kill_worker() {
            panic!("chaos: worker {id} killed outside the job guard");
        }

        // SAFETY: `run` blocks until this worker decrements `active`
        // below, so the `Shared` behind the pointer is alive for the
        // whole dereference; the slot mutex ordered its construction
        // before our read. The erased lifetime never escapes this
        // scope.
        let sh = unsafe { &*(job as *const Shared<'_>) };
        // Contain panics from inside the job: letting one unwind through
        // this loop would kill the thread *without* decrementing
        // `active`, hanging the submitter forever. Unwinding drops every
        // live window (unregistering it from the debug overlap checker)
        // before the catch.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(sh, id)));
        if result.is_err() {
            // Sibling workers must stop waiting for tasks the panicked
            // one will never complete.
            sh.abort();
        }

        let mut slot = inner.slot.lock();
        match result {
            Ok(stats) => slot.results[id] = stats,
            Err(payload) => {
                slot.results[id] = ThreadStats::default();
                if slot.panic.is_none() {
                    slot.panic = Some(panic_message(payload.as_ref()));
                }
            }
        }
        slot.active -= 1;
        if slot.active == 0 {
            inner.done_cv.notify_all();
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use evprop_jtree::JunctionTree;
    use evprop_potential::EvidenceSet;

    fn asia_graph() -> (TaskGraph, Vec<evprop_potential::PotentialTable>) {
        let jt = JunctionTree::from_network(&networks::asia()).unwrap();
        let g = TaskGraph::from_shape(jt.shape());
        (g, jt.potentials().to_vec())
    }

    #[test]
    fn pool_runs_many_jobs_on_same_workers() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(3);
        let cfg = SchedulerConfig::with_threads(3);
        let mut reference: Option<Vec<evprop_potential::PotentialTable>> = None;
        for _ in 0..5 {
            let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
            let report = pool.run(&g, &arena, &cfg).unwrap();
            assert_eq!(report.threads.len(), 3);
            let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
            assert!(executed >= g.num_tasks());
            let tables = arena.into_tables();
            match &reference {
                None => reference = Some(tables),
                Some(r) => {
                    for (a, b) in r.iter().zip(&tables) {
                        assert!(a.approx_eq(b, 1e-12));
                    }
                }
            }
        }
    }

    #[test]
    fn pool_thread_count_wins_over_cfg() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        // cfg asks for 8; the pool only has (and reports) 2.
        let cfg = SchedulerConfig::with_threads(8);
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let report = pool.run(&g, &arena, &cfg).unwrap();
        assert_eq!(report.threads.len(), 2);
    }

    #[test]
    fn pool_handles_empty_graph() {
        let d = evprop_potential::Domain::new(vec![evprop_potential::Variable::binary(
            evprop_potential::VarId(0),
        )])
        .unwrap();
        let shape = evprop_jtree::TreeShape::new(vec![d.clone()], &[], 0).unwrap();
        let jt = JunctionTree::from_parts(shape, vec![evprop_potential::PotentialTable::ones(d)])
            .unwrap();
        let g = TaskGraph::from_shape(jt.shape());
        let arena = TableArena::initialize(&g, jt.potentials(), &EvidenceSet::new());
        let pool = CollabPool::new(4);
        let report = pool
            .run(&g, &arena, &SchedulerConfig::with_threads(4))
            .unwrap();
        assert!(report.threads.iter().all(|t| t.tasks_executed == 0));
    }

    #[test]
    fn pool_is_shared_across_threads() {
        // &CollabPool is Sync: submissions from several threads serialize.
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        let cfg = SchedulerConfig::with_threads(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
                    let report = pool.run(&g, &arena, &cfg).unwrap();
                    let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
                    assert!(executed >= g.num_tasks());
                });
            }
        });
    }

    #[test]
    fn drop_joins_workers() {
        let pool = CollabPool::new(2);
        drop(pool); // must not hang
    }

    #[test]
    fn try_run_executes_when_pool_is_idle() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        let cfg = SchedulerConfig::with_threads(2);
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let report = pool.try_run(&g, &arena, &cfg).expect("pool idle").unwrap();
        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
    }

    /// A panic inside a worker job must surface as `Err` from `run` —
    /// not hang the submitter, not deadlock sibling workers — and the
    /// pool must stay fully usable for the next job. This is the
    /// robustness a long-running serving runtime leans on.
    #[test]
    fn poisoned_job_errors_instead_of_deadlocking() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(3);
        let mut cfg = SchedulerConfig::with_threads(3);
        cfg.poison_task = Some(0); // task 0 always exists and panics
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let err = pool
            .run(&g, &arena, &cfg)
            .expect_err("the poisoned task must fail the job");
        assert!(
            err.message().contains("injected poison"),
            "unexpected panic message: {err}"
        );

        // The pool survives: a clean job on the same workers succeeds
        // (with a *fresh* arena — the failed job's buffers are dirty).
        cfg.poison_task = None;
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let report = pool.run(&g, &arena, &cfg).expect("clean job succeeds");
        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
    }

    /// A genuine worker-thread death (outside the job's panic guard) is
    /// the failure `catch_unwind` cannot contain: the supervisor must
    /// reap the dead thread, respawn it, fail only the in-flight job,
    /// and leave the pool serving.
    #[test]
    fn killed_worker_is_reaped_and_respawned() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        let cfg = SchedulerConfig::with_threads(2);
        pool.inject_worker_deaths(1);
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let err = pool
            .run(&g, &arena, &cfg)
            .expect_err("the killed worker must fail the job");
        assert!(err.message().contains("died mid-job"), "{err}");
        assert_eq!(pool.restarts(), 1);

        // The respawned complement serves the next job normally.
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let report = pool.run(&g, &arena, &cfg).expect("pool recovered");
        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
        assert_eq!(pool.restarts(), 1, "no spurious respawns");
    }

    /// Repeated deaths, including on a single-thread pool (where the
    /// dead worker *was* the whole pool), never hang a submitter.
    #[test]
    fn pool_survives_repeated_worker_deaths() {
        let (g, pots) = asia_graph();
        for threads in [1, 2] {
            let pool = CollabPool::new(threads);
            let cfg = SchedulerConfig::with_threads(threads);
            for round in 0..3u64 {
                pool.inject_worker_deaths(1);
                let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
                assert!(pool.run(&g, &arena, &cfg).is_err(), "round {round}");
                let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
                assert!(pool.run(&g, &arena, &cfg).is_ok(), "round {round}");
            }
            assert_eq!(pool.restarts(), 3);
        }
    }

    /// A pre-fired token cancels the job deterministically; an unfired
    /// one changes nothing.
    #[test]
    fn cancelled_job_reports_cancelled_and_pool_survives() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        let cfg = SchedulerConfig::with_threads(2);
        let token = CancelToken::new();
        token.cancel();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        assert!(matches!(
            pool.run_cancellable(&g, &arena, &cfg, &token),
            Err(JobError::Cancelled)
        ));

        let token = CancelToken::new();
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        let report = pool
            .run_cancellable(&g, &arena, &cfg, &token)
            .expect("unfired token never cancels");
        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert!(executed >= g.num_tasks());
    }

    /// A token that fires only after the job drained does not turn a
    /// completed job into an error (the bit-identical contract: results
    /// that exist are never altered by cancellation).
    #[test]
    fn late_cancel_keeps_completed_result() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        let cfg = SchedulerConfig::with_threads(2);
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
        pool.run_cancellable(&g, &arena, &cfg, &token)
            .expect("far-future deadline never fires");
    }

    /// Back-to-back poisoned jobs: every submission returns (no hang),
    /// and interleaved clean jobs keep working.
    #[test]
    fn pool_survives_repeated_poisoned_jobs() {
        let (g, pots) = asia_graph();
        let pool = CollabPool::new(2);
        for round in 0..3 {
            let mut cfg = SchedulerConfig::with_threads(2);
            cfg.poison_task = Some(round % g.num_tasks());
            let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
            assert!(pool.run(&g, &arena, &cfg).is_err(), "round {round}");

            let cfg = SchedulerConfig::with_threads(2);
            let arena = TableArena::initialize(&g, &pots, &EvidenceSet::new());
            assert!(pool.run(&g, &arena, &cfg).is_ok(), "round {round}");
        }
    }
}
