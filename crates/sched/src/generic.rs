//! The collaborative scheduler generalized to **arbitrary DAG-structured
//! computations** — the extension the paper's introduction and
//! conclusions call out ("the proposed method can be extended for online
//! scheduling of DAG structured computations").
//!
//! Users provide a DAG of closures with load-balancing weights; the same
//! Allocate/Fetch/Execute machinery (per-thread ready lists, weight
//! counters, allocate-to-least-loaded) runs it. The Partition module does
//! not apply here — the scheduler cannot split an opaque closure — so
//! data parallelism, if desired, is expressed by the caller as extra
//! nodes.
//!
//! # Example
//!
//! ```
//! use evprop_sched::{DagBuilder, SchedulerConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let total = AtomicU64::new(0);
//! let mut dag = DagBuilder::new();
//! let a = dag.add_task(1, &[], || { total.fetch_add(1, Ordering::Relaxed); });
//! let b = dag.add_task(1, &[a], || { total.fetch_add(2, Ordering::Relaxed); });
//! dag.add_task(1, &[a, b], || { total.fetch_add(4, Ordering::Relaxed); });
//! let report = dag.run(&SchedulerConfig::with_threads(2));
//! assert_eq!(total.load(Ordering::Relaxed), 7);
//! assert_eq!(report.threads.len(), 2);
//! ```

use crate::{RunReport, SchedulerConfig, ThreadStats};
use crossbeam::utils::Backoff;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Handle to a task added to a [`DagBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DagTaskId(usize);

struct DagNode<'scope> {
    job: Box<dyn Fn() + Send + Sync + 'scope>,
    weight: u64,
    deps: u32,
    successors: Vec<usize>,
}

impl std::fmt::Debug for DagNode<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DagNode(weight {}, deps {}, {} successors)",
            self.weight,
            self.deps,
            self.successors.len()
        )
    }
}

/// Builder for a one-shot DAG computation scheduled collaboratively.
///
/// Tasks are closures; edges are given as dependency lists at insertion
/// (so the graph is acyclic by construction). `run` consumes the builder
/// and blocks until every task has executed.
#[derive(Debug, Default)]
pub struct DagBuilder<'scope> {
    nodes: Vec<DagNode<'scope>>,
}

impl<'scope> DagBuilder<'scope> {
    /// An empty DAG.
    pub fn new() -> Self {
        DagBuilder { nodes: Vec::new() }
    }

    /// Adds a task with a load-balancing `weight`, dependencies `deps`
    /// (must be earlier tasks), and the closure to execute.
    ///
    /// # Panics
    ///
    /// Panics if a dependency handle does not refer to an earlier task.
    pub fn add_task(
        &mut self,
        weight: u64,
        deps: &[DagTaskId],
        job: impl Fn() + Send + Sync + 'scope,
    ) -> DagTaskId {
        let id = self.nodes.len();
        for d in deps {
            assert!(d.0 < id, "dependencies must be earlier tasks");
            self.nodes[d.0].successors.push(id);
        }
        self.nodes.push(DagNode {
            job: Box::new(job),
            weight,
            deps: deps.len() as u32,
            successors: Vec::new(),
        });
        DagTaskId(id)
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Executes the DAG under the collaborative scheduler and returns
    /// per-thread statistics. Partitioning (`cfg.partition_threshold`)
    /// is ignored — closures are opaque.
    pub fn run(self, cfg: &SchedulerConfig) -> RunReport {
        let p = cfg.num_threads.max(1);
        let mut report = RunReport {
            threads: vec![ThreadStats::default(); p],
            ..Default::default()
        };
        if self.nodes.is_empty() {
            return report;
        }

        struct Ll {
            queue: Mutex<VecDeque<usize>>,
            weight: AtomicU64,
            idle: AtomicBool,
        }
        let nodes = &self.nodes;
        let deps: Vec<AtomicU32> = nodes.iter().map(|n| AtomicU32::new(n.deps)).collect();
        let lls: Vec<Ll> = (0..p)
            .map(|_| Ll {
                queue: Mutex::new(VecDeque::new()),
                weight: AtomicU64::new(0),
                idle: AtomicBool::new(false),
            })
            .collect();
        let remaining = AtomicUsize::new(nodes.len());
        let stealing = cfg.work_stealing;

        let allocate = |t: usize| {
            let j = (0..p)
                .min_by_key(|&j| {
                    (
                        lls[j].weight.load(Ordering::Relaxed),
                        !lls[j].idle.load(Ordering::Relaxed),
                        j,
                    )
                })
                .expect("at least one thread");
            lls[j].weight.fetch_add(nodes[t].weight, Ordering::Relaxed);
            lls[j].queue.lock().push_back(t);
        };

        // evenly distribute the initially-ready tasks
        let mut i = 0usize;
        for (t, n) in nodes.iter().enumerate() {
            if n.deps == 0 {
                lls[i % p].weight.fetch_add(n.weight, Ordering::Relaxed);
                lls[i % p].queue.lock().push_back(t);
                i += 1;
            }
        }

        let wall = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for id in 0..p {
                let deps = &deps;
                let lls = &lls;
                let remaining = &remaining;
                let allocate = &allocate;
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut stats = ThreadStats::default();
                    let backoff = Backoff::new();
                    loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let mine = lls[id].queue.lock().pop_front();
                        let t = match mine {
                            Some(t) => {
                                lls[id].weight.fetch_sub(nodes[t].weight, Ordering::Relaxed);
                                lls[id].idle.store(false, Ordering::Relaxed);
                                backoff.reset();
                                t
                            }
                            None => {
                                let stolen = stealing
                                    .then(|| {
                                        let victim =
                                            (0..p).filter(|&j| j != id).max_by_key(|&j| {
                                                lls[j].weight.load(Ordering::Relaxed)
                                            })?;
                                        let t = lls[victim].queue.lock().pop_back()?;
                                        lls[victim]
                                            .weight
                                            .fetch_sub(nodes[t].weight, Ordering::Relaxed);
                                        Some(t)
                                    })
                                    .flatten();
                                match stolen {
                                    Some(t) => {
                                        lls[id].idle.store(false, Ordering::Relaxed);
                                        backoff.reset();
                                        t
                                    }
                                    None => {
                                        lls[id].idle.store(true, Ordering::Relaxed);
                                        backoff.snooze();
                                        continue;
                                    }
                                }
                            }
                        };
                        let t0 = Instant::now();
                        (nodes[t].job)();
                        stats.busy += t0.elapsed();
                        stats.tasks_executed += 1;
                        stats.weight_executed += nodes[t].weight;
                        for &s in &nodes[t].successors {
                            if deps[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                allocate(s);
                            }
                        }
                        remaining.fetch_sub(1, Ordering::AcqRel);
                    }
                    stats.overhead = start.elapsed().saturating_sub(stats.busy);
                    stats
                }));
            }
            for (id, h) in handles.into_iter().enumerate() {
                report.threads[id] = h.join().expect("workers do not panic");
            }
        });
        report.wall = wall.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_tasks_execute_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut dag = DagBuilder::new();
        let mut prev: Vec<DagTaskId> = Vec::new();
        for layer in 0..6 {
            let mut cur = Vec::new();
            for _ in 0..(layer + 1) {
                let deps = prev.clone();
                cur.push(dag.add_task(1, &deps, || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
            prev = cur;
        }
        let n = dag.len();
        let report = dag.run(&SchedulerConfig::with_threads(3));
        assert_eq!(counter.load(Ordering::Relaxed), n);
        let executed: usize = report.threads.iter().map(|t| t.tasks_executed).sum();
        assert_eq!(executed, n);
    }

    #[test]
    fn dependencies_are_respected() {
        // record a per-task completion stamp; successors must come later
        let n = 50usize;
        let stamps: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let clock = AtomicUsize::new(1);
        let mut dag = DagBuilder::new();
        let mut ids = Vec::new();
        for t in 0..n {
            let deps: Vec<DagTaskId> = if t == 0 {
                vec![]
            } else {
                vec![ids[t / 2]] // binary-tree-ish dependencies
            };
            let stamps = &stamps;
            let clock = &clock;
            ids.push(dag.add_task(1, &deps, move || {
                stamps[t].store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            }));
        }
        dag.run(&SchedulerConfig::with_threads(4));
        for t in 1..n {
            let parent = t / 2;
            assert!(
                stamps[parent].load(Ordering::Relaxed) < stamps[t].load(Ordering::Relaxed),
                "task {t} ran before its dependency {parent}"
            );
        }
    }

    #[test]
    fn stealing_variant_completes() {
        let counter = AtomicUsize::new(0);
        let mut dag = DagBuilder::new();
        let root = dag.add_task(100, &[], || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..20 {
            dag.add_task(1, &[root], || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        dag.run(&SchedulerConfig::with_threads(4).with_stealing());
        assert_eq!(counter.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new();
        assert!(dag.is_empty());
        let report = dag.run(&SchedulerConfig::with_threads(2));
        assert!(report.threads.iter().all(|t| t.tasks_executed == 0));
    }

    #[test]
    #[should_panic(expected = "earlier tasks")]
    fn forward_dependencies_rejected() {
        let mut dag = DagBuilder::new();
        let _ = dag.add_task(1, &[DagTaskId(5)], || {});
    }
}
