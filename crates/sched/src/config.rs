//! Scheduler configuration.

/// Tunables of the collaborative scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Number of worker threads `P`.
    pub num_threads: usize,
    /// The partition threshold δ (§6): a task whose partitionable table
    /// has more entries than this is split into subtasks of at most δ
    /// entries. `None` disables the Partition module (as the paper does
    /// for the Fig. 5 rerooting experiment).
    pub partition_threshold: Option<usize>,
    /// Enable the work-stealing extension: idle threads pop from the
    /// *tail* of the heaviest-loaded victim's ready list instead of
    /// spinning. Off by default — the paper's scheduler does not steal.
    pub work_stealing: bool,
    /// Fault injection for tests and the robustness harness: the static
    /// task at this index panics when executed, exercising the pool's
    /// panic containment. Hidden because it is not part of the stable
    /// scheduling API — only the fault proptests and `robustness_bench`
    /// set it. One branch per static task when unset.
    #[doc(hidden)]
    pub poison_task: Option<usize>,
}

impl SchedulerConfig {
    /// A configuration with `num_threads` workers, partitioning at the
    /// paper-ish default δ = 4096 entries, no stealing.
    pub fn with_threads(num_threads: usize) -> Self {
        SchedulerConfig {
            num_threads,
            partition_threshold: Some(4096),
            work_stealing: false,
            poison_task: None,
        }
    }

    /// Disables the Partition module (builder-style).
    pub fn without_partitioning(mut self) -> Self {
        self.partition_threshold = None;
        self
    }

    /// Sets the partition threshold δ (builder-style).
    pub fn with_delta(mut self, delta: usize) -> Self {
        assert!(delta > 0, "partition threshold must be positive");
        self.partition_threshold = Some(delta);
        self
    }

    /// Enables work stealing (builder-style).
    pub fn with_stealing(mut self) -> Self {
        self.work_stealing = true;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = SchedulerConfig::with_threads(4)
            .with_delta(128)
            .with_stealing();
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.partition_threshold, Some(128));
        assert!(c.work_stealing);
        let c = c.without_partitioning();
        assert_eq!(c.partition_threshold, None);
    }

    #[test]
    fn default_has_at_least_one_thread() {
        assert!(SchedulerConfig::default().num_threads >= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_rejected() {
        let _ = SchedulerConfig::with_threads(1).with_delta(0);
    }
}
