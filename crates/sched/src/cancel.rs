//! Cooperative cancellation of in-flight scheduler jobs.
//!
//! A [`CancelToken`] is attached to one pool job (see
//! [`CollabPool::run_cancellable`]) and checked by every worker at task
//! boundaries — the same boundaries the Fetch module already crosses —
//! so a cancelled job stops within one task's worth of work per thread
//! without ever observing a half-written table: a task either ran to
//! completion or never ran.
//!
//! Determinism contract: cancellation never changes the *value* of a
//! result, only whether one is produced. If the job finishes before the
//! workers observe the token (however late the token fired), the run
//! reports success and the result is bit-identical to an uncancelled
//! run.
//!
//! [`CollabPool::run_cancellable`]: crate::CollabPool::run_cancellable

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable flag (plus optional deadline) that requests a job stop
/// early. Cloning is cheap and every clone observes the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` passes. Workers
    /// consult the clock at task boundaries, so a deadline-armed token
    /// costs one `Instant::now()` per task; a plain token costs one
    /// atomic load.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_fires_on_its_own() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
