//! Multi-model registry for the evprop serving stack.
//!
//! Junction-tree compilation is the expensive step of exact evidence
//! propagation; answering queries against the compiled artifact is the
//! cheap, parallel part. This crate amortizes the expensive step
//! across a server's lifetime: a [`ModelRegistry`] maps versioned
//! model names (`asia`, `asia@v2`) to shared [`CompiledModel`]s, lets
//! new versions be loaded and warmed up while traffic keeps flowing
//! against the old one, flips the alias atomically, and evicts cold
//! versions under a memory budget without ever pulling a model out
//! from under an open session or in-flight query.
//!
//! [`CompiledModel`]: evprop_core::CompiledModel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod names;
mod registry;

pub use names::{ModelNames, NumericNames};
pub use registry::{
    ModelHandle, ModelInfo, ModelRegistry, RegistryError, RegistryStats, VersionInfo,
};
