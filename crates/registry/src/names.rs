//! Symbolic variable/state addressing for served models.
//!
//! The runtime works on [`VarId`]s; the wire protocol works on names.
//! [`ModelNames`] bridges the two, and lives here — next to the
//! registry that owns one name table per loaded model — so the serving
//! crate can resolve requests against whichever model a query names
//! without a circular dependency.

use evprop_bayesnet::bif::BifNetwork;
use evprop_bayesnet::BayesianNetwork;
use evprop_potential::VarId;

/// Symbolic variable/state addressing for a served model.
///
/// The runtime works on [`VarId`]s; the wire protocol works on names.
/// Implementations bridge the two — [`BifNetwork`] for models loaded
/// from BIF files, [`NumericNames`] as the fallback for programmatic
/// networks.
pub trait ModelNames {
    /// Number of variables in the model.
    fn num_vars(&self) -> usize;
    /// Resolves a variable name to its id.
    fn var_id(&self, name: &str) -> Option<VarId>;
    /// The name of a variable.
    fn var_name(&self, var: VarId) -> String;
    /// Number of states of a variable.
    fn num_states(&self, var: VarId) -> usize;
    /// Resolves a state name of a variable to its index.
    fn state_index(&self, var: VarId, state: &str) -> Option<usize>;
    /// The name of a variable's state.
    fn state_name(&self, var: VarId, state: usize) -> String;
}

impl ModelNames for BifNetwork {
    fn num_vars(&self) -> usize {
        self.network.num_vars()
    }

    fn var_id(&self, name: &str) -> Option<VarId> {
        BifNetwork::var_id(self, name)
    }

    fn var_name(&self, var: VarId) -> String {
        BifNetwork::var_name(self, var).to_string()
    }

    fn num_states(&self, var: VarId) -> usize {
        self.state_names[var.index()].len()
    }

    fn state_index(&self, var: VarId, state: &str) -> Option<usize> {
        self.state_names[var.index()]
            .iter()
            .position(|s| s == state)
    }

    fn state_name(&self, var: VarId, state: usize) -> String {
        BifNetwork::state_name(self, var, state).to_string()
    }
}

/// Positional naming (`v0`, `v1`, … with states `0`, `1`, …) for
/// networks that carry no symbolic names.
#[derive(Clone, Debug)]
pub struct NumericNames {
    cardinalities: Vec<usize>,
}

impl NumericNames {
    /// Names every variable of `net` positionally.
    pub fn of(net: &BayesianNetwork) -> Self {
        NumericNames {
            cardinalities: (0..net.num_vars())
                .map(|i| net.var(VarId(i as u32)).cardinality())
                .collect(),
        }
    }
}

impl ModelNames for NumericNames {
    fn num_vars(&self) -> usize {
        self.cardinalities.len()
    }

    fn var_id(&self, name: &str) -> Option<VarId> {
        let digits = name.strip_prefix('v').unwrap_or(name);
        let i: usize = digits.parse().ok()?;
        (i < self.cardinalities.len()).then_some(VarId(i as u32))
    }

    fn var_name(&self, var: VarId) -> String {
        format!("v{}", var.index())
    }

    fn num_states(&self, var: VarId) -> usize {
        self.cardinalities[var.index()]
    }

    fn state_index(&self, var: VarId, state: &str) -> Option<usize> {
        let i: usize = state.parse().ok()?;
        (i < self.cardinalities[var.index()]).then_some(i)
    }

    fn state_name(&self, _var: VarId, state: usize) -> String {
        state.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;

    #[test]
    fn numeric_names_roundtrip() {
        let names = NumericNames::of(&networks::asia());
        assert_eq!(names.num_vars(), 8);
        assert_eq!(names.var_id("v3"), Some(VarId(3)));
        assert_eq!(names.var_id("3"), Some(VarId(3)));
        assert_eq!(names.var_id("v99"), None);
        assert_eq!(names.var_name(VarId(3)), "v3");
        assert_eq!(names.state_index(VarId(0), "1"), Some(1));
        assert_eq!(names.state_index(VarId(0), "9"), None);
        assert_eq!(names.state_name(VarId(0), 1), "1");
    }

    #[test]
    fn bif_names_resolve_symbolically() {
        let bif = evprop_bayesnet::bif::with_generated_names(networks::asia(), "asia");
        let v3 = ModelNames::var_name(&bif, VarId(3));
        assert_eq!(ModelNames::var_id(&bif, &v3), Some(VarId(3)));
        let s1 = ModelNames::state_name(&bif, VarId(7), 1);
        assert_eq!(ModelNames::state_index(&bif, VarId(7), &s1), Some(1));
        assert_eq!(ModelNames::num_states(&bif, VarId(7)), 2);
    }
}
