//! The model registry: `name@version` → [`CompiledModel`], with
//! atomically swappable aliases and memory-budgeted eviction.
//!
//! # Versioned aliases
//!
//! Every [`install`](ModelRegistry::install) registers a new
//! *version* of a name — versions are sequential per name (`v1`,
//! `v2`, …) — and atomically retargets the name's *alias* to it.
//! Clients that address a bare name always see exactly one version:
//! the alias is retargeted under the registry lock, so a stream of
//! [`resolve`](ModelRegistry::resolve) calls racing a swap observes
//! either the old or the new version, never a mix and never a torn
//! state. Clients that address `name@vN` pin that exact version.
//!
//! # Load, warmup, flip
//!
//! `install` runs a *warmup* before the new version becomes visible:
//! every interned kernel plan is force-compiled and one sequential
//! posterior is answered, so the first production query against the
//! new version never pays compile latency and a model that cannot
//! answer queries never becomes an alias target. The expensive part
//! (BIF parse → junction tree → plan compile → warmup) runs on the
//! calling thread — a TCP connection thread in the serving stack,
//! never a shard dispatcher — and the registry lock is only taken for
//! the final pointer flip.
//!
//! # Eviction: unlink, never drop
//!
//! With a byte budget ([`ModelRegistry::with_budget_mb`]), installing
//! past the budget evicts least-recently-resolved versions — but an
//! eviction only *unlinks* the version from the registry (it stops
//! being resolvable). The `Arc<ModelHandle>` itself stays alive for as
//! long as any open incremental session or in-flight query pins it;
//! the registry keeps a [`Weak`] so those zombie bytes remain visible
//! in [`RegistryStats`] until the last pin drops. The version an alias
//! currently targets is never evicted.

use crate::names::ModelNames;
use evprop_core::{CalibratedState, CompiledModel, InferenceSession, SequentialEngine};
use evprop_potential::{EvidenceSet, VarId};
use evprop_taskgraph::PlanId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Errors surfaced by registry operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The referenced model name is not registered.
    UnknownModel(String),
    /// The referenced version of a known name is not resident
    /// (never installed, evicted, or unloaded).
    UnknownVersion {
        /// The model name.
        name: String,
        /// The missing version.
        version: u32,
    },
    /// The referenced version is mid-unload: it must not serve new
    /// work. The message is deterministic so transcripts stay stable.
    Unloading(String),
    /// A name that cannot be registered (empty, or containing `@`).
    BadName(String),
    /// The warmup query of a freshly loaded model failed; the version
    /// was not installed.
    Warmup(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            RegistryError::UnknownVersion { name, version } => {
                write!(f, "unknown model version '{name}@v{version}'")
            }
            RegistryError::Unloading(tag) => write!(f, "model_unloading: {tag}"),
            RegistryError::BadName(name) => {
                write!(
                    f,
                    "bad model name '{name}' (must be non-empty, without '@')"
                )
            }
            RegistryError::Warmup(msg) => write!(f, "model warmup failed: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One resident model version: the shared compiled artifact plus the
/// name table the wire protocol resolves requests against.
///
/// Handles are shared as `Arc<ModelHandle>`: the registry links one,
/// every in-flight query holds one for its lifetime, and every open
/// session pins one until it closes. A handle outliving its registry
/// entry (evicted or unloaded) keeps answering the queries that
/// already hold it.
pub struct ModelHandle {
    name: String,
    version: u32,
    model: Arc<CompiledModel>,
    names: Arc<dyn ModelNames + Send + Sync>,
    bytes: u64,
    served: AtomicU64,
    /// Set by `unload` before the handle is unlinked: a session open
    /// racing the unload re-checks this and backs out deterministically
    /// instead of pinning a half-dropped model.
    unloading: AtomicBool,
    /// LRU stamp: the registry tick of the most recent resolve.
    last_used: AtomicU64,
    /// Per-version empty-evidence calibration, computed once by the
    /// serving layer and cloned into every session opened against this
    /// version.
    session_base: Mutex<Option<Arc<CalibratedState>>>,
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHandle")
            .field("tag", &self.tag())
            .field("bytes", &self.bytes)
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ModelHandle {
    /// The model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version number (sequential per name, starting at 1).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The canonical `name@vN` tag.
    pub fn tag(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }

    /// The compiled model.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The model's symbolic name table.
    pub fn names(&self) -> &Arc<dyn ModelNames + Send + Sync> {
        &self.names
    }

    /// Resident bytes of the compiled artifact (clique tables, scratch
    /// buffers, compiled kernel plans) as accounted at install time.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Queries answered against this version.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Records one answered query (called by dispatchers).
    pub fn record_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether an unload is in progress or complete for this version.
    pub fn is_unloading(&self) -> bool {
        self.unloading.load(Ordering::SeqCst)
    }

    /// The cached empty-evidence calibration, computing it via `init`
    /// on first use. `init` runs under the handle's base lock, so the
    /// calibration happens at most once per version.
    ///
    /// # Errors
    ///
    /// Propagates `init`'s error (nothing is cached then).
    pub fn session_base_with<E>(
        &self,
        init: impl FnOnce() -> Result<Arc<CalibratedState>, E>,
    ) -> Result<Arc<CalibratedState>, E> {
        let mut base = self.session_base.lock();
        if let Some(b) = base.as_ref() {
            return Ok(Arc::clone(b));
        }
        let snapshot = init()?;
        *base = Some(Arc::clone(&snapshot));
        Ok(snapshot)
    }
}

/// Counter snapshot of one registered version, for
/// [`ModelRegistry::list`].
#[derive(Clone, Debug)]
pub struct VersionInfo {
    /// The version number.
    pub version: u32,
    /// Resident bytes.
    pub bytes: u64,
    /// Queries answered against this version.
    pub served: u64,
    /// Whether something outside the registry (a session, an in-flight
    /// query) currently holds the handle.
    pub pinned: bool,
}

/// One registered name and its resident versions, for
/// [`ModelRegistry::list`]. Versions are sorted ascending.
#[derive(Clone, Debug)]
pub struct ModelInfo {
    /// The model name.
    pub name: String,
    /// The version the bare-name alias currently targets.
    pub alias: u32,
    /// Resident versions, ascending.
    pub versions: Vec<VersionInfo>,
}

/// Aggregate registry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Versions ever installed.
    pub loads: u64,
    /// Versions evicted by the memory budget.
    pub evictions: u64,
    /// Explicit alias retargets ([`ModelRegistry::swap`]).
    pub swaps: u64,
    /// Names currently registered.
    pub models: usize,
    /// Versions currently resolvable.
    pub versions: usize,
    /// Bytes of all resolvable versions.
    pub resident_bytes: u64,
    /// Unlinked (evicted/unloaded) versions still pinned alive.
    pub unlinked: usize,
    /// Bytes of those still-pinned unlinked versions.
    pub unlinked_bytes: u64,
    /// Queries answered across all resolvable versions.
    pub served: u64,
}

struct NameEntry {
    versions: BTreeMap<u32, Arc<ModelHandle>>,
    alias: u32,
    next_version: u32,
}

struct Inner {
    names: HashMap<String, NameEntry>,
    /// Monotone resolve clock backing the LRU stamps.
    tick: u64,
    /// Evicted or unloaded versions that may still be pinned; swept on
    /// every stats/list call.
    unlinked: Vec<Weak<ModelHandle>>,
}

/// The registry proper. See the [module docs](self).
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    budget_bytes: Option<u64>,
    loads: AtomicU64,
    evictions: AtomicU64,
    swaps: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ModelRegistry")
            .field("models", &s.models)
            .field("versions", &s.versions)
            .field("resident_bytes", &s.resident_bytes)
            .field("budget_bytes", &self.budget_bytes)
            .finish()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry with no memory budget.
    pub fn new() -> Self {
        ModelRegistry {
            inner: Mutex::new(Inner {
                names: HashMap::new(),
                tick: 0,
                unlinked: Vec::new(),
            }),
            budget_bytes: None,
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// Sets the resident-byte budget (builder-style); installs beyond
    /// it evict least-recently-resolved non-alias versions.
    pub fn with_budget_mb(mut self, mb: u64) -> Self {
        self.budget_bytes = Some(mb.saturating_mul(1024 * 1024));
        self
    }

    /// The configured budget in bytes, if any.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Installs a compiled model as the next version of `name` and
    /// retargets the alias to it. Runs the warmup (force-compiles every
    /// interned plan, answers one sequential posterior) *before* the
    /// version becomes visible; the registry lock is only held for the
    /// alias flip. Returns the installed handle.
    ///
    /// # Errors
    ///
    /// [`RegistryError::BadName`] for empty names or names containing
    /// `@`; [`RegistryError::Warmup`] when the model cannot answer its
    /// warmup query (nothing is installed then).
    pub fn install(
        &self,
        name: &str,
        model: Arc<CompiledModel>,
        names: Arc<dyn ModelNames + Send + Sync>,
    ) -> Result<Arc<ModelHandle>, RegistryError> {
        if name.is_empty() || name.contains('@') {
            return Err(RegistryError::BadName(name.to_string()));
        }
        warmup(&model)?;
        let bytes = model.resident_bytes();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.names.entry(name.to_string()).or_insert(NameEntry {
            versions: BTreeMap::new(),
            alias: 0,
            next_version: 1,
        });
        let version = entry.next_version;
        entry.next_version += 1;
        let handle = Arc::new(ModelHandle {
            name: name.to_string(),
            version,
            model,
            names,
            bytes,
            served: AtomicU64::new(0),
            unloading: AtomicBool::new(false),
            last_used: AtomicU64::new(tick),
            session_base: Mutex::new(None),
        });
        entry.versions.insert(version, Arc::clone(&handle));
        entry.alias = version;
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.evict_locked(&mut inner);
        Ok(handle)
    }

    /// Resolves `spec` — a bare name (the alias) or an exact
    /// `name@vN` tag — refreshing the version's LRU stamp.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] / [`UnknownVersion`] when the
    /// spec does not address a resolvable version;
    /// [`RegistryError::Unloading`] when the version is mid-unload.
    ///
    /// [`UnknownVersion`]: RegistryError::UnknownVersion
    pub fn resolve(&self, spec: &str) -> Result<Arc<ModelHandle>, RegistryError> {
        let (name, version) = match spec.split_once('@') {
            None => (spec, None),
            Some((name, v)) => {
                let digits = v.strip_prefix('v').unwrap_or(v);
                let parsed: u32 = digits
                    .parse()
                    .map_err(|_| RegistryError::UnknownModel(spec.to_string()))?;
                (name, Some(parsed))
            }
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .names
            .get(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let version = version.unwrap_or(entry.alias);
        let handle = entry
            .versions
            .get(&version)
            .ok_or(RegistryError::UnknownVersion {
                name: name.to_string(),
                version,
            })?;
        if handle.is_unloading() {
            return Err(RegistryError::Unloading(handle.tag()));
        }
        handle.last_used.store(tick, Ordering::Relaxed);
        Ok(Arc::clone(handle))
    }

    /// Retargets `name`'s alias to an already-resident `version`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] / [`UnknownVersion`] when the
    /// target is not resident.
    ///
    /// [`UnknownVersion`]: RegistryError::UnknownVersion
    pub fn swap(&self, name: &str, version: u32) -> Result<Arc<ModelHandle>, RegistryError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .names
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let handle = entry
            .versions
            .get(&version)
            .ok_or(RegistryError::UnknownVersion {
                name: name.to_string(),
                version,
            })?;
        let handle = Arc::clone(handle);
        entry.alias = version;
        handle.last_used.store(tick, Ordering::Relaxed);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Unloads one version of `name` (or, with `None`, every version
    /// and the name itself). Each unloaded handle is flagged
    /// *unloading* before it is unlinked, so a session open racing the
    /// unload observes the flag and backs out; pinned handles stay
    /// alive until their last pin drops. When the alias target is
    /// unloaded and other versions remain, the alias retargets to the
    /// highest remaining version. Returns the unloaded tags.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] / [`UnknownVersion`] when
    /// nothing matches.
    ///
    /// [`UnknownVersion`]: RegistryError::UnknownVersion
    pub fn unload(&self, name: &str, version: Option<u32>) -> Result<Vec<String>, RegistryError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .names
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let victims: Vec<u32> = match version {
            Some(v) => {
                if !entry.versions.contains_key(&v) {
                    return Err(RegistryError::UnknownVersion {
                        name: name.to_string(),
                        version: v,
                    });
                }
                vec![v]
            }
            None => entry.versions.keys().copied().collect(),
        };
        let mut tags = Vec::with_capacity(victims.len());
        let mut unlinked = Vec::with_capacity(victims.len());
        for v in victims {
            let handle = entry.versions.remove(&v).expect("victim is resident");
            handle.unloading.store(true, Ordering::SeqCst);
            tags.push(handle.tag());
            unlinked.push(Arc::downgrade(&handle));
        }
        if entry.versions.is_empty() {
            inner.names.remove(name);
        } else if !entry.versions.contains_key(&entry.alias) {
            entry.alias = *entry.versions.keys().next_back().expect("non-empty");
        }
        inner.unlinked.extend(unlinked);
        Ok(tags)
    }

    /// Point-in-time listing of every registered name and its resident
    /// versions, sorted by name (then version) for deterministic
    /// transcripts.
    pub fn list(&self) -> Vec<ModelInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<ModelInfo> = inner
            .names
            .iter()
            .map(|(name, entry)| ModelInfo {
                name: name.clone(),
                alias: entry.alias,
                versions: entry
                    .versions
                    .values()
                    .map(|h| VersionInfo {
                        version: h.version,
                        bytes: h.bytes,
                        served: h.served(),
                        pinned: Arc::strong_count(h) > 1,
                    })
                    .collect(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Aggregate counters; sweeps dead unlinked weak handles.
    pub fn stats(&self) -> RegistryStats {
        let mut inner = self.inner.lock();
        inner.unlinked.retain(|w| w.strong_count() > 0);
        let mut resident_bytes = 0u64;
        let mut versions = 0usize;
        let mut served = 0u64;
        for entry in inner.names.values() {
            for h in entry.versions.values() {
                resident_bytes += h.bytes;
                versions += 1;
                served += h.served();
            }
        }
        let mut unlinked_bytes = 0u64;
        for w in &inner.unlinked {
            if let Some(h) = w.upgrade() {
                unlinked_bytes += h.bytes;
            }
        }
        RegistryStats {
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            models: inner.names.len(),
            versions,
            resident_bytes,
            unlinked: inner.unlinked.len(),
            unlinked_bytes,
            served,
        }
    }

    /// Evicts least-recently-resolved non-alias versions until the
    /// resident bytes fit the budget. Eviction unlinks only — a pinned
    /// handle keeps serving whoever holds it, tracked via `unlinked`.
    fn evict_locked(&self, inner: &mut Inner) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        loop {
            let resident: u64 = inner
                .names
                .values()
                .flat_map(|e| e.versions.values())
                .map(|h| h.bytes)
                .sum();
            if resident <= budget {
                return;
            }
            // LRU victim among versions no alias currently targets.
            let victim = inner
                .names
                .iter()
                .flat_map(|(name, e)| {
                    e.versions
                        .values()
                        .filter(|h| h.version != e.alias)
                        .map(move |h| {
                            (name.clone(), h.version, h.last_used.load(Ordering::Relaxed))
                        })
                })
                .min_by_key(|&(_, _, used)| used);
            let Some((name, version, _)) = victim else {
                return; // only alias targets left: over budget, but safe
            };
            let entry = inner.names.get_mut(&name).expect("victim's name exists");
            let handle = entry.versions.remove(&version).expect("victim is resident");
            inner.unlinked.push(Arc::downgrade(&handle));
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Force-compiles every interned kernel plan of the model's sum-product
/// graph and answers one sequential posterior, so the version is
/// query-ready before its alias flips.
fn warmup(model: &Arc<CompiledModel>) -> Result<(), RegistryError> {
    let plans = model.graph().plans();
    for i in 0..plans.len() {
        let _ = plans.get(PlanId(i as u32));
    }
    let session = InferenceSession::from_model(Arc::clone(model));
    session
        .posterior(&SequentialEngine, VarId(0), &EvidenceSet::new())
        .map_err(|e| RegistryError::Warmup(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NumericNames;
    use evprop_bayesnet::networks;

    fn compiled(net: &evprop_bayesnet::BayesianNetwork) -> Arc<CompiledModel> {
        Arc::new(CompiledModel::from_network(net).unwrap())
    }

    fn install_asia(reg: &ModelRegistry, name: &str) -> Arc<ModelHandle> {
        let net = networks::asia();
        let names = Arc::new(NumericNames::of(&net));
        reg.install(name, compiled(&net), names).unwrap()
    }

    #[test]
    fn install_assigns_sequential_versions_and_flips_alias() {
        let reg = ModelRegistry::new();
        let v1 = install_asia(&reg, "asia");
        assert_eq!((v1.name(), v1.version()), ("asia", 1));
        assert_eq!(v1.tag(), "asia@v1");
        assert_eq!(reg.resolve("asia").unwrap().version(), 1);
        let v2 = install_asia(&reg, "asia");
        assert_eq!(v2.version(), 2);
        // The alias now targets v2; the exact tag still pins v1.
        assert_eq!(reg.resolve("asia").unwrap().version(), 2);
        assert_eq!(reg.resolve("asia@v1").unwrap().version(), 1);
        assert_eq!(reg.resolve("asia@1").unwrap().version(), 1);
        let stats = reg.stats();
        assert_eq!((stats.loads, stats.models, stats.versions), (2, 1, 2));
    }

    #[test]
    fn resolve_rejects_unknown_specs() {
        let reg = ModelRegistry::new();
        install_asia(&reg, "asia");
        assert_eq!(
            reg.resolve("nope").unwrap_err(),
            RegistryError::UnknownModel("nope".into())
        );
        assert_eq!(
            reg.resolve("asia@v9").unwrap_err(),
            RegistryError::UnknownVersion {
                name: "asia".into(),
                version: 9
            }
        );
        assert!(matches!(
            reg.resolve("asia@vX").unwrap_err(),
            RegistryError::UnknownModel(_)
        ));
    }

    #[test]
    fn bad_names_are_rejected() {
        let reg = ModelRegistry::new();
        let net = networks::asia();
        let names: Arc<dyn ModelNames + Send + Sync> = Arc::new(NumericNames::of(&net));
        for bad in ["", "a@b"] {
            assert!(matches!(
                reg.install(bad, compiled(&net), Arc::clone(&names)),
                Err(RegistryError::BadName(_))
            ));
        }
    }

    #[test]
    fn swap_retargets_and_counts() {
        let reg = ModelRegistry::new();
        install_asia(&reg, "asia");
        install_asia(&reg, "asia");
        assert_eq!(reg.resolve("asia").unwrap().version(), 2);
        let back = reg.swap("asia", 1).unwrap();
        assert_eq!(back.version(), 1);
        assert_eq!(reg.resolve("asia").unwrap().version(), 1);
        assert!(matches!(
            reg.swap("asia", 9),
            Err(RegistryError::UnknownVersion { .. })
        ));
        assert!(matches!(
            reg.swap("nope", 1),
            Err(RegistryError::UnknownModel(_))
        ));
        assert_eq!(reg.stats().swaps, 1);
    }

    #[test]
    fn unload_marks_retargets_and_removes() {
        let reg = ModelRegistry::new();
        let v1 = install_asia(&reg, "asia");
        install_asia(&reg, "asia");
        install_asia(&reg, "asia");
        // Unloading the alias target retargets to the highest survivor.
        assert_eq!(reg.unload("asia", Some(3)).unwrap(), vec!["asia@v3"]);
        assert_eq!(reg.resolve("asia").unwrap().version(), 2);
        // The unloaded-but-pinned v1 handle still flags unloading on
        // exact resolve… after it is unloaded.
        assert!(!v1.is_unloading());
        assert_eq!(reg.unload("asia", Some(1)).unwrap(), vec!["asia@v1"]);
        assert!(v1.is_unloading());
        assert!(matches!(
            reg.resolve("asia@v1"),
            Err(RegistryError::UnknownVersion { .. })
        ));
        // Unloading the whole name removes it.
        reg.unload("asia", None).unwrap();
        assert!(matches!(
            reg.resolve("asia"),
            Err(RegistryError::UnknownModel(_))
        ));
        assert!(matches!(
            reg.unload("asia", None),
            Err(RegistryError::UnknownModel(_))
        ));
    }

    #[test]
    fn resolve_rejects_versions_mid_unload() {
        // Simulates the lost race: a client resolved a handle, the
        // version is then unloaded, and a *new* resolve (or a pin
        // re-check through `is_unloading`) must fail deterministically.
        let reg = ModelRegistry::new();
        let h = install_asia(&reg, "asia");
        install_asia(&reg, "asia");
        reg.unload("asia", Some(1)).unwrap();
        assert!(h.is_unloading());
        let err = RegistryError::Unloading(h.tag());
        assert_eq!(err.to_string(), "model_unloading: asia@v1");
    }

    #[test]
    fn budget_evicts_lru_but_never_alias_or_pins() {
        let reg = ModelRegistry::new().with_budget_mb(0); // evict all non-alias
        let v1 = install_asia(&reg, "asia");
        assert_eq!(reg.resolve("asia").unwrap().version(), 1, "alias survives");
        install_asia(&reg, "asia");
        // v1 is not the alias anymore → evicted (unlinked, not dropped:
        // we still hold the Arc).
        assert!(matches!(
            reg.resolve("asia@v1"),
            Err(RegistryError::UnknownVersion { .. })
        ));
        assert_eq!(reg.resolve("asia").unwrap().version(), 2);
        let stats = reg.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.unlinked, 1, "pinned evictee stays visible");
        assert!(stats.unlinked_bytes > 0);
        assert!(!v1.is_unloading(), "eviction is not an unload");
        // Dropping the pin releases the bytes on the next sweep.
        drop(v1);
        let stats = reg.stats();
        assert_eq!((stats.unlinked, stats.unlinked_bytes), (0, 0));
    }

    #[test]
    fn lru_prefers_least_recently_resolved() {
        let reg = ModelRegistry::new().with_budget_mb(0);
        install_asia(&reg, "a");
        install_asia(&reg, "a");
        install_asia(&reg, "b");
        // Only alias targets remain under a zero budget; both a@v2 and
        // b@v1 survive because aliases are never evicted.
        assert_eq!(reg.resolve("a").unwrap().version(), 2);
        assert_eq!(reg.resolve("b").unwrap().version(), 1);
        let stats = reg.stats();
        assert_eq!(stats.versions, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn list_is_sorted_and_reports_pins() {
        let reg = ModelRegistry::new();
        install_asia(&reg, "zeta");
        let pin = install_asia(&reg, "alpha");
        install_asia(&reg, "alpha");
        let list = reg.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "alpha");
        assert_eq!(list[0].alias, 2);
        assert_eq!(list[0].versions.len(), 2);
        assert!(list[0].versions[0].pinned, "we hold alpha@v1");
        assert!(!list[1].versions[0].pinned);
        assert_eq!(list[1].name, "zeta");
        drop(pin);
    }

    #[test]
    fn served_counts_accumulate_per_version() {
        let reg = ModelRegistry::new();
        let h = install_asia(&reg, "asia");
        h.record_served();
        h.record_served();
        assert_eq!(h.served(), 2);
        assert_eq!(reg.stats().served, 2);
        let list = reg.list();
        assert_eq!(list[0].versions[0].served, 2);
    }

    #[test]
    fn session_base_is_computed_once() {
        use evprop_core::ShardState;
        use evprop_sched::{SchedulerConfig, TableArena};

        let reg = ModelRegistry::new();
        let h = install_asia(&reg, "asia");
        let mut calls = 0;
        let mut make = || -> Result<Arc<CalibratedState>, ()> {
            calls += 1;
            let model = h.model();
            let mut arena = TableArena::initialize(
                model.graph(),
                model.junction_tree().potentials(),
                &EvidenceSet::new(),
            );
            let shard = ShardState::new(SchedulerConfig::with_threads(1).without_partitioning());
            shard.run_job(model.graph(), &arena).unwrap();
            Ok(Arc::new(CalibratedState::capture(
                model.graph(),
                &mut arena,
                EvidenceSet::new(),
            )))
        };
        let a = h.session_base_with(&mut make).unwrap();
        let b = h.session_base_with(&mut make).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls, 1);
    }

    #[cfg(feature = "stress")]
    mod stress {
        use super::*;
        use std::sync::atomic::AtomicBool;

        /// Resolver threads hammer the alias while the main thread
        /// swaps it back and forth: no resolve may ever observe a torn
        /// state (a version other than the two alias targets) or
        /// panic. Each swap waits for a resolve of the new target
        /// before the next flip, so the both-targets-observed check
        /// holds even when a single-core scheduler runs the swap loop
        /// to completion before any worker gets a slice.
        #[test]
        fn alias_swap_under_contention() {
            use std::sync::atomic::AtomicU64;
            let reg = Arc::new(ModelRegistry::new());
            install_asia(&reg, "asia");
            install_asia(&reg, "asia");
            let stop = Arc::new(AtomicBool::new(false));
            let observed: Arc<[AtomicU64; 2]> = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let stop = Arc::clone(&stop);
                    let observed = Arc::clone(&observed);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            match reg.resolve("asia") {
                                Ok(h) => {
                                    assert!(h.version() == 1 || h.version() == 2);
                                    observed[(h.version() - 1) as usize]
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("alias resolve failed: {e}"),
                            }
                        }
                    })
                })
                .collect();
            for round in 0..50u32 {
                let v = 1 + (round % 2);
                reg.swap("asia", v).unwrap();
                let before = observed[(v - 1) as usize].load(Ordering::Relaxed);
                while observed[(v - 1) as usize].load(Ordering::Relaxed) == before {
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                w.join().unwrap();
            }
            assert!(
                observed[0].load(Ordering::Relaxed) > 0 && observed[1].load(Ordering::Relaxed) > 0,
                "both alias targets observed"
            );
        }
    }
}
