//! `evprop` — command-line exact inference on BIF networks.
//!
//! ```text
//! evprop info <file.bif>
//! evprop query <file.bif> --target VAR [--evidence VAR=STATE]... [--engine E] [--threads N]
//! evprop mpe <file.bif> [--evidence VAR=STATE]... [--engine E] [--threads N]
//! evprop export <sprinkler|asia|student>
//! evprop serve <file.bif> --queries N [--threads P] [--seed S] [--spawn-per-query]
//! evprop serve <file.bif> --listen ADDR [--shards K] [--threads-per-shard M] [--model NAME=PATH]... [--model-budget-mb MB]
//! evprop session-bench <file.bif> [--steps N] [--threads P] [--seed S]
//! evprop simulate --cliques N --width W --states R --degree K [--cores P]...
//! ```

use evprop_bayesnet::bif::{self, BifNetwork};
use evprop_bayesnet::networks;
use evprop_core::{
    CollaborativeEngine, DataParallelEngine, Engine, InferenceSession, OpenMpStyleEngine,
    PooledEngine, Query, QueryBatch, SequentialEngine,
};
use evprop_jtree::{critical_path_weight, select_root};
use evprop_potential::EvidenceSet;
use evprop_simcore::{render_gantt, simulate, simulate_collaborative_traced, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::{random_tree, TreeParams};
use std::process::ExitCode;

const USAGE: &str = "usage:
  evprop info <file.bif>
  evprop query <file.bif> --target VAR [--evidence VAR=STATE]... [--likelihood VAR=w:w...]... [--engine seq|collab|pooled|openmp|dp] [--threads N]
  evprop mpe <file.bif> [--evidence VAR=STATE]... [--engine seq|collab|pooled|openmp|dp] [--threads N]
  evprop export <sprinkler|asia|student>
  evprop dot <file.bif> [--tasks]
  evprop serve <file.bif> --queries N [--threads P] [--seed S] [--spawn-per-query]
  evprop serve <file.bif> --listen ADDR [--shards K] [--threads-per-shard M] [--queue-depth D] [--batch B] [--model NAME=PATH]... [--model-budget-mb MB]
      [--drain-timeout-ms MS] [--max-conns N] [--max-line-bytes B] [--idle-timeout-ms MS]
  evprop session-bench <file.bif> [--steps N] [--threads P] [--seed S]
  evprop trace <file.bif> [--out FILE] [--threads P] [--delta D] [--runs N] [--stealing]
  evprop trace --random [--cliques N] [--width W] [--states R] [--degree K] [--seed S] [--out FILE] ...
  evprop trace-validate <trace.json>
  evprop simulate --cliques N --width W --states R --degree K [--cores P]... [--policy collab|openmp|dp|pnl] [--gantt]

global flags (any command):
  --kernel-backend scalar|sse2|avx2|portable|auto
      SIMD backend for the table kernels (default: auto-detect, or the
      EVPROP_KERNEL_BACKEND env var); all backends are bit-identical";

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`evprop query … | head`):
    // std's println! panics on EPIPE, and Rust exposes no stable way to
    // restore SIGPIPE's default disposition without libc.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        let is_pipe = msg.is_some_and(|m| m.contains("Broken pipe"));
        if is_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let args = apply_kernel_backend(args)?;
    let args = &args[..];
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("mpe") => cmd_mpe(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("session-bench") => cmd_session_bench(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("trace-validate") => cmd_trace_validate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

/// Strips a global `--kernel-backend NAME` flag (accepted anywhere on
/// the command line, before or after the subcommand), installs the
/// named SIMD backend process-wide, and returns the remaining
/// arguments. `auto` re-runs CPU detection explicitly; every backend
/// computes bit-identical tables, so the flag only affects speed.
fn apply_kernel_backend(args: &[String]) -> Result<Vec<String>, String> {
    use evprop_potential::simd;
    let mut rest = Vec::with_capacity(args.len());
    let mut chosen = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--kernel-backend" {
            let name = args
                .get(i + 1)
                .ok_or("--kernel-backend needs scalar|sse2|avx2|portable|auto".to_string())?;
            chosen = Some(name.clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    if let Some(name) = chosen {
        let be = if name == "auto" {
            evprop_potential::KernelBackend::detect()
        } else {
            evprop_potential::KernelBackend::parse(&name)
                .ok_or_else(|| format!("unknown kernel backend '{name}'"))?
        };
        simd::set_active(be).map_err(|e| e.to_string())?;
    }
    Ok(rest)
}

fn load(path: &str) -> Result<BifNetwork, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    bif::parse(&src).map_err(|e| e.to_string())
}

/// Parses `--evidence VAR=STATE` occurrences against the name tables.
fn parse_evidence(bif: &BifNetwork, args: &[String]) -> Result<EvidenceSet, String> {
    let mut ev = EvidenceSet::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--evidence" {
            let spec = args
                .get(i + 1)
                .ok_or("--evidence needs VAR=STATE".to_string())?;
            let (var, state) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad evidence '{spec}', expected VAR=STATE"))?;
            let v = bif
                .var_id(var)
                .ok_or_else(|| format!("unknown variable '{var}'"))?;
            let s = bif
                .state_index(var, state)
                .or_else(|| state.parse::<usize>().ok())
                .ok_or_else(|| format!("unknown state '{state}' of '{var}'"))?;
            ev.observe(v, s);
            i += 2;
        } else if args[i] == "--likelihood" {
            let spec = args
                .get(i + 1)
                .ok_or("--likelihood needs VAR=w:w:...".to_string())?;
            let (var, weights) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad likelihood '{spec}', expected VAR=w:w"))?;
            let v = bif
                .var_id(var)
                .ok_or_else(|| format!("unknown variable '{var}'"))?;
            let ws: Vec<f64> = weights
                .split(':')
                .map(|w| w.parse::<f64>())
                .collect::<std::result::Result<_, _>>()
                .map_err(|_| format!("bad weights in '{spec}'"))?;
            ev.observe_likelihood(v, ws);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(ev)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// All values of a repeatable flag, in order (`--model a=x --model b=y`).
fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn make_engine(args: &[String]) -> Result<Box<dyn Engine>, String> {
    let threads = match flag_value(args, "--threads") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("bad thread count '{t}'"))?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    Ok(match flag_value(args, "--engine").unwrap_or("collab") {
        "seq" | "sequential" => Box::new(SequentialEngine),
        "collab" | "collaborative" => Box::new(CollaborativeEngine::with_threads(threads)),
        "pooled" => Box::new(PooledEngine::with_threads(threads)),
        "openmp" => Box::new(OpenMpStyleEngine::new(threads)),
        "dp" | "data-parallel" => Box::new(DataParallelEngine::new(threads)),
        other => return Err(format!("unknown engine '{other}'")),
    })
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file".to_string())?;
    let bif = load(path)?;
    let net = &bif.network;
    println!(
        "network: {} ({} variables, {} edges)",
        bif.name,
        net.num_vars(),
        net.num_edges()
    );
    let session = InferenceSession::from_network(net).map_err(|e| e.to_string())?;
    let shape = session.junction_tree().shape();
    println!(
        "junction tree: {} cliques, max width {}, {} table entries total",
        shape.num_cliques(),
        shape.max_width(),
        shape.total_state_space()
    );
    let unrerooted = evprop_jtree::JunctionTree::from_network(net).map_err(|e| e.to_string())?;
    let before = critical_path_weight(unrerooted.shape());
    let choice = select_root(unrerooted.shape());
    println!(
        "critical path: {} -> {} after Algorithm 1 rerooting ({:.2}x)",
        before,
        choice.critical_path,
        before as f64 / choice.critical_path as f64
    );
    let g = session.task_graph();
    println!(
        "task graph: {} tasks, total work {}, critical work {}, inherent parallelism {:.2}",
        g.num_tasks(),
        g.total_weight(),
        g.critical_path_weight(),
        g.total_weight() as f64 / g.critical_path_weight().max(1) as f64
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query needs a file".to_string())?;
    let bif = load(path)?;
    let target_name = flag_value(args, "--target").ok_or("query needs --target VAR".to_string())?;
    let target = bif
        .var_id(target_name)
        .ok_or_else(|| format!("unknown variable '{target_name}'"))?;
    let ev = parse_evidence(&bif, args)?;
    let engine = make_engine(args)?;
    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    let calibrated = session
        .propagate(engine.as_ref(), &ev)
        .map_err(|e| e.to_string())?;
    let marginal = calibrated.marginal(target).map_err(|e| e.to_string())?;
    println!("P({target_name} | evidence) [engine: {}]", engine.name());
    for (s, p) in marginal.data().iter().enumerate() {
        println!("  {} = {:.6}", bif.state_name(target, s), p);
    }
    println!("P(evidence) = {:.6e}", calibrated.probability_of_evidence());
    Ok(())
}

fn cmd_mpe(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("mpe needs a file".to_string())?;
    let bif = load(path)?;
    let ev = parse_evidence(&bif, args)?;
    let engine = make_engine(args)?;
    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    let mpe = session
        .most_probable_explanation(engine.as_ref(), &ev)
        .map_err(|e| e.to_string())?;
    println!(
        "most probable explanation [engine: {}], P = {:.6e}",
        engine.name(),
        mpe.probability
    );
    for &(v, s) in &mpe.assignment {
        let observed = ev.state_of(v).is_some();
        println!(
            "  {} = {}{}",
            bif.var_name(v),
            bif.state_name(v, s),
            if observed { "  (observed)" } else { "" }
        );
    }
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let which = args
        .first()
        .ok_or("export needs a network name".to_string())?;
    let net = match which.as_str() {
        "sprinkler" => networks::sprinkler(),
        "asia" => networks::asia(),
        "student" => networks::student(),
        other => return Err(format!("unknown builtin network '{other}'")),
    };
    print!("{}", bif::write(&bif::with_generated_names(net, which)));
    Ok(())
}

/// Emits Graphviz DOT: the junction tree by default, the full task
/// dependency graph with `--tasks`.
fn cmd_dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("dot needs a file".to_string())?;
    let bif = load(path)?;
    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--tasks") {
        print!("{}", session.task_graph().to_dot());
    } else {
        print!("{}", session.junction_tree().shape().to_dot());
    }
    Ok(())
}

/// Builds a deterministic pseudo-random query stream over `net`:
/// each query asks for one target's posterior under single-variable
/// hard evidence (target and evidence variables always distinct).
fn random_queries(net: &evprop_bayesnet::BayesianNetwork, n: usize, seed: u64) -> QueryBatch {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars = net.num_vars() as u32;
    (0..n)
        .map(|_| {
            let target = evprop_potential::VarId(rng.gen_range(0..vars));
            let mut ev = EvidenceSet::new();
            if vars > 1 {
                let mut obs = evprop_potential::VarId(rng.gen_range(0..vars));
                while obs == target {
                    obs = evprop_potential::VarId(rng.gen_range(0..vars));
                }
                let card = net.var(obs).cardinality();
                ev.observe(obs, rng.gen_range(0..card));
            }
            Query::new(target, ev)
        })
        .collect()
}

/// Serve-style batch inference: compile the network once, then answer a
/// stream of randomized queries. The default path holds the session's
/// resident [`PooledEngine`]; `--spawn-per-query` runs the same stream
/// on a [`CollaborativeEngine`] that spawns and joins its worker
/// threads for every query — the baseline the pool exists to beat.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("serve needs a file".to_string())?;
    let bif = load(path)?;
    if let Some(addr) = flag_value(args, "--listen") {
        return cmd_serve_listen(bif, addr, args);
    }
    let queries = match flag_value(args, "--queries") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad query count '{v}'"))?,
        None => 200,
    };
    let threads = match flag_value(args, "--threads") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("bad thread count '{t}'"))?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let seed = match flag_value(args, "--seed") {
        Some(s) => s.parse::<u64>().map_err(|_| format!("bad seed '{s}'"))?,
        None => 0xC0FFEE,
    };
    let spawn_per_query = args.iter().any(|a| a == "--spawn-per-query");

    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    let batch = random_queries(&bif.network, queries, seed);

    let start = std::time::Instant::now();
    let mode = if spawn_per_query {
        let engine = CollaborativeEngine::with_threads(threads);
        for q in &batch {
            session
                .posterior(&engine, q.target, &q.evidence)
                .map_err(|e| e.to_string())?;
        }
        "spawn-per-query"
    } else {
        session.pooled_engine_with(evprop_sched::SchedulerConfig::with_threads(threads));
        session.posterior_batch(&batch).map_err(|e| e.to_string())?;
        "pooled"
    };
    let elapsed = start.elapsed();
    let qps = batch.len() as f64 / elapsed.as_secs_f64().max(1e-12);
    println!(
        "served {} queries [{mode}, {threads} threads] in {:.3} s ({:.0} queries/s)",
        batch.len(),
        elapsed.as_secs_f64(),
        qps
    );
    if !spawn_per_query {
        if let Some(report) = session.pooled_engine().last_report() {
            println!(
                "last job: wall {:?}, {} steals, {} tables allocated",
                report.wall,
                report.total_steals(),
                report.total_tables_allocated()
            );
        }
    }
    Ok(())
}

/// `evprop serve <file.bif> --listen ADDR`: boot the sharded runtime
/// and answer newline-delimited JSON queries over TCP until killed or
/// drained (`{"cmd": "drain"}` closes admission, answers everything
/// already admitted bounded by `--drain-timeout-ms`, and exits).
///
/// Plain invocations serve the positional network on the pre-registry
/// single-model path. Any `--model NAME=PATH` (repeatable) or
/// `--model-budget-mb MB` flag boots a model registry instead: the
/// positional network becomes the default model (alias = its BIF
/// name), the extra models load alongside it, and the protocol's
/// `model-load` / `model-swap` / `model-unload` / `model-list`
/// commands manage versions while serving.
fn cmd_serve_listen(bif: BifNetwork, addr: &str, args: &[String]) -> Result<(), String> {
    use evprop_registry::ModelRegistry;
    use evprop_serve::{RuntimeConfig, ServerOptions, ShardedRuntime, TcpServer};
    use std::sync::Arc;
    use std::time::Duration;

    let parse_flag = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, flag) {
            Some(v) => v.parse().map_err(|_| format!("bad {flag} '{v}'")),
            None => Ok(default),
        }
    };
    let shards = parse_flag("--shards", 2)?;
    let threads_per_shard = parse_flag("--threads-per-shard", 1)?;
    let mut config = RuntimeConfig::new(shards.max(1), threads_per_shard.max(1))
        .with_queue_depth(parse_flag("--queue-depth", 64)?.max(1))
        .with_max_batch(parse_flag("--batch", 8)?.max(1));
    if args.iter().any(|a| a == "--no-partitioning") {
        config = config.without_partitioning();
    }

    let defaults = ServerOptions::default();
    let drain_timeout = Duration::from_millis(parse_flag("--drain-timeout-ms", 5_000)? as u64);
    let options = ServerOptions {
        max_conns: parse_flag("--max-conns", defaults.max_conns)?.max(1),
        max_line_bytes: parse_flag("--max-line-bytes", defaults.max_line_bytes)?.max(64),
        read_timeout: match flag_value(args, "--idle-timeout-ms") {
            Some(v) => Some(Duration::from_millis(
                v.parse()
                    .map_err(|_| format!("bad --idle-timeout-ms '{v}'"))?,
            )),
            None => None,
        },
        write_timeout: defaults.write_timeout,
    };

    let extra_models = flag_values(args, "--model");
    let budget_mb = match flag_value(args, "--model-budget-mb") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad --model-budget-mb '{v}'"))?,
        ),
        None => None,
    };
    let registry_mode = !extra_models.is_empty() || budget_mb.is_some();

    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    let runtime = if registry_mode {
        let mut registry = ModelRegistry::new();
        if let Some(mb) = budget_mb {
            registry = registry.with_budget_mb(mb);
        }
        let registry = Arc::new(registry);
        let default_name = bif.name.clone();
        registry
            .install(
                &default_name,
                Arc::clone(session.model()),
                Arc::new(bif.clone()),
            )
            .map_err(|e| format!("install {default_name}: {e}"))?;
        for spec in &extra_models {
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad --model '{spec}': expected NAME=PATH"))?;
            let extra = load(path)?;
            let extra_session =
                InferenceSession::from_network(&extra.network).map_err(|e| e.to_string())?;
            registry
                .install(name, Arc::clone(extra_session.model()), Arc::new(extra))
                .map_err(|e| format!("install {name}: {e}"))?;
            eprintln!("loaded model {name} from {path}");
        }
        Arc::new(
            ShardedRuntime::with_registry(registry, &default_name, config)
                .map_err(|e| e.to_string())?,
        )
    } else {
        Arc::new(ShardedRuntime::new(session, config))
    };
    let names = Arc::new(bif);
    let mut server = TcpServer::bind_with(addr, Arc::clone(&runtime), names, options)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on {} [{} shard(s) x {} thread(s), queue depth {}, batch {}{}]",
        server.local_addr(),
        runtime.config().shards,
        runtime.config().threads_per_shard,
        runtime.config().queue_depth,
        runtime.config().max_batch,
        match (registry_mode, budget_mb) {
            (true, Some(mb)) => format!(", registry budget {mb} MB"),
            (true, None) => ", registry".to_string(),
            (false, _) => String::new(),
        },
    );
    // Serve until the process is killed — or until some client sends
    // `{"cmd": "drain"}`, which closes admission and starts a bounded
    // graceful shutdown: answer everything already admitted, close open
    // sessions, and exit cleanly either way.
    server.wait_for_drain();
    let clean = runtime.drain(drain_timeout);
    // Small grace so clients can read the answers they are owed before
    // their connections are torn down.
    std::thread::sleep(Duration::from_millis(100));
    server.stop();
    if clean {
        println!("drained cleanly");
    } else {
        println!(
            "drain timed out after {}ms; forcing shutdown",
            drain_timeout.as_millis()
        );
    }
    Ok(())
}

/// `evprop session-bench`: replay an interactive evidence-churn stream
/// (toggle one finding, read one posterior, repeat) two ways — through
/// a resident [`IncrementalSession`](evprop_incremental::IncrementalSession)
/// and through stateless full repropagation — and report the speedup.
/// Evidence states are drawn from the network's MPE assignment, so
/// every configuration along the stream has positive probability.
fn cmd_session_bench(args: &[String]) -> Result<(), String> {
    use evprop_core::ShardState;
    use evprop_incremental::IncrementalSession;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    let path = args
        .first()
        .ok_or("session-bench needs a file".to_string())?;
    let bif = load(path)?;
    let steps = match flag_value(args, "--steps") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad step count '{v}'"))?,
        None => 200,
    };
    let threads = match flag_value(args, "--threads") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("bad thread count '{t}'"))?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let seed = match flag_value(args, "--seed") {
        Some(s) => s.parse::<u64>().map_err(|_| format!("bad seed '{s}'"))?,
        None => 0xC0FFEE,
    };
    if steps == 0 {
        return Err("--steps must be at least 1".to_string());
    }

    let session = InferenceSession::from_network(&bif.network).map_err(|e| e.to_string())?;
    let mpe = session
        .most_probable_explanation(&SequentialEngine, &EvidenceSet::new())
        .map_err(|e| e.to_string())?;
    // Every fourth variable is reserved as a query target; the rest
    // form the observable pool with their MPE states.
    let mut pool = Vec::new();
    let mut targets = Vec::new();
    for (i, &(v, s)) in mpe.assignment.iter().enumerate() {
        if i % 4 == 0 {
            targets.push(v);
        } else {
            pool.push((v, s));
        }
    }
    if pool.is_empty() || targets.is_empty() {
        return Err("network too small for a churn stream".to_string());
    }

    // One toggle + one query per step, fixed ahead of both passes.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let stream: Vec<(usize, evprop_potential::VarId)> = (0..steps)
        .map(|_| {
            (
                rng.gen_range(0..pool.len()),
                targets[rng.gen_range(0..targets.len())],
            )
        })
        .collect();

    let shard = ShardState::new(evprop_sched::SchedulerConfig::with_threads(threads));
    let jt = session.junction_tree();
    let graph = session.task_graph();

    // Stateless baseline: full repropagation per query.
    let mut ev = EvidenceSet::new();
    let mut arena = shard.checkout(graph, jt.potentials());
    shard
        .posterior_on(jt, graph, &mut arena, stream[0].1, &ev)
        .map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    for &(slot, target) in &stream {
        let (v, s) = pool[slot];
        if ev.state_of(v).is_some() {
            ev.retract(v);
        } else {
            ev.observe(v, s);
        }
        shard
            .posterior_on(jt, graph, &mut arena, target, &ev)
            .map_err(|e| e.to_string())?;
    }
    let full_secs = t0.elapsed().as_secs_f64();
    shard.recycle(arena);

    // Resident incremental session over the same stream.
    let mut inc = IncrementalSession::new(Arc::clone(session.model()));
    inc.query(&shard, stream[0].1).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    for &(slot, target) in &stream {
        let (v, s) = pool[slot];
        if inc.evidence().state_of(v).is_some() {
            inc.retract(v);
        } else {
            inc.observe(v, s).map_err(|e| e.to_string())?;
        }
        inc.query(&shard, target).map_err(|e| e.to_string())?;
    }
    let inc_secs = t0.elapsed().as_secs_f64();

    let full_qps = steps as f64 / full_secs.max(1e-12);
    let inc_qps = steps as f64 / inc_secs.max(1e-12);
    let stats = inc.stats();
    println!(
        "session-bench: {steps} single-finding steps on {} [{threads} thread(s)]",
        path
    );
    println!("  full reprop:  {full_qps:.0} queries/s ({full_secs:.3} s)");
    println!(
        "  incremental:  {inc_qps:.0} queries/s ({inc_secs:.3} s) — {} cached, {} incremental, {} full ({} zero-separator)",
        stats.cached, stats.incremental, stats.full, stats.full_zero_separator
    );
    println!("  speedup: {:.2}x", inc_qps / full_qps);
    Ok(())
}

/// `evprop trace`: run traced propagations on a model and export a
/// Chrome-trace (Perfetto) timeline plus an analyzer summary.
///
/// The model is a BIF file, or `--random` for a materialized random
/// clique tree (the workload generator the scaling experiments use).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use evprop_trace::{analyze, chrome_trace_json, TraceSink};
    use std::sync::Arc;
    use std::time::Duration;

    let get = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: '{v}'")),
            None => Ok(default),
        }
    };
    let seed = match flag_value(args, "--seed") {
        Some(s) => s.parse::<u64>().map_err(|_| format!("bad seed '{s}'"))?,
        None => 0xF9,
    };
    let (jt, graph, label) = if args.iter().any(|a| a == "--random") {
        let (n, w) = (get("--cliques", 64)?, get("--width", 8)?);
        let (r, k) = (get("--states", 2)?, get("--degree", 3)?);
        let shape = random_tree(&TreeParams::new(n, w, r, k).with_seed(seed));
        let jt = evprop_workloads::materialize(&shape, seed);
        let graph = TaskGraph::from_shape(&shape);
        (jt, graph, format!("random tree N={n} w={w} r={r} k={k}"))
    } else {
        let path = args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("trace needs a file or --random".to_string())?;
        let bif = load(path)?;
        let jt =
            evprop_jtree::JunctionTree::from_network(&bif.network).map_err(|e| e.to_string())?;
        let graph = TaskGraph::from_shape(jt.shape());
        (jt, graph, bif.name.clone())
    };

    let threads = match flag_value(args, "--threads") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("bad thread count '{t}'"))?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let runs = get("--runs", 4)?.max(1);
    let mut cfg = evprop_sched::SchedulerConfig::with_threads(threads);
    if let Some(d) = flag_value(args, "--delta") {
        cfg.partition_threshold = Some(d.parse().map_err(|_| format!("bad --delta '{d}'"))?);
    }
    if args.iter().any(|a| a == "--no-partitioning") {
        cfg.partition_threshold = None;
    }
    cfg.work_stealing = args.iter().any(|a| a == "--stealing");

    let engine = PooledEngine::new(cfg);
    // Ring capacity: every task yields at most a fetch/steal, a
    // partition, and its subtask spans; pad generously so nothing drops.
    let capacity = graph.num_tasks() * 8 * runs + 4096;
    let sink = Arc::new(TraceSink::for_workers(threads, capacity));
    engine.attach_trace(Some(Arc::clone(&sink)));

    let ev = EvidenceSet::new();
    let mut stats_busy = vec![Duration::ZERO; threads];
    let mut wall_total = Duration::ZERO;
    for _ in 0..runs {
        engine
            .propagate_graph(&jt, &graph, &ev)
            .map_err(|e| e.to_string())?;
        if let Some(report) = engine.last_report() {
            wall_total += report.wall;
            for (i, t) in report.threads.iter().enumerate() {
                stats_busy[i] += t.busy;
            }
        }
    }

    let trace = sink.drain();
    let out = flag_value(args, "--out").unwrap_or("trace.json");
    std::fs::write(out, chrome_trace_json(&trace)).map_err(|e| format!("write {out}: {e}"))?;
    let a = analyze(&trace);
    println!(
        "traced {label}: {runs} run(s) x {} tasks on {threads} thread(s)",
        graph.num_tasks()
    );
    println!(
        "wrote {out}: {} events, {} dropped — load it at https://ui.perfetto.dev",
        trace.total_events(),
        trace.total_dropped()
    );
    println!("thread   busy(us)   idle(us)  tasks  steals      weight");
    let mut max_dev = 0.0f64;
    for t in a.threads.iter().take(threads) {
        println!(
            "{:>6} {:>10} {:>10} {:>6} {:>7} {:>11}",
            t.thread,
            t.busy_ns / 1_000,
            t.idle_ns / 1_000,
            t.tasks,
            t.steals,
            t.weight
        );
        let stat_ns = stats_busy[t.thread].as_nanos() as f64;
        if stat_ns > 0.0 {
            max_dev = max_dev.max((t.busy_ns as f64 - stat_ns).abs() / stat_ns);
        }
    }
    println!(
        "busy agreement with ThreadStats: max deviation {:.3}%",
        max_dev * 100.0
    );
    println!(
        "jobs {}, imbalance {:.2} (max/mean weight), parallel efficiency {:.2}",
        a.jobs, a.imbalance, a.parallel_efficiency
    );
    let cp = graph.critical_path_weight();
    println!(
        "critical-path estimate {:.3} ms/job ({} weight at {:.1} ns/entry) vs measured {:.3} ms/job",
        a.critical_path_estimate_ns(cp) as f64 / 1e6,
        cp,
        a.ns_per_weight,
        wall_total.as_secs_f64() * 1e3 / runs as f64
    );
    Ok(())
}

/// `evprop trace-validate <trace.json>`: structural checks on an
/// exported Chrome-trace file — required fields present, per-thread
/// timestamps monotone — so CI can gate on exporter correctness.
fn cmd_trace_validate(args: &[String]) -> Result<(), String> {
    use evprop_serve::{parse_json, Json};
    use std::collections::BTreeMap;

    let path = args
        .first()
        .ok_or("trace-validate needs a trace.json file".to_string())?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let v = parse_json(&src).map_err(|e| format!("{path}: {e}"))?;
    let Some(Json::Arr(events)) = v.get("traceEvents") else {
        return Err(format!("{path}: missing \"traceEvents\" array"));
    };
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| e.get(k).ok_or(format!("event {i}: missing \"{k}\""));
        let Json::Str(ph) = field("ph")? else {
            return Err(format!("event {i}: \"ph\" must be a string"));
        };
        if !matches!(field("name")?, Json::Str(_)) {
            return Err(format!("event {i}: \"name\" must be a string"));
        }
        let Json::Num(tid) = field("tid")? else {
            return Err(format!("event {i}: \"tid\" must be a number"));
        };
        if !matches!(field("pid")?, Json::Num(_)) {
            return Err(format!("event {i}: \"pid\" must be a number"));
        }
        match ph.as_str() {
            "M" => {} // metadata carries no timestamp
            "X" | "i" => {
                let Json::Num(ts) = field("ts")? else {
                    return Err(format!("event {i}: \"ts\" must be a number"));
                };
                if *ph == *"X" && !matches!(field("dur")?, Json::Num(d) if *d >= 0.0) {
                    return Err(format!("event {i}: \"dur\" must be a non-negative number"));
                }
                let key = *tid as u64;
                if let Some(prev) = last_ts.get(&key) {
                    if *ts < *prev {
                        return Err(format!(
                            "event {i}: ts {ts} goes backwards on tid {key} (prev {prev})"
                        ));
                    }
                }
                last_ts.insert(key, *ts);
                spans += 1;
            }
            other => return Err(format!("event {i}: unexpected ph \"{other}\"")),
        }
    }
    println!(
        "{path}: OK — {} events ({spans} timed) across {} thread(s), per-thread timestamps monotone",
        events.len(),
        last_ts.len()
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let get = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: '{v}'")),
            None => Ok(default),
        }
    };
    let n = get("--cliques", 256)?;
    let w = get("--width", 12)?;
    let r = get("--states", 2)?;
    let k = get("--degree", 4)?;
    let policy = match flag_value(args, "--policy").unwrap_or("collab") {
        "collab" | "collaborative" => Policy::collaborative(),
        "openmp" => Policy::OpenMpStyle,
        "dp" | "data-parallel" => Policy::DataParallel,
        "pnl" => Policy::PnlStyle,
        other => return Err(format!("unknown policy '{other}'")),
    };
    let cores: Vec<usize> = {
        let picked: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--cores")
            .filter_map(|(i, _)| args.get(i + 1))
            .filter_map(|v| v.parse().ok())
            .collect();
        if picked.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            picked
        }
    };

    let shape = random_tree(&TreeParams::new(n, w, r, k).with_seed(0xF9));
    let g = TaskGraph::from_shape(&shape);
    let model = CostModel::default();
    println!(
        "simulating {policy:?} on N={n} w={w} r={r} k={k} ({} tasks)",
        g.num_tasks()
    );
    let base = simulate(&g, policy, 1, &model).makespan;
    println!("cores,makespan,speedup");
    for p in &cores {
        let rep = simulate(&g, policy, *p, &model);
        println!(
            "{p},{},{:.2}",
            rep.makespan,
            base as f64 / rep.makespan as f64
        );
    }
    if args.iter().any(|a| a == "--gantt") {
        if let Policy::Collaborative {
            delta,
            work_stealing,
        } = policy
        {
            let p = cores.last().copied().unwrap_or(4);
            let (_, trace) = simulate_collaborative_traced(&g, p, delta, work_stealing, &model);
            println!("\nschedule on {p} cores (m=marg d=div e=ext x=mul):");
            print!("{}", render_gantt(&trace, p, 72));
        } else {
            eprintln!("--gantt requires the collaborative policy");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asia_file() -> String {
        let dir = std::env::temp_dir().join("evprop-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("asia.bif");
        let text = bif::write(&bif::with_generated_names(networks::asia(), "asia"));
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn info_runs() {
        cmd_info(&s(&[&asia_file()])).unwrap();
    }

    #[test]
    fn query_runs_with_evidence() {
        let f = asia_file();
        cmd_query(&s(&[
            &f,
            "--target",
            "v3",
            "--evidence",
            "v7=s1",
            "--engine",
            "seq",
        ]))
        .unwrap();
        // numeric state form
        cmd_query(&s(&[
            &f,
            "--target",
            "v3",
            "--evidence",
            "v7=1",
            "--threads",
            "2",
        ]))
        .unwrap();
        // soft evidence
        cmd_query(&s(&[&f, "--target", "v3", "--likelihood", "v6=0.3:0.9"])).unwrap();
        assert!(cmd_query(&s(&[&f, "--target", "v3", "--likelihood", "v6=x:y"])).is_err());
    }

    #[test]
    fn mpe_runs() {
        let f = asia_file();
        cmd_mpe(&s(&[
            &f,
            "--evidence",
            "v7=s1",
            "--engine",
            "collab",
            "--threads",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn session_bench_runs() {
        cmd_session_bench(&s(&[
            &asia_file(),
            "--steps",
            "20",
            "--threads",
            "1",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(cmd_session_bench(&s(&[&asia_file(), "--steps", "0"])).is_err());
        assert!(cmd_session_bench(&s(&[])).is_err());
    }

    #[test]
    fn export_then_reload() {
        for which in ["sprinkler", "asia", "student"] {
            cmd_export(&s(&[which])).unwrap();
        }
        assert!(cmd_export(&s(&["nope"])).is_err());
    }

    #[test]
    fn dot_runs() {
        let f = asia_file();
        cmd_dot(&s(&[&f])).unwrap();
        cmd_dot(&s(&[&f, "--tasks"])).unwrap();
        assert!(cmd_dot(&s(&[])).is_err());
    }

    #[test]
    fn serve_runs_pooled_and_spawned() {
        let f = asia_file();
        cmd_serve(&s(&[&f, "--queries", "8", "--threads", "2", "--seed", "7"])).unwrap();
        cmd_serve(&s(&[
            &f,
            "--queries",
            "4",
            "--threads",
            "2",
            "--spawn-per-query",
        ]))
        .unwrap();
        assert!(cmd_serve(&s(&[])).is_err());
        assert!(cmd_serve(&s(&[&f, "--queries", "x"])).is_err());
    }

    #[test]
    fn trace_exports_and_validates() {
        let dir = std::env::temp_dir().join("evprop-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out_bif = dir.join("trace-asia.json").to_string_lossy().into_owned();
        let out_rand = dir.join("trace-rand.json").to_string_lossy().into_owned();
        let f = asia_file();
        cmd_trace(&s(&[
            &f,
            "--threads",
            "2",
            "--runs",
            "2",
            "--out",
            &out_bif,
        ]))
        .unwrap();
        cmd_trace_validate(&s(&[&out_bif])).unwrap();
        cmd_trace(&s(&[
            "--random",
            "--cliques",
            "16",
            "--width",
            "6",
            "--threads",
            "2",
            "--delta",
            "256",
            "--out",
            &out_rand,
        ]))
        .unwrap();
        cmd_trace_validate(&s(&[&out_rand])).unwrap();
        assert!(cmd_trace(&s(&[])).is_err());
        assert!(cmd_trace(&s(&["--out", "x.json"])).is_err());
        assert!(cmd_trace_validate(&s(&["/nonexistent.json"])).is_err());
    }

    #[test]
    fn simulate_runs() {
        cmd_simulate(&s(&[
            "--cliques",
            "32",
            "--width",
            "8",
            "--cores",
            "1",
            "--cores",
            "4",
        ]))
        .unwrap();
        cmd_simulate(&s(&["--cliques", "16", "--width", "6", "--gantt"])).unwrap();
        assert!(cmd_simulate(&s(&["--policy", "bogus"])).is_err());
    }

    #[test]
    fn bad_inputs_reported() {
        assert!(cmd_info(&s(&["/nonexistent.bif"])).is_err());
        let f = asia_file();
        assert!(cmd_query(&s(&[&f])).is_err());
        assert!(cmd_query(&s(&[&f, "--target", "nope"])).is_err());
        assert!(cmd_query(&s(&[&f, "--target", "v3", "--evidence", "v7"])).is_err());
        assert!(cmd_query(&s(&[&f, "--target", "v3", "--engine", "bogus"])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
    }
}
