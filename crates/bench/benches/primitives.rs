//! Criterion micro-benchmarks of the four node-level primitives — the
//! per-entry costs that feed the simulator's `CostModel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evprop_potential::{Domain, PotentialTable, VarId, Variable};
use std::hint::black_box;

fn table(width: usize, first_var: u32) -> PotentialTable {
    let dom = Domain::new(
        (0..width as u32)
            .map(|i| Variable::binary(VarId(first_var + i)))
            .collect(),
    )
    .unwrap();
    let data: Vec<f64> = (0..dom.size()).map(|i| 0.5 + (i % 7) as f64).collect();
    PotentialTable::from_data(dom, data).unwrap()
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    for width in [10usize, 14] {
        let clique = table(width, 0);
        let sep_dom = clique
            .domain()
            .project(&(0..(width as u32 / 2)).map(VarId).collect::<Vec<_>>());
        let sep = clique.marginalize(&sep_dom).unwrap();
        let entries = clique.len() as u64;
        group.throughput(Throughput::Elements(entries));

        group.bench_with_input(BenchmarkId::new("marginalize", width), &width, |b, _| {
            b.iter(|| black_box(clique.marginalize(&sep_dom).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("extend", width), &width, |b, _| {
            b.iter(|| black_box(sep.extend(clique.domain()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("multiply", width), &width, |b, _| {
            b.iter_batched(
                || clique.clone(),
                |mut t| {
                    t.multiply_assign(&sep).unwrap();
                    black_box(t)
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("divide", width), &width, |b, _| {
            b.iter_batched(
                || (sep.clone(), sep.clone()),
                |(mut n, d)| {
                    n.divide_assign(&d).unwrap();
                    black_box(n)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
