//! Criterion benchmark of root selection: Algorithm 1 (`O(w_C N)`)
//! versus the straightforward `O(w_C N²)` method — the paper's
//! complexity claim, and its "24 µs for 512 cliques" measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evprop_jtree::{select_root, select_root_naive};
use evprop_workloads::fig4_template;
use std::hint::black_box;

fn bench_reroot(c: &mut Criterion) {
    let mut group = c.benchmark_group("reroot");
    group.sample_size(30);
    for n in [128usize, 512, 2048] {
        let shape = fig4_template(4, n, 15);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| black_box(select_root(&shape)))
        });
        // the naive method at 2048 cliques takes tens of ms; keep it to
        // the smaller sizes so the suite stays fast
        if n <= 512 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| black_box(select_root_naive(&shape)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reroot);
criterion_main!(benches);
