//! Criterion benchmark of end-to-end evidence propagation: the
//! sequential reference versus the parallel engines at one thread
//! (isolating scheduler overhead) and at the host's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evprop_core::{
    CollaborativeEngine, DataParallelEngine, Engine, OpenMpStyleEngine, SequentialEngine,
};
use evprop_potential::EvidenceSet;
use evprop_sched::SchedulerConfig;
use evprop_taskgraph::TaskGraph;
use evprop_workloads::{materialize, random_tree, TreeParams};
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    let shape = random_tree(&TreeParams::new(64, 12, 2, 4).with_seed(1));
    let jt = materialize(&shape, 2);
    let graph = TaskGraph::from_shape(jt.shape());
    let ev = EvidenceSet::new();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(SequentialEngine.propagate_graph(&jt, &graph, &ev).unwrap()))
    });
    // 1 thread isolates scheduler overhead; host_cores shows real scaling
    // (identical on single-core hosts, so deduplicate)
    let mut thread_counts = vec![1usize, host_cores];
    thread_counts.dedup();
    for threads in thread_counts {
        let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(threads));
        group.bench_with_input(
            BenchmarkId::new("collaborative", threads),
            &threads,
            |b, _| b.iter(|| black_box(engine.propagate_graph(&jt, &graph, &ev).unwrap())),
        );
    }
    let omp = OpenMpStyleEngine::new(host_cores);
    group.bench_function("openmp-style", |b| {
        b.iter(|| black_box(omp.propagate_graph(&jt, &graph, &ev).unwrap()))
    });
    let dp = DataParallelEngine::new(host_cores);
    group.bench_function("data-parallel", |b| {
        b.iter(|| black_box(dp.propagate_graph(&jt, &graph, &ev).unwrap()))
    });

    // single-query fast path vs full calibration
    let session = evprop_core::InferenceSession::from_junction_tree(jt.clone());
    let query = evprop_potential::VarId(3);
    group.bench_function("posterior_full", |b| {
        b.iter(|| black_box(session.posterior(&SequentialEngine, query, &ev).unwrap()))
    });
    group.bench_function("posterior_collect_only", |b| {
        b.iter(|| {
            black_box(
                session
                    .posterior_collect_only(&SequentialEngine, query, &ev)
                    .unwrap(),
            )
        })
    });

    // batched propagation (8 cases through one scheduler run)
    let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(host_cores));
    let cases: Vec<EvidenceSet> = (0..8).map(|_| EvidenceSet::new()).collect();
    group.bench_function("batch_of_8", |b| {
        b.iter(|| black_box(engine.propagate_batch(&jt, &graph, &cases).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
