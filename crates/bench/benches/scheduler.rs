//! Criterion benchmark of the collaborative scheduler itself: thread
//! count, partition threshold δ, and the work-stealing ablation — plus
//! task-graph construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evprop_potential::EvidenceSet;
use evprop_sched::{run_collaborative, SchedulerConfig, TableArena};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::{materialize, random_tree, TreeParams};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    let shape = random_tree(&TreeParams::new(128, 11, 2, 4).with_seed(9));
    let jt = materialize(&shape, 9);
    let graph = TaskGraph::from_shape(jt.shape());
    let ev = EvidenceSet::new();

    for threads in [1usize, 2, 4] {
        let cfg = SchedulerConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                let arena = TableArena::initialize(&graph, jt.potentials(), &ev);
                black_box(run_collaborative(&graph, &arena, &cfg))
            })
        });
    }

    for (name, cfg) in [
        (
            "delta_off",
            SchedulerConfig::with_threads(2).without_partitioning(),
        ),
        (
            "delta_512",
            SchedulerConfig::with_threads(2).with_delta(512),
        ),
        ("delta_64", SchedulerConfig::with_threads(2).with_delta(64)),
        ("stealing", SchedulerConfig::with_threads(2).with_stealing()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let arena = TableArena::initialize(&graph, jt.potentials(), &ev);
                black_box(run_collaborative(&graph, &arena, &cfg))
            })
        });
    }

    group.bench_function("taskgraph_build", |b| {
        b.iter(|| black_box(TaskGraph::from_shape(jt.shape())))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
