//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints both the measured
//! series and the paper's reference values so EXPERIMENTS.md can be
//! updated by copy-paste. All series come from the deterministic
//! simulator unless stated otherwise, so reruns are bit-identical.

#![warn(missing_docs)]

use evprop_simcore::{simulate, CostModel, Policy, SimReport};
use evprop_taskgraph::TaskGraph;

/// Core counts used throughout the paper's figures.
pub const CORE_GRID: [usize; 4] = [1, 2, 4, 8];

/// Prints a CSV-ish header line.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join(","));
}

/// Formats a speedup series over [`CORE_GRID`].
pub fn speedup_series(graph: &TaskGraph, policy: Policy, model: &CostModel) -> Vec<f64> {
    let base = simulate(graph, policy, 1, model).makespan as f64;
    CORE_GRID
        .iter()
        .map(|&p| base / simulate(graph, policy, p, model).makespan as f64)
        .collect()
}

/// Runs the policy across [`CORE_GRID`] returning full reports.
pub fn report_series(graph: &TaskGraph, policy: Policy, model: &CostModel) -> Vec<SimReport> {
    CORE_GRID
        .iter()
        .map(|&p| simulate(graph, policy, p, model))
        .collect()
}

/// Renders a `f64` series with fixed precision.
pub fn fmt_series(series: &[f64]) -> String {
    series
        .iter()
        .map(|v| format!("{v:.2}"))
        .collect::<Vec<_>>()
        .join(",")
}
