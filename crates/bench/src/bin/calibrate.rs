//! Calibration: measure the *real* per-entry cost of each node-level
//! primitive on this host and compare the ratios against the simulator's
//! `CostModel` constants — the empirical link between the threaded
//! implementation and the virtual-time figures.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin calibrate
//! ```

use evprop_bench::header;
use evprop_potential::{Domain, PotentialTable, VarId, Variable};
use evprop_simcore::CostModel;
use std::time::Instant;

fn table(width: usize) -> PotentialTable {
    let dom = Domain::new(
        (0..width as u32)
            .map(|i| Variable::binary(VarId(i)))
            .collect(),
    )
    .expect("fresh variables");
    let data: Vec<f64> = (0..dom.size()).map(|i| 0.5 + (i % 7) as f64).collect();
    PotentialTable::from_data(dom, data).expect("length matches")
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    const WIDTH: usize = 18; // 256Ki entries: large enough to amortize setup
    let clique = table(WIDTH);
    let sep_dom = clique
        .domain()
        .project(&(0..(WIDTH as u32 / 2)).map(VarId).collect::<Vec<_>>());
    let sep = clique.marginalize(&sep_dom).expect("subdomain");
    let entries = clique.len() as f64;

    let marg = best_of(7, || {
        std::hint::black_box(clique.marginalize(&sep_dom).expect("subdomain"));
    });
    let ext = best_of(7, || {
        std::hint::black_box(sep.extend(clique.domain()).expect("superdomain"));
    });
    let mut work = clique.clone();
    let mul = best_of(7, || {
        work.multiply_assign(&sep).expect("subdomain");
        std::hint::black_box(&work);
    });
    let mut num = clique.clone();
    let den = clique.clone();
    let div = best_of(7, || {
        num.divide_assign(&den).expect("same domain");
        std::hint::black_box(&num);
    });

    let ns = |d: std::time::Duration| d.as_nanos() as f64 / entries;
    let model = CostModel::default();
    println!(
        "# per-entry cost of the node-level primitives ({} entries, best of 7)",
        clique.len()
    );
    header(&[
        "primitive",
        "ns_per_entry",
        "relative_measured",
        "relative_in_model",
    ]);
    let base = ns(marg);
    for (name, d, modeled) in [
        ("marginalize", marg, model.c_marg),
        ("divide", div, model.c_div),
        ("extend", ext, model.c_ext),
        ("multiply", mul, model.c_mul),
    ] {
        println!(
            "{name},{:.3},{:.2},{:.2}",
            ns(d),
            ns(d) / base,
            modeled / model.c_marg
        );
    }
    println!("# the simulator's c_* ratios should track the measured column; absolute");
    println!("# nanoseconds are host-specific and do not enter any figure.");
}
