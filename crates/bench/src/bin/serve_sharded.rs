//! Sharded-serving benchmark (extension): how should a fixed thread
//! budget be split across shards?
//!
//! For each seed workload (asia, student, random_w8) and a total
//! budget of `T` worker threads, measures:
//!
//! * **single-pool baseline** — one [`PooledEngine`] with `T` threads,
//!   one closed-loop client (the PR-2 serving path, no queue);
//! * **shard layouts** — a [`ShardedRuntime`] at `1×T`, `2×(T/2)`,
//!   `T×1`, each driven closed-loop by one client thread per shard;
//! * **open-loop overload** — a producer firing the whole stream at a
//!   deliberately tiny admission queue via `try_submit`, demonstrating
//!   bounded queue depth and load shedding under overload.
//!
//! Prints a CSV-ish summary and writes `BENCH_serve_sharded.json`.
//! Throughput numbers are wall-clock on whatever cores the host
//! exposes (`host_cores` in the JSON) — on a single-core container
//! the layouts mostly measure scheduling overhead, not parallelism.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin serve_sharded
//! ```

use evprop_bayesnet::networks;
use evprop_core::{InferenceSession, PooledEngine, Query};
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::SchedulerConfig;
use evprop_serve::{RuntimeConfig, RuntimeStats, ServeError, ShardedRuntime};
use evprop_workloads::{random_tree, TreeParams};
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Total worker-thread budget split across layouts.
const THREAD_BUDGET: usize = 4;
/// Queue depth for the overload leg — small enough that an open-loop
/// producer saturates it instantly.
const OVERLOAD_DEPTH: usize = 8;

struct Workload {
    name: &'static str,
    session: Arc<InferenceSession>,
    num_vars: u32,
    queries: usize,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    let asia = networks::asia();
    out.push(Workload {
        name: "asia",
        num_vars: asia.num_vars() as u32,
        session: Arc::new(InferenceSession::from_network(&asia).unwrap()),
        queries: 400,
    });
    let student = networks::student();
    out.push(Workload {
        name: "student",
        num_vars: student.num_vars() as u32,
        session: Arc::new(InferenceSession::from_network(&student).unwrap()),
        queries: 400,
    });
    let shape = random_tree(&TreeParams::new(64, 8, 2, 4).with_seed(0xF9));
    let jt = JunctionTree::from_parts(
        shape.clone(),
        shape
            .domains()
            .iter()
            .map(|d| {
                let mut t = evprop_potential::PotentialTable::ones(d.clone());
                t.fill(0.5);
                t
            })
            .collect(),
    )
    .unwrap();
    let num_vars = shape
        .domains()
        .iter()
        .flat_map(|d| d.vars().iter().map(|v| v.id().0))
        .max()
        .unwrap()
        + 1;
    out.push(Workload {
        name: "random_w8",
        num_vars,
        session: Arc::new(InferenceSession::from_junction_tree(jt)),
        queries: 100,
    });
    out
}

/// The same deterministic stream as `serve_throughput`.
fn query_stream(w: &Workload, seed: u64) -> Vec<Query> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let in_tree = |v: u32| {
        w.session
            .junction_tree()
            .clique_containing(VarId(v))
            .is_some()
    };
    let vars: Vec<u32> = (0..w.num_vars).filter(|&v| in_tree(v)).collect();
    (0..w.queries)
        .map(|_| {
            let target = vars[rng.gen_range(0..vars.len())];
            let mut ev = EvidenceSet::new();
            if vars.len() > 1 {
                let mut obs = target;
                while obs == target {
                    obs = vars[rng.gen_range(0..vars.len())];
                }
                ev.observe(VarId(obs), 0);
            }
            Query::new(VarId(target), ev)
        })
        .collect()
}

/// One closed-loop client on a dedicated single-shard pool — the PR-2
/// serving baseline the sharded runtime must not regress.
fn run_single_pool(w: &Workload, queries: &[Query]) -> (f64, f64) {
    let engine = PooledEngine::new(SchedulerConfig::with_threads(THREAD_BUDGET));
    let jt = w.session.junction_tree();
    let graph = w.session.task_graph();
    engine
        .posterior(jt, graph, queries[0].target, &queries[0].evidence)
        .expect("warmup");
    let start = Instant::now();
    for q in queries {
        engine
            .posterior(jt, graph, q.target, &q.evidence)
            .expect("stream queries are answerable");
    }
    let total = start.elapsed().as_secs_f64();
    (queries.len() as f64 / total.max(1e-12), total)
}

struct LayoutResult {
    shards: usize,
    threads_per_shard: usize,
    qps: f64,
    total_secs: f64,
    stats: RuntimeStats,
}

/// Closed loop: one client thread per shard, each driving its slice of
/// the stream submit-and-wait.
fn run_layout(
    w: &Workload,
    queries: &[Query],
    shards: usize,
    threads_per_shard: usize,
) -> LayoutResult {
    // Every layout serves the same Arc<CompiledModel> the workload
    // compiled once — no per-layout junction-tree or plan recompiles.
    let rt = Arc::new(ShardedRuntime::from_model(
        Arc::clone(w.session.model()),
        RuntimeConfig::new(shards, threads_per_shard),
    ));
    // Warm every shard's arena cache outside the timed region.
    for _ in 0..shards * 2 {
        rt.query(queries[0].clone()).expect("warmup");
    }
    let start = Instant::now();
    let clients: Vec<_> = (0..shards)
        .map(|c| {
            let rt = Arc::clone(&rt);
            let slice: Vec<Query> = queries.iter().skip(c).step_by(shards).cloned().collect();
            std::thread::spawn(move || {
                for q in slice {
                    rt.query(q).expect("stream queries are answerable");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let total = start.elapsed().as_secs_f64();
    let stats = rt.stats();
    rt.shutdown();
    LayoutResult {
        shards,
        threads_per_shard,
        qps: queries.len() as f64 / total.max(1e-12),
        total_secs: total,
        stats,
    }
}

struct OverloadResult {
    offered: usize,
    admitted: usize,
    rejected: usize,
    high_water: usize,
    qps_admitted: f64,
}

/// Open loop: fire the whole stream at a tiny queue without waiting.
fn run_overload(w: &Workload, queries: &[Query]) -> OverloadResult {
    let rt = Arc::new(ShardedRuntime::from_model(
        Arc::clone(w.session.model()),
        RuntimeConfig::new(THREAD_BUDGET, 1).with_queue_depth(OVERLOAD_DEPTH),
    ));
    rt.query(queries[0].clone()).expect("warmup");
    let start = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for q in queries {
        match rt.try_submit(q.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    let admitted = tickets.len();
    for t in tickets {
        t.wait().expect("admitted queries are answerable");
    }
    let total = start.elapsed().as_secs_f64();
    let high_water = rt.stats().queue_high_water;
    assert!(
        high_water <= OVERLOAD_DEPTH,
        "queue exceeded its bound: {high_water} > {OVERLOAD_DEPTH}"
    );
    rt.shutdown();
    OverloadResult {
        offered: queries.len(),
        admitted,
        rejected,
        high_water,
        qps_admitted: admitted as f64 / total.max(1e-12),
    }
}

fn layouts_for(budget: usize) -> Vec<(usize, usize)> {
    let mut out = vec![(1, budget)];
    if budget >= 4 {
        out.push((2, budget / 2));
    }
    out.push((budget, 1));
    out
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# sharded serving: layouts of a {THREAD_BUDGET}-thread budget ({host_cores} host cores)"
    );
    evprop_bench::header(&[
        "workload", "layout", "qps", "p50_us", "p99_us", "queue_hw", "arenas",
    ]);

    let mut json_workloads = Vec::new();
    for w in workloads() {
        let queries = query_stream(&w, 0xC0FFEE);
        let (pool_qps, pool_secs) = run_single_pool(&w, &queries);
        println!("{},single_pool_1x{THREAD_BUDGET},{pool_qps:.0},,,,", w.name);

        let mut json_layouts = Vec::new();
        for (shards, threads_per_shard) in layouts_for(THREAD_BUDGET) {
            let r = run_layout(&w, &queries, shards, threads_per_shard);
            let arenas: u64 = r.stats.shards.iter().map(|s| s.arenas_allocated).sum();
            println!(
                "{},sharded_{}x{},{:.0},{:.0},{:.0},{},{}",
                w.name,
                r.shards,
                r.threads_per_shard,
                r.qps,
                r.stats.p50.as_micros(),
                r.stats.p99.as_micros(),
                r.stats.queue_high_water,
                arenas
            );
            json_layouts.push(format!(
                concat!(
                    "        {{\"shards\": {}, \"threads_per_shard\": {}, ",
                    "\"qps\": {:.1}, \"total_secs\": {:.4}, ",
                    "\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, ",
                    "\"queue_high_water\": {}, \"arenas_allocated\": {}}}"
                ),
                r.shards,
                r.threads_per_shard,
                r.qps,
                r.total_secs,
                r.stats.p50.as_micros(),
                r.stats.p95.as_micros(),
                r.stats.p99.as_micros(),
                r.stats.queue_high_water,
                arenas
            ));
        }

        let o = run_overload(&w, &queries);
        println!(
            "{},overload_{}x1_depth{},{:.0},,,{},",
            w.name, THREAD_BUDGET, OVERLOAD_DEPTH, o.qps_admitted, o.high_water
        );
        json_workloads.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"queries\": {},\n",
                "     \"single_pool\": {{\"threads\": {}, \"qps\": {:.1}, \"total_secs\": {:.4}}},\n",
                "     \"layouts\": [\n{}\n     ],\n",
                "     \"overload\": {{\"shards\": {}, \"queue_depth\": {}, \"offered\": {}, ",
                "\"admitted\": {}, \"rejected\": {}, \"queue_high_water\": {}, ",
                "\"qps_admitted\": {:.1}, \"bounded\": {}}}}}"
            ),
            w.name,
            queries.len(),
            THREAD_BUDGET,
            pool_qps,
            pool_secs,
            json_layouts.join(",\n"),
            THREAD_BUDGET,
            OVERLOAD_DEPTH,
            o.offered,
            o.admitted,
            o.rejected,
            o.high_water,
            o.qps_admitted,
            o.high_water <= OVERLOAD_DEPTH
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"serve_sharded\",\n",
            "  \"thread_budget\": {},\n  \"host_cores\": {},\n",
            "  \"workloads\": [\n{}\n  ]\n}}\n"
        ),
        THREAD_BUDGET,
        host_cores,
        json_workloads.join(",\n")
    );
    std::fs::write("BENCH_serve_sharded.json", &json).expect("write BENCH_serve_sharded.json");
    println!("# wrote BENCH_serve_sharded.json");
}
