//! Figure 8: load balance across threads and the computation-time ratio
//! of the collaborative scheduler on Junction tree 1.
//!
//! Prints (a) per-core busy time (normalized to the busiest core) and
//! (b) per-core computation-time ratio, from the simulator; then repeats
//! the measurement with *real threads* on the memory-friendly JT1 stand-in
//! so the numbers can be checked on any host.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin fig8
//! ```

use evprop_bench::header;
use evprop_core::{CollaborativeEngine, Engine};
use evprop_potential::EvidenceSet;
use evprop_sched::SchedulerConfig;
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::materialize;
use evprop_workloads::presets::{jt1, jt1_small};

fn main() {
    let model = CostModel::default();
    let g = TaskGraph::from_shape(&jt1());

    println!("# Fig. 8(a) — per-core computation time, JT1, collaborative (normalized to max)");
    header(&["threads", "per_core_busy"]);
    for p in [2usize, 4, 8] {
        let r = simulate(&g, Policy::collaborative(), p, &model);
        let max = r.cores.iter().map(|c| c.busy).max().unwrap_or(1) as f64;
        let cols: Vec<String> = r
            .cores
            .iter()
            .map(|c| format!("{:.3}", c.busy as f64 / max))
            .collect();
        println!("{p},{}", cols.join(","));
    }

    println!();
    println!("# Fig. 8(b) — computation-time ratio per core (paper: >= 99.1%)");
    header(&["threads", "min_ratio", "mean_ratio"]);
    for p in [2usize, 4, 8] {
        let r = simulate(&g, Policy::collaborative(), p, &model);
        let ratios: Vec<f64> = r
            .cores
            .iter()
            .map(|c| c.busy as f64 / (c.busy + c.overhead).max(1) as f64)
            .collect();
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("{p},{min:.4},{mean:.4}");
    }

    println!();
    println!("# real threads on this host (JT1-small stand-in, width 12)");
    header(&["threads", "wall", "imbalance", "min_compute_ratio"]);
    let jt = materialize(&jt1_small(), 1);
    for p in [1usize, 2, 4, 8] {
        let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(p));
        engine
            .propagate(&jt, &EvidenceSet::new())
            .expect("propagation succeeds");
        let report = engine.last_report().expect("a run just completed");
        let min_ratio = report
            .threads
            .iter()
            .map(|t| t.compute_ratio())
            .fold(f64::INFINITY, f64::min);
        println!(
            "{p},{:?},{:.3},{:.4}",
            report.wall,
            report.imbalance(),
            min_ratio
        );
    }
    println!("# note: single-core hosts timeslice the threads; the simulator rows above");
    println!("# carry the cross-core comparison.");
}
