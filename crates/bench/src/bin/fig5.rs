//! Figure 5: speedup of evidence propagation due to junction-tree
//! rerooting, on the Fig. 4 template trees, with task partitioning
//! disabled — `Sp = t_original / t_rerooted` versus thread count.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin fig5
//! ```

use evprop_bench::{fmt_series, header, CORE_GRID};
use evprop_jtree::select_root;
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::fig4_template;

fn main() {
    println!("# Fig. 5 — rerooting speedup (512 cliques, w=15, binary, partitioning off)");
    println!("# paper reference: Sp -> ~1.9 at 8 threads once P > b; rising later for larger b");
    header(&["branches_b_plus_1", "P=1", "P=2", "P=4", "P=8"]);
    let model = CostModel::default();
    for b in [1usize, 2, 4, 8] {
        let original = fig4_template(b, 512, 15);
        let mut rerooted = original.clone();
        let choice = select_root(&rerooted);
        rerooted
            .reroot(choice.root)
            .expect("selected root is valid");

        let g_orig = TaskGraph::from_shape(&original);
        let g_new = TaskGraph::from_shape(&rerooted);
        let series: Vec<f64> = CORE_GRID
            .iter()
            .map(|&p| {
                let t_orig =
                    simulate(&g_orig, Policy::collaborative_unpartitioned(), p, &model).makespan;
                let t_new =
                    simulate(&g_new, Policy::collaborative_unpartitioned(), p, &model).makespan;
                t_orig as f64 / t_new as f64
            })
            .collect();
        println!("{},{}", b + 1, fmt_series(&series));
    }
}
