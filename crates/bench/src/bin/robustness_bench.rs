//! Robustness benchmark (extension): what does the fault-tolerance
//! machinery — per-query deadlines, cooperative cancellation, shard
//! supervision — cost when it is *not* being used, and how does the
//! runtime behave when it is?
//!
//! Four legs, all on the same host and thread budget:
//!
//! * **steady no-deadline (A/A)** — closed-loop serving with no
//!   deadlines, run as *two* interleaved identical legs: the fault
//!   machinery idles at one `None` check per dequeue and zero
//!   cancellation loads, so the best-of-round delta between the twin
//!   legs bounds the unused-path overhead from above by measurement
//!   noise (target: within 2%);
//! * **deadline armed** — the same stream with a far-future
//!   `deadline_ms` on every query: every job carries a deadline token
//!   and every task boundary pays an `Instant::now()` (informational —
//!   the paid-when-used cost, amortized poorly on tiny-kernel models);
//! * **recovery** — kill a pool worker on a warm shard and measure
//!   wall time from injection to the next successfully answered query
//!   on that shard (supervision respawn latency);
//! * **shed rate** — a stream of already-expired deadlines: every
//!   query must shed at dequeue (shed rate 1.0) at a rate far above
//!   the propagation throughput, since shedding never touches a
//!   worker.
//!
//! Prints a CSV-ish summary and writes `BENCH_robustness.json`.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin robustness_bench
//! ```

use evprop_bayesnet::{networks, BayesianNetwork};
use evprop_core::{InferenceSession, Query};
use evprop_potential::{EvidenceSet, VarId};
use evprop_serve::{RuntimeConfig, ServeError, ShardedRuntime};
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shards (× 1 worker thread each) for every leg.
const SHARDS: usize = 2;
/// Queries per timed round.
const QUERIES: usize = 400;
/// Timed rounds per throughput leg; the best round is reported. More
/// rounds than the other serving benches because the A/B delta under
/// measurement (deadline plumbing) is small against scheduler jitter.
const ROUNDS: usize = 9;
/// Worker kills in the recovery leg (averaged).
const KILLS: usize = 20;

fn query_stream(net: &BayesianNetwork, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars = net.num_vars() as u32;
    (0..n)
        .map(|_| {
            let target = rng.gen_range(0..vars);
            let mut obs = target;
            while obs == target {
                obs = rng.gen_range(0..vars);
            }
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(obs), 0);
            Query::new(VarId(target), ev)
        })
        .collect()
}

/// Nearest-rank p99 of an unsorted sample set.
fn p99(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// One timed closed-loop round, every query stamped with `deadline`.
fn drive_round(
    rt: &Arc<ShardedRuntime>,
    queries: &[Query],
    deadline: Option<Duration>,
) -> (f64, Vec<Duration>, usize) {
    let errors = AtomicUsize::new(0);
    let start = Instant::now();
    let lat_slices: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|c| {
                let rt = Arc::clone(rt);
                let slice: Vec<Query> = queries.iter().skip(c).step_by(SHARDS).cloned().collect();
                let errors = &errors;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(slice.len());
                    for q in slice {
                        let t0 = Instant::now();
                        match rt
                            .submit_with_deadline(q, None, deadline)
                            .and_then(|t| t.wait())
                        {
                            Ok(_) => lats.push(t0.elapsed()),
                            Err(e) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                // The shed leg errors by design; don't
                                // flood stderr with expected refusals.
                                if !matches!(e, ServeError::DeadlineExceeded { .. }) {
                                    eprintln!("query failed: {e}");
                                }
                            }
                        }
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total = start.elapsed().as_secs_f64();
    let lats: Vec<Duration> = lat_slices.into_iter().flatten().collect();
    let errors = errors.load(Ordering::Relaxed);
    (
        (queries.len() - errors) as f64 / total.max(1e-12),
        lats,
        errors,
    )
}

fn main() {
    // The recovery leg kills workers on purpose; keep their panic
    // backtraces out of the report while letting real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.contains("injected worker death")) {
            return;
        }
        default_hook(info);
    }));

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let asia = networks::asia();
    let stream = query_stream(&asia, QUERIES, 0xFA117);
    println!(
        "# robustness serving: {SHARDS}x1 shards, {QUERIES} queries/round ({host_cores} host cores)"
    );
    evprop_bench::header(&["leg", "qps", "p99_us", "errors"]);

    // Legs 1+2, rounds interleaved A/A'/B on one runtime. A and A' run
    // the identical no-deadline path — their best-of-round delta is the
    // measurement noise floor, and since the unused fault machinery is
    // one `None` check per dequeue, that delta bounds its overhead from
    // above. B arms a far-future deadline on every query (token
    // carried, one Instant::now() per task boundary). One runtime and
    // alternating rounds keep arena warmth and host drift common to
    // all legs.
    let rt = Arc::new(ShardedRuntime::new(
        InferenceSession::from_network(&asia).unwrap(),
        RuntimeConfig::new(SHARDS, 1),
    ));
    let far = Some(Duration::from_secs(3600));
    for q in stream.iter().take(SHARDS * 2) {
        rt.submit(q.clone()).unwrap().wait().unwrap();
    }
    let (mut base_qps, mut twin_qps, mut armed_qps) = (0.0f64, 0.0f64, 0.0f64);
    let (mut base_lats, mut armed_lats) = (Vec::new(), Vec::new());
    for _ in 0..ROUNDS {
        let (qps, mut lats, errors) = drive_round(&rt, &stream, None);
        assert_eq!(errors, 0, "no-deadline leg must not error");
        base_qps = base_qps.max(qps);
        base_lats.append(&mut lats);
        let (qps, _, errors) = drive_round(&rt, &stream, None);
        assert_eq!(errors, 0, "no-deadline twin leg must not error");
        twin_qps = twin_qps.max(qps);
        let (qps, mut lats, errors) = drive_round(&rt, &stream, far);
        assert_eq!(errors, 0, "far-deadline leg must not error");
        armed_qps = armed_qps.max(qps);
        armed_lats.append(&mut lats);
    }
    let base_p99 = p99(&mut base_lats);
    let armed_p99 = p99(&mut armed_lats);
    // Unused-path overhead, bounded above by A/A' noise; the absolute
    // value keeps a lucky-twin round from reporting a negative cost.
    let unused_overhead = (1.0 - twin_qps / base_qps).abs();
    let armed_overhead = 1.0 - armed_qps / base_qps.max(twin_qps);
    println!(
        "steady_no_deadline,{base_qps:.0},{},0",
        base_p99.as_micros()
    );
    println!("steady_no_deadline_twin,{twin_qps:.0},,0");
    println!("deadline_armed,{armed_qps:.0},{},0", armed_p99.as_micros());

    // Leg 3: supervision recovery. Kill one worker on a warm shard,
    // then time how long until a query on that runtime completes
    // successfully again. The first query after the kill may fail with
    // a worker-panic error — that is the advertised contract (fail the
    // in-flight job, never the shard).
    let mut recovery = Vec::with_capacity(KILLS);
    let mut kill_errors = 0usize;
    for k in 0..KILLS {
        rt.inject_worker_deaths(k % SHARDS, 1);
        let t0 = Instant::now();
        loop {
            match rt
                .submit(stream[k % QUERIES].clone())
                .and_then(|t| t.wait())
            {
                Ok(_) => break,
                Err(ServeError::Engine(_)) => kill_errors += 1,
                Err(e) => panic!("unexpected error during recovery: {e}"),
            }
        }
        recovery.push(t0.elapsed());
    }
    let recovery_mean =
        recovery.iter().sum::<Duration>().as_secs_f64() * 1e3 / recovery.len() as f64;
    let recovery_max = recovery.iter().max().unwrap().as_secs_f64() * 1e3;
    let faults = rt.stats().faults.expect("kills moved the fault counters");
    println!("recovery,,{:.0},{kill_errors}", recovery_max * 1e3);

    // Leg 4: a fully-expired stream must shed every query at dequeue,
    // far faster than propagation since no worker ever runs.
    let shed_before = faults.shed;
    let t0 = Instant::now();
    let (_, _, shed_errors) = drive_round(&rt, &stream, Some(Duration::ZERO));
    let shed_wall = t0.elapsed().as_secs_f64();
    let shed_qps = QUERIES as f64 / shed_wall.max(1e-12);
    let shed_now = rt.stats().faults.expect("sheds moved the counters").shed;
    let shed_rate = (shed_now - shed_before) as f64 / QUERIES as f64;
    assert_eq!(
        shed_errors, QUERIES,
        "every expired query must resolve as an error"
    );
    let restarts = rt.stats().faults.expect("counters moved").restarts;
    rt.shutdown();
    println!("shed_expired,{shed_qps:.0},,{shed_errors}");

    println!(
        "# unused-path overhead (A/A' noise bound): {:.2}% (target ≤ 2%); armed deadline cost {:.2}% (informational)",
        unused_overhead * 100.0,
        armed_overhead * 100.0
    );
    println!(
        "# recovery: {KILLS} kills, mean {recovery_mean:.2}ms, max {recovery_max:.2}ms, {restarts} restarts, shed rate {shed_rate:.2}"
    );

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"robustness\",\n",
            "  \"host_cores\": {},\n  \"shards\": {},\n  \"queries_per_round\": {},\n",
            "  \"rounds\": {},\n",
            "  \"steady_no_deadline\": {{\"qps\": {:.1}, \"p99_us\": {}, \"twin_qps\": {:.1}, ",
            "\"unused_overhead\": {:.4}, \"within_2pct\": {}}},\n",
            "  \"deadline_armed\": {{\"qps\": {:.1}, \"p99_us\": {}, ",
            "\"overhead_vs_steady\": {:.4}}},\n",
            "  \"recovery\": {{\"kills\": {}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}, ",
            "\"failed_in_flight\": {}, \"restarts\": {}}},\n",
            "  \"shed_expired\": {{\"qps\": {:.1}, \"shed_rate\": {:.3}}}\n}}\n"
        ),
        host_cores,
        SHARDS,
        QUERIES,
        ROUNDS,
        base_qps,
        base_p99.as_micros(),
        twin_qps,
        unused_overhead,
        unused_overhead <= 0.02,
        armed_qps,
        armed_p99.as_micros(),
        armed_overhead,
        KILLS,
        recovery_mean,
        recovery_max,
        kill_errors,
        restarts,
        shed_qps,
        shed_rate,
    );
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    println!("# wrote BENCH_robustness.json");
}
