//! Batch-inference ablation (extension): the paper's small-table outlier
//! (`w=10, r=2`, Fig. 9) is starved of parallelism — can processing a
//! *stream* of evidence cases as one replicated-graph batch recover it?
//!
//! Finding: **no, not by itself.** The binding constraint is the
//! serialized global-list dispatch lock, which the batch copies share, so
//! extra concurrent work just queues on the same lock. Under a lock-free
//! dispatch design (λ = 0) the identical batch schedule is near-linear —
//! isolating exactly the redesign the paper's §8 calls for in the
//! many-core era.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin batch
//! ```

use evprop_bench::header;
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::{random_tree, TreeParams};

fn throughput_rows(g: &TaskGraph, model: &CostModel, label: &str) {
    let single_serial = simulate(g, Policy::collaborative(), 1, model).makespan as f64;
    for batch in [1usize, 2, 4, 8, 16] {
        let replicated = g.replicate(batch);
        let t = simulate(&replicated, Policy::collaborative(), 8, model).makespan as f64;
        println!("{label},{batch},{:.2}", batch as f64 * single_serial / t);
    }
}

fn main() {
    println!("# batch-throughput ablation on the w=10, r=2 tree (512 cliques, 8 cores)");
    println!("# throughput speedup = B x t(single case, 1 core) / t(batch of B, 8 cores)");
    header(&[
        "dispatch_lock",
        "batch_size",
        "throughput_speedup_at_8_cores",
    ]);
    let g = TaskGraph::from_shape(&random_tree(
        &TreeParams::new(512, 10, 2, 4).with_seed(0xF9),
    ));

    // default scheduler: dispatches serialize through the GL lock
    throughput_rows(&g, &CostModel::default(), "locked");

    // hypothetical lock-free dispatch (λ = 0): the §8 redesign target
    let free = CostModel {
        lambda_lock: 0.0,
        ..CostModel::default()
    };
    throughput_rows(&g, &free, "lock-free");

    println!("# takeaway: batching adds abundant independent work, yet the locked design");
    println!("# stays pinned — the global-list lock, not a lack of parallelism, is the");
    println!("# small-table bottleneck. Removing it (bottom rows) lets the same batch");
    println!("# saturate all 8 cores, quantifying the payoff of the paper's proposed");
    println!("# scheduler redesign.");
}
