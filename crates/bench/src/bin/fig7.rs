//! Figure 7: scalability of the three parallel methods — OpenMP-style,
//! data-parallel, and the proposed collaborative scheduler — on Junction
//! trees 1–3.
//!
//! Pass `--stealing` to add the work-stealing ablation column and
//! `--delta-sweep` to print the partition-threshold sensitivity study.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin fig7 [-- --stealing] [-- --delta-sweep]
//! ```

use evprop_bench::{fmt_series, header, speedup_series};
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::presets::{jt1, jt2, jt3};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stealing = args.iter().any(|a| a == "--stealing");
    let delta_sweep = args.iter().any(|a| a == "--delta-sweep");
    let model = CostModel::default();

    println!("# Fig. 7 — speedup vs cores for the three methods");
    println!("# paper reference at 8 cores: proposed ~7.4 (Xeon) / 7.1 (Opteron);");
    println!("#   ~2.1x over OpenMP-based, ~1.8x over data-parallel");
    header(&["tree", "method", "P=1", "P=2", "P=4", "P=8"]);
    for (name, shape) in [("JT1", jt1()), ("JT2", jt2()), ("JT3", jt3())] {
        let g = TaskGraph::from_shape(&shape);
        let rows: Vec<(&str, Policy)> = {
            let mut v = vec![
                ("openmp", Policy::OpenMpStyle),
                ("data-parallel", Policy::DataParallel),
                ("collaborative", Policy::collaborative()),
            ];
            if stealing {
                v.push((
                    "collab+steal",
                    Policy::Collaborative {
                        delta: Some(CostModel::DEFAULT_DELTA),
                        work_stealing: true,
                    },
                ));
            }
            v
        };
        for (method, policy) in rows {
            let series = speedup_series(&g, policy, &model);
            println!("{name},{method},{}", fmt_series(&series));
        }
    }

    if delta_sweep {
        println!();
        println!("# ablation — partition threshold δ sensitivity (JT1, 8 cores)");
        header(&["delta_entries", "speedup_at_8"]);
        let g = TaskGraph::from_shape(&jt1());
        let base = simulate(&g, Policy::collaborative_unpartitioned(), 1, &model).makespan as f64;
        for delta in [4096u64, 16_384, 65_536, 262_144, 1_048_576] {
            let p = Policy::Collaborative {
                delta: Some(delta),
                work_stealing: false,
            };
            let t = simulate(&g, p, 8, &model).makespan as f64;
            println!("{delta},{:.2}", base / t);
        }
        let t = simulate(&g, Policy::collaborative_unpartitioned(), 8, &model).makespan as f64;
        println!("disabled,{:.2}", base / t);
    }
}
