//! Model-registry serving benchmark (extension): what does routing
//! every query through the [`ModelRegistry`] cost, and does a hot swap
//! disturb in-flight traffic?
//!
//! Four legs, all on the same host and thread budget:
//!
//! * **baseline** — a plain [`ShardedRuntime::from_model`] runtime (no
//!   registry) serving one model closed-loop: the pre-registry
//!   throughput the registry path is held against;
//! * **registry steady** — the same model behind
//!   [`ShardedRuntime::with_registry`] under its default alias, so the
//!   only delta is per-submission alias resolution plus the handle
//!   each job carries (target: within 3% of baseline);
//! * **mixed interleave** — two models alternating query-by-query
//!   through one runtime, exercising the dispatcher's arena switching;
//! * **swap under load** — clients hammer a versioned alias while a
//!   swapper thread flips it between two versions the whole time;
//!   every query must succeed (zero errors) and tail latency must stay
//!   within 2× of the steady-state leg.
//!
//! Prints a CSV-ish summary and writes `BENCH_registry.json`. Each
//! throughput leg runs [`ROUNDS`] times and reports the best round, so
//! the steady/baseline ratio compares peaks rather than scheduler
//! noise.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin registry_bench
//! ```

use evprop_bayesnet::{networks, BayesianNetwork};
use evprop_core::{InferenceSession, Query};
use evprop_potential::{EvidenceSet, VarId};
use evprop_registry::{ModelRegistry, NumericNames};
use evprop_serve::{RuntimeConfig, ShardedRuntime};
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shards (× 1 worker thread each) for every leg.
const SHARDS: usize = 2;
/// Queries per timed round.
const QUERIES: usize = 400;
/// Timed rounds per throughput leg; the best round is reported.
const ROUNDS: usize = 5;
/// Alias flips during the swap-under-load leg.
const SWAPS: usize = 200;

fn query_stream(net: &BayesianNetwork, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars = net.num_vars() as u32;
    (0..n)
        .map(|_| {
            let target = rng.gen_range(0..vars);
            let mut obs = target;
            while obs == target {
                obs = rng.gen_range(0..vars);
            }
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(obs), 0);
            Query::new(VarId(target), ev)
        })
        .collect()
}

fn registry_with(models: &[(&str, &BayesianNetwork)]) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for (name, net) in models {
        let session = InferenceSession::from_network(net).unwrap();
        registry
            .install(
                name,
                Arc::clone(session.model()),
                Arc::new(NumericNames::of(net)),
            )
            .unwrap();
    }
    registry
}

/// Nearest-rank p99 of an unsorted sample set.
fn p99(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Best-of-[`ROUNDS`] queries/sec plus the pooled client-side p99
/// across all rounds; warmup happens before round 1. Panics if any
/// query errors (only the swap leg tolerates — and counts — errors,
/// and none are expected there either).
fn throughput(rt: &Arc<ShardedRuntime>, queries: &[(Option<&str>, Query)]) -> (f64, Duration) {
    for (model, q) in queries.iter().take(SHARDS * 2) {
        rt.submit_model(q.clone(), *model).unwrap().wait().unwrap();
    }
    let mut best = 0.0f64;
    let mut pooled = Vec::with_capacity(ROUNDS * queries.len());
    for _ in 0..ROUNDS {
        let (qps, mut lats, errors) = drive_round(rt, queries);
        assert_eq!(errors, 0, "steady legs must not error");
        best = best.max(qps);
        pooled.append(&mut lats);
    }
    (best, p99(&mut pooled))
}

/// One timed closed-loop round.
fn drive_round(
    rt: &Arc<ShardedRuntime>,
    queries: &[(Option<&str>, Query)],
) -> (f64, Vec<Duration>, usize) {
    use std::sync::atomic::AtomicUsize;
    let errors = AtomicUsize::new(0);
    let start = Instant::now();
    let lat_slices: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|c| {
                let rt = Arc::clone(rt);
                let slice: Vec<(Option<&str>, Query)> =
                    queries.iter().skip(c).step_by(SHARDS).cloned().collect();
                let errors = &errors;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(slice.len());
                    for (model, q) in slice {
                        let t0 = Instant::now();
                        match rt.submit_model(q, model).and_then(|t| t.wait()) {
                            Ok(_) => lats.push(t0.elapsed()),
                            Err(e) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                eprintln!("query failed: {e}");
                            }
                        }
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total = start.elapsed().as_secs_f64();
    let lats: Vec<Duration> = lat_slices.into_iter().flatten().collect();
    let errors = errors.load(Ordering::Relaxed);
    (
        (queries.len() - errors) as f64 / total.max(1e-12),
        lats,
        errors,
    )
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let asia = networks::asia();
    let student = networks::student();
    let stream = query_stream(&asia, QUERIES, 0xBEEF);
    println!(
        "# registry serving: {SHARDS}x1 shards, {QUERIES} queries/round ({host_cores} host cores)"
    );
    evprop_bench::header(&["leg", "qps", "p99_us", "errors"]);

    // Legs 1+2, rounds interleaved A/B: the pre-registry baseline and
    // the same model behind the registry's default alias. Alternating
    // rounds on one clock means host drift (frequency scaling, noisy
    // neighbors) lands on both runtimes instead of biasing whichever
    // leg ran second; best-of-rounds then compares peak against peak.
    let rt_base = Arc::new(ShardedRuntime::new(
        InferenceSession::from_network(&asia).unwrap(),
        RuntimeConfig::new(SHARDS, 1),
    ));
    let registry = registry_with(&[("asia", &asia)]);
    let rt_reg = Arc::new(
        ShardedRuntime::with_registry(registry, "asia", RuntimeConfig::new(SHARDS, 1)).unwrap(),
    );
    let untagged: Vec<(Option<&str>, Query)> = stream.iter().map(|q| (None, q.clone())).collect();
    for rt in [&rt_base, &rt_reg] {
        for (model, q) in untagged.iter().take(SHARDS * 2) {
            rt.submit_model(q.clone(), *model).unwrap().wait().unwrap();
        }
    }
    let (mut baseline_qps, mut steady_qps) = (0.0f64, 0.0f64);
    let mut baseline_lats = Vec::new();
    let mut steady_lats = Vec::new();
    for _ in 0..ROUNDS {
        let (qps, mut lats, errors) = drive_round(&rt_base, &untagged);
        assert_eq!(errors, 0, "baseline leg must not error");
        baseline_qps = baseline_qps.max(qps);
        baseline_lats.append(&mut lats);
        let (qps, mut lats, errors) = drive_round(&rt_reg, &untagged);
        assert_eq!(errors, 0, "steady leg must not error");
        steady_qps = steady_qps.max(qps);
        steady_lats.append(&mut lats);
    }
    rt_base.shutdown();
    rt_reg.shutdown();
    let baseline_p99 = p99(&mut baseline_lats);
    let steady_p99 = p99(&mut steady_lats);
    let overhead = 1.0 - steady_qps / baseline_qps;
    println!(
        "baseline_no_registry,{baseline_qps:.0},{},0",
        baseline_p99.as_micros()
    );
    println!(
        "registry_steady,{steady_qps:.0},{},0",
        steady_p99.as_micros()
    );

    // Leg 3: two models interleaved query-by-query.
    let registry = registry_with(&[("asia", &asia), ("student", &student)]);
    let rt = Arc::new(
        ShardedRuntime::with_registry(registry, "asia", RuntimeConfig::new(SHARDS, 1)).unwrap(),
    );
    let student_stream = query_stream(&student, QUERIES, 0xBEEF);
    let mixed: Vec<(Option<&str>, Query)> = stream
        .iter()
        .zip(&student_stream)
        .flat_map(|(a, s)| [(Some("asia"), a.clone()), (Some("student"), s.clone())])
        .collect();
    let (mixed_qps, mixed_p99) = throughput(&rt, &mixed);
    rt.shutdown();
    println!(
        "mixed_two_models,{mixed_qps:.0},{},0",
        mixed_p99.as_micros()
    );

    // Leg 4: hammer alias "m" while a swapper thread flips it between
    // two installed versions of the same network (constant work, so
    // the p99 delta isolates the swap disturbance).
    let registry = registry_with(&[("m", &asia)]);
    {
        let session = InferenceSession::from_network(&asia).unwrap();
        registry
            .install(
                "m",
                Arc::clone(session.model()),
                Arc::new(NumericNames::of(&asia)),
            )
            .unwrap(); // m@v2
    }
    let rt = Arc::new(
        ShardedRuntime::with_registry(Arc::clone(&registry), "m", RuntimeConfig::new(SHARDS, 1))
            .unwrap(),
    );
    let aliased: Vec<(Option<&str>, Query)> =
        stream.iter().map(|q| (Some("m"), q.clone())).collect();
    for (model, q) in aliased.iter().take(SHARDS * 2) {
        rt.submit_model(q.clone(), *model).unwrap().wait().unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut flips = 0usize;
            while flips < SWAPS && !stop.load(Ordering::Relaxed) {
                registry.swap("m", 1 + (flips % 2) as u32).expect("swap");
                flips += 1;
                // Spread the flips across the whole leg instead of
                // burning them in the first scheduler quantum.
                std::thread::sleep(Duration::from_micros(50));
            }
            flips
        })
    };
    // Closed loop like every other leg, so the p99 comparison against
    // the steady leg isolates swap disturbance rather than queue depth.
    let mut swap_errors = 0usize;
    let mut answered = 0usize;
    let mut best_swap_qps = 0.0f64;
    let mut swap_lats = Vec::with_capacity(ROUNDS * aliased.len());
    for _ in 0..ROUNDS {
        let (qps, mut lats, errors) = drive_round(&rt, &aliased);
        best_swap_qps = best_swap_qps.max(qps);
        answered += lats.len();
        swap_errors += errors;
        swap_lats.append(&mut lats);
    }
    let swap_qps = best_swap_qps;
    stop.store(true, Ordering::Relaxed);
    let flips = swapper.join().unwrap();
    let swap_p99 = p99(&mut swap_lats);
    let served: u64 = rt
        .registry()
        .unwrap()
        .list()
        .iter()
        .flat_map(|m| m.versions.iter())
        .map(|v| v.served)
        .sum();
    rt.shutdown();
    println!(
        "swap_under_load,{swap_qps:.0},{},{swap_errors}",
        swap_p99.as_micros()
    );

    let p99_ratio = swap_p99.as_secs_f64() / steady_p99.as_secs_f64().max(1e-12);
    println!(
        "# registry overhead vs baseline: {:.2}% (target ≤ 3%)",
        overhead * 100.0
    );
    println!("# swap-under-load: {flips} flips, {swap_errors} errors, p99 ratio {p99_ratio:.2} (target ≤ 2)");

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"registry\",\n",
            "  \"host_cores\": {},\n  \"shards\": {},\n  \"queries_per_round\": {},\n",
            "  \"rounds\": {},\n",
            "  \"baseline_no_registry\": {{\"qps\": {:.1}, \"p99_us\": {}}},\n",
            "  \"registry_steady\": {{\"qps\": {:.1}, \"p99_us\": {}, ",
            "\"overhead_vs_baseline\": {:.4}, \"within_3pct\": {}}},\n",
            "  \"mixed_two_models\": {{\"qps\": {:.1}, \"p99_us\": {}}},\n",
            "  \"swap_under_load\": {{\"qps\": {:.1}, \"p99_us\": {}, \"alias_flips\": {}, ",
            "\"queries\": {}, \"errors\": {}, \"served_total\": {}, ",
            "\"p99_ratio_vs_steady\": {:.3}, \"p99_within_2x\": {}}}\n}}\n"
        ),
        host_cores,
        SHARDS,
        QUERIES,
        ROUNDS,
        baseline_qps,
        baseline_p99.as_micros(),
        steady_qps,
        steady_p99.as_micros(),
        overhead,
        overhead <= 0.03,
        mixed_qps,
        mixed_p99.as_micros(),
        swap_qps,
        swap_p99.as_micros(),
        flips,
        answered + swap_errors,
        swap_errors,
        served,
        p99_ratio,
        p99_ratio <= 2.0
    );
    std::fs::write("BENCH_registry.json", &json).expect("write BENCH_registry.json");
    println!("# wrote BENCH_registry.json");
}
