//! Figure 9: speedup of the proposed method under parameter sweeps —
//! number of cliques N, clique width w, states r, clique degree k.
//!
//! Pass `--evidence-sweep` to also print the evidence-count study (the
//! paper claims performance independent of the number of evidence
//! cliques) — measured with real threads since evidence only affects
//! table contents, not the task graph.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin fig9 [-- --evidence-sweep]
//! ```

use evprop_bench::{fmt_series, header, speedup_series};
use evprop_core::{CollaborativeEngine, Engine};
use evprop_potential::{EvidenceSet, VarId};
use evprop_simcore::{CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::materialize;
use evprop_workloads::presets::{sweep_point, SWEEP_K, SWEEP_N, SWEEP_R, SWEEP_W};
use std::time::Instant;

fn row(label: &str, n: usize, w: usize, r: usize, k: usize, model: &CostModel) {
    let g = TaskGraph::from_shape(&sweep_point(n, w, r, k));
    let series = speedup_series(&g, Policy::collaborative(), model);
    println!("{label},{}", fmt_series(&series));
}

fn main() {
    let evidence_sweep = std::env::args().any(|a| a == "--evidence-sweep");
    let model = CostModel::default();
    println!("# Fig. 9 — collaborative-scheduler speedups under parameter sweeps");
    println!("# paper reference: all curves near-linear (>7 at 8 cores) except w=10, r=2");

    println!("# (a) number of cliques N (w=20, r=2, k=4)");
    header(&["N", "P=1", "P=2", "P=4", "P=8"]);
    for n in SWEEP_N {
        row(&n.to_string(), n, 20, 2, 4, &model);
    }

    println!("# (b) clique width w (N=512, r=2, k=4)");
    header(&["w", "P=1", "P=2", "P=4", "P=8"]);
    for w in SWEEP_W {
        row(&w.to_string(), 512, w, 2, 4, &model);
    }

    println!("# (c) states r (N=512, w=10, k=4) — includes the small-table outlier w=10,r=2");
    header(&["r", "P=1", "P=2", "P=4", "P=8"]);
    for r in SWEEP_R {
        row(&r.to_string(), 512, 10, r, 4, &model);
    }

    println!("# (d) clique degree k (N=512, w=20, r=2)");
    header(&["k", "P=1", "P=2", "P=4", "P=8"]);
    for k in SWEEP_K {
        row(&k.to_string(), 512, 20, 2, k, &model);
    }

    if evidence_sweep {
        println!();
        println!("# evidence-count study (real threads, width-12 tree): wall time per run");
        header(&["evidence_vars", "wall"]);
        let shape = sweep_point(128, 12, 2, 4);
        let jt = materialize(&shape, 3);
        let engine = CollaborativeEngine::with_threads(4);
        // untimed warm-up: fault in the allocator arenas and code paths
        engine
            .propagate(&jt, &EvidenceSet::new())
            .expect("warm-up succeeds");
        for n_ev in [0usize, 1, 4, 16, 64] {
            let mut ev = EvidenceSet::new();
            for v in 0..n_ev as u32 {
                ev.observe(VarId(v * 7), 0); // spread across cliques
            }
            // best of 5 to shed allocator/page-fault warm-up noise
            let best = (0..5)
                .map(|_| {
                    let start = Instant::now();
                    engine.propagate(&jt, &ev).expect("propagation succeeds");
                    start.elapsed()
                })
                .min()
                .expect("five runs");
            println!("{n_ev},{best:?}");
        }
        println!(
            "# expectation per the paper: flat — evidence count does not change the task graph"
        );
    }
}
