//! Figure 6: scalability of PNL-style exact inference — execution time
//! versus processor count for Junction trees 1–3; the paper's PNL curve
//! *rises* past 4 processors.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin fig6
//! ```

use evprop_bench::header;
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::presets::{jt1, jt2, jt3};

fn main() {
    println!("# Fig. 6 — PNL-style execution time vs processors (normalized to 1 processor)");
    println!("# paper reference: time decreases to ~4 processors, then increases, all three trees");
    header(&["tree", "P=1", "P=2", "P=4", "P=6", "P=8"]);
    let model = CostModel::default();
    for (name, shape) in [("JT1", jt1()), ("JT2", jt2()), ("JT3", jt3())] {
        let g = TaskGraph::from_shape(&shape);
        let base = simulate(&g, Policy::PnlStyle, 1, &model).makespan as f64;
        let series: Vec<String> = [1usize, 2, 4, 6, 8]
            .iter()
            .map(|&p| {
                let t = simulate(&g, Policy::PnlStyle, p, &model).makespan as f64;
                format!("{:.3}", t / base)
            })
            .collect();
        println!("{name},{}", series.join(","));
    }
}
