//! Many-core projection — the paper's §8: "as more cores are integrated
//! into a single chip, some overheads such as lock contention will
//! increase dramatically. We intend to improve the design … so that the
//! scheduler can be used for a class of DAG structured computations in
//! the many-core era."
//!
//! This binary extends Fig. 7 to 64 virtual cores, quantifying exactly
//! that effect: the baseline collaborative scheduler's global-list lock
//! becomes the bottleneck, and the work-stealing variant (which the
//! paper proposes investigating) is compared side by side. A second
//! panel varies the lock critical-section length λ to show where the
//! contention wall sits.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin manycore
//! ```

use evprop_bench::header;
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::presets::jt1;
use evprop_workloads::{random_tree, TreeParams};

fn main() {
    let model = CostModel::default();
    let cores = [1usize, 2, 4, 8, 16, 32, 64];

    println!("# many-core projection — collaborative scheduler beyond 8 cores (JT1)");
    header(&["method", "P=1", "P=2", "P=4", "P=8", "P=16", "P=32", "P=64"]);
    let g = TaskGraph::from_shape(&jt1());
    for (name, policy) in [
        ("collaborative", Policy::collaborative()),
        (
            "collab+steal",
            Policy::Collaborative {
                delta: Some(CostModel::DEFAULT_DELTA),
                work_stealing: true,
            },
        ),
        (
            "collab-fine-delta",
            Policy::Collaborative {
                delta: Some(16_384),
                work_stealing: false,
            },
        ),
    ] {
        let base = simulate(&g, policy, 1, &model).makespan as f64;
        let row: Vec<String> = cores
            .iter()
            .map(|&p| {
                format!(
                    "{:.2}",
                    base / simulate(&g, policy, p, &model).makespan as f64
                )
            })
            .collect();
        println!("{name},{}", row.join(","));
    }

    println!();
    println!("# contention wall — small-table tree (w=10, r=2), sweeping the lock length λ");
    header(&["lambda_units", "P=8", "P=16", "P=32", "P=64"]);
    let small = TaskGraph::from_shape(&random_tree(
        &TreeParams::new(512, 10, 2, 4).with_seed(0xF9),
    ));
    for lambda in [0.0f64, 75.0, 300.0, 1200.0] {
        let m = CostModel {
            lambda_lock: lambda,
            ..CostModel::default()
        };
        let base = simulate(&small, Policy::collaborative(), 1, &m).makespan as f64;
        let row: Vec<String> = [8usize, 16, 32, 64]
            .iter()
            .map(|&p| {
                format!(
                    "{:.2}",
                    base / simulate(&small, Policy::collaborative(), p, &m).makespan as f64
                )
            })
            .collect();
        println!("{lambda},{}", row.join(","));
    }
    println!("# takeaway: with many cores the serialized dispatch lock caps speedup on");
    println!("# fine-grained workloads; a decentralized ready-list design (stealing) shifts");
    println!("# but does not remove the wall — matching the paper's many-core concern.");
}
