//! Incremental-session benchmark (extension): what does keeping
//! calibrated tables resident between queries buy under evidence
//! churn?
//!
//! Replays the same deterministic evidence-churn stream two ways over
//! each workload:
//!
//! * **full reprop** — the stateless serving path: every query resets
//!   the arena, absorbs the whole evidence set, and runs both
//!   propagation phases (`ShardState::posterior_on`);
//! * **incremental** — one resident [`IncrementalSession`]: evidence
//!   deltas mark dirty cliques, each query executes only the
//!   invalidated task-graph slice (with division updates along the
//!   distribute path).
//!
//! The churn fraction sweeps {1 var, 5%, 25%, 100%} of the observable
//! pool per step — from the interactive single-finding regime the
//! session is built for, up to full-evidence turnover where
//! incremental degenerates to roughly the full path. Evidence states
//! come from the network's MPE assignment, so every churn subset has
//! positive probability by construction. Each incremental answer is
//! cross-checked against the full path (max |Δ| in the report).
//!
//! Prints a CSV-ish summary and writes `BENCH_incremental.json`.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin incremental_bench
//! ```

use evprop_bayesnet::networks;
use evprop_core::{InferenceSession, SequentialEngine, ShardState};
use evprop_incremental::IncrementalSession;
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::SchedulerConfig;
use evprop_workloads::{random_tree, TreeParams};
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    name: &'static str,
    session: InferenceSession,
    steps: usize,
}

/// One churn regime: how many evidence variables change per step.
#[derive(Clone, Copy)]
enum Churn {
    /// Exactly one variable per step (the interactive regime).
    OneVar,
    /// A fraction of the observable pool per step.
    Fraction(f64),
}

impl Churn {
    fn label(self) -> &'static str {
        match self {
            Churn::OneVar => "1var",
            Churn::Fraction(f) if (f - 0.05).abs() < 1e-12 => "5%",
            Churn::Fraction(f) if (f - 0.25).abs() < 1e-12 => "25%",
            _ => "100%",
        }
    }

    fn count(self, pool: usize) -> usize {
        match self {
            Churn::OneVar => 1,
            Churn::Fraction(f) => ((pool as f64 * f).round() as usize).clamp(1, pool),
        }
    }
}

/// One step of the deterministic churn stream: evidence deltas (as the
/// post-delta full evidence set plus the per-var toggles) and a query.
struct Step {
    /// Variables toggled this step (observe if unobserved, else retract).
    toggles: Vec<VarId>,
    /// Query target (never observed at query time).
    target: VarId,
}

struct Cell {
    qps: f64,
    total_secs: f64,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    out.push(Workload {
        name: "asia",
        session: InferenceSession::from_network(&networks::asia()).unwrap(),
        steps: 120,
    });
    out.push(Workload {
        name: "student",
        session: InferenceSession::from_network(&networks::student()).unwrap(),
        steps: 120,
    });
    // A tree in the paper's experimental range: wide tables and enough
    // cliques that a single-finding dirty slice is a small fraction of
    // the tree, so each full repropagation carries real work to skip.
    let shape = random_tree(&TreeParams::new(256, 8, 2, 4).with_seed(0xF9));
    let jt = JunctionTree::from_parts(
        shape.clone(),
        shape
            .domains()
            .iter()
            .map(|d| {
                let mut t = evprop_potential::PotentialTable::ones(d.clone());
                t.fill(0.5);
                t
            })
            .collect(),
    )
    .unwrap();
    out.push(Workload {
        name: "random_w8",
        session: InferenceSession::from_junction_tree(jt),
        steps: 40,
    });
    out
}

/// The variables of the junction tree, split into an observable pool
/// and reserved query targets (every fourth variable), with the MPE
/// state of each pool variable — any subset of an MPE assignment has
/// positive probability, so every churn configuration is feasible.
fn split_vars(w: &Workload) -> (Vec<(VarId, usize)>, Vec<VarId>) {
    let mpe = w
        .session
        .most_probable_explanation(&SequentialEngine, &EvidenceSet::new())
        .expect("empty-evidence MPE exists");
    let mut pool = Vec::new();
    let mut targets = Vec::new();
    for (i, &(v, s)) in mpe.assignment.iter().enumerate() {
        if i % 4 == 0 {
            targets.push(v);
        } else {
            pool.push((v, s));
        }
    }
    (pool, targets)
}

fn churn_stream(
    pool: &[(VarId, usize)],
    targets: &[VarId],
    per_step: usize,
    steps: usize,
    seed: u64,
) -> Vec<Step> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|_| {
            let mut toggles = Vec::with_capacity(per_step);
            let mut picked = vec![false; pool.len()];
            for _ in 0..per_step.min(pool.len()) {
                let mut i = rng.gen_range(0..pool.len());
                while picked[i] {
                    i = rng.gen_range(0..pool.len());
                }
                picked[i] = true;
                toggles.push(pool[i].0);
            }
            Step {
                toggles,
                target: targets[rng.gen_range(0..targets.len())],
            }
        })
        .collect()
}

/// The stateless baseline: replay the stream answering every query
/// with a full propagation on the shard's pool (the arena is checked
/// out once and reset per query, exactly like the serving dispatcher).
fn run_full(
    w: &Workload,
    pool: &[(VarId, usize)],
    stream: &[Step],
    shard: &ShardState,
) -> (Cell, Vec<Vec<f64>>) {
    let jt = w.session.junction_tree();
    let graph = w.session.task_graph();
    let state_of = |v: VarId| pool.iter().find(|(p, _)| *p == v).unwrap().1;
    let mut ev = EvidenceSet::new();
    let mut arena = shard.checkout(graph, jt.potentials());
    // Warm outside the timed region: steady state is the serving regime.
    shard
        .posterior_on(jt, graph, &mut arena, stream[0].target, &ev)
        .unwrap();
    let mut answers = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for step in stream {
        for &v in &step.toggles {
            if ev.state_of(v).is_some() {
                ev.retract(v);
            } else {
                ev.observe(v, state_of(v));
            }
        }
        let m = shard
            .posterior_on(jt, graph, &mut arena, step.target, &ev)
            .expect("churn stream is feasible");
        answers.push(m.data().to_vec());
    }
    let total = start.elapsed().as_secs_f64();
    shard.recycle(arena);
    (
        Cell {
            qps: stream.len() as f64 / total.max(1e-12),
            total_secs: total,
        },
        answers,
    )
}

/// The incremental path: one resident session, deltas + sliced queries.
fn run_incremental(
    w: &Workload,
    pool: &[(VarId, usize)],
    stream: &[Step],
    shard: &ShardState,
) -> (Cell, Vec<Vec<f64>>, evprop_incremental::SessionStats) {
    let model = Arc::clone(w.session.model());
    let state_of = |v: VarId| pool.iter().find(|(p, _)| *p == v).unwrap().1;
    let mut session = IncrementalSession::new(model);
    // Warm: first query pays the one full propagation.
    session.query(shard, stream[0].target).unwrap();
    let mut answers = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for step in stream {
        for &v in &step.toggles {
            if session.evidence().state_of(v).is_some() {
                session.retract(v);
            } else {
                session.observe(v, state_of(v)).unwrap();
            }
        }
        let (m, _) = session
            .query(shard, step.target)
            .expect("churn stream is feasible");
        answers.push(m.data().to_vec());
    }
    let total = start.elapsed().as_secs_f64();
    let stats = session.stats().clone();
    (
        Cell {
            qps: stream.len() as f64 / total.max(1e-12),
            total_secs: total,
        },
        answers,
        stats,
    )
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .min(8);
    println!(
        "# incremental sessions vs full repropagation under evidence churn ({threads} threads)"
    );
    evprop_bench::header(&[
        "workload",
        "churn",
        "steps",
        "full_qps",
        "incremental_qps",
        "speedup",
        "cached/incr/full",
        "max_abs_diff",
    ]);

    let churns = [
        Churn::OneVar,
        Churn::Fraction(0.05),
        Churn::Fraction(0.25),
        Churn::Fraction(1.0),
    ];
    let mut json_rows = Vec::new();
    for w in workloads() {
        let (pool, targets) = split_vars(&w);
        let shard = ShardState::new(SchedulerConfig::with_threads(threads));
        for churn in churns {
            let per_step = churn.count(pool.len());
            let stream = churn_stream(&pool, &targets, per_step, w.steps, 0xC0FFEE);
            let (full, full_answers) = run_full(&w, &pool, &stream, &shard);
            let (inc, inc_answers, stats) = run_incremental(&w, &pool, &stream, &shard);
            let max_diff = full_answers
                .iter()
                .flatten()
                .zip(inc_answers.iter().flatten())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_diff < 1e-9,
                "{} {}: incremental diverged ({max_diff:e})",
                w.name,
                churn.label()
            );
            let speedup = inc.qps / full.qps;
            println!(
                "{},{},{},{:.0},{:.0},{:.2},{}/{}/{},{:.1e}",
                w.name,
                churn.label(),
                stream.len(),
                full.qps,
                inc.qps,
                speedup,
                stats.cached,
                stats.incremental,
                stats.full,
                max_diff
            );
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"churn\": \"{}\", \"steps\": {}, ",
                    "\"vars_per_step\": {}, \"threads\": {},\n",
                    "     \"full_reprop\": {{\"qps\": {:.1}, \"total_secs\": {:.4}}},\n",
                    "     \"incremental\": {{\"qps\": {:.1}, \"total_secs\": {:.4}, ",
                    "\"cached\": {}, \"incremental\": {}, \"full\": {}, ",
                    "\"stale_edges\": {}}},\n",
                    "     \"incremental_speedup\": {:.3}, \"max_abs_diff\": {:.3e}}}"
                ),
                w.name,
                churn.label(),
                stream.len(),
                per_step,
                threads,
                full.qps,
                full.total_secs,
                inc.qps,
                inc.total_secs,
                stats.cached,
                stats.incremental,
                stats.full,
                stats.stale_edges,
                speedup,
                max_diff
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"incremental\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!("# wrote BENCH_incremental.json");
}
