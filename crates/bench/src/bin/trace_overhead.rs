//! Tracing-overhead benchmark: what does compiling the recording hooks
//! in cost when nobody is listening?
//!
//! The `trace` cargo feature compiles span-recording hooks into the
//! scheduler hot path. Their steady-state cost with no sink attached
//! must stay under 2% — the budget that lets the feature ship enabled
//! in the CLI binary. This bin measures three configurations of the
//! same pooled-engine query stream:
//!
//! * **baseline** — hooks compiled out (run without `--features trace`);
//! * **idle** — hooks compiled in, no sink attached (the branch cost);
//! * **active** — hooks compiled in, a sink attached and recording.
//!
//! One binary cannot hold both compile configurations, so run it twice
//! and the runs merge their halves into one `BENCH_trace_overhead.json`:
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin trace_overhead
//! cargo run -p evprop-bench --release --bin trace_overhead --features trace
//! ```

use evprop_core::PooledEngine;
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::SchedulerConfig;
use evprop_serve::{parse_json, Json};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::{materialize, random_tree, TreeParams};
use std::time::Instant;

const THREADS: usize = 4;
const QUERIES: usize = 200;
const REPEATS: usize = 9;
const OUT: &str = "BENCH_trace_overhead.json";

/// Median queries/s over [`REPEATS`] timed batches of [`QUERIES`].
fn measure_qps(engine: &PooledEngine, jt: &JunctionTree, graph: &TaskGraph) -> f64 {
    let ev = EvidenceSet::new();
    let mut rates = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..QUERIES {
            engine
                .posterior(jt, graph, VarId(0), &ev)
                .expect("stream queries are answerable");
        }
        rates.push(QUERIES as f64 / start.elapsed().as_secs_f64().max(1e-12));
    }
    rates.sort_by(f64::total_cmp);
    rates[REPEATS / 2]
}

fn json_num(v: Option<&Json>) -> Option<f64> {
    match v {
        Some(Json::Num(x)) => Some(*x),
        _ => None,
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.1}"))
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let traced_build = cfg!(feature = "trace");
    let shape = random_tree(&TreeParams::new(64, 9, 2, 3).with_seed(0xF9));
    let jt = materialize(&shape, 0xF9);
    let graph = TaskGraph::from_shape(&shape);
    let engine = PooledEngine::new(SchedulerConfig::with_threads(THREADS));
    engine
        .posterior(&jt, &graph, VarId(0), &EvidenceSet::new())
        .expect("warmup");

    println!(
        "# trace overhead: {} build, {} queries x {} repeats on {THREADS} threads ({host_cores} host cores)",
        if traced_build { "traced" } else { "baseline" },
        QUERIES,
        REPEATS
    );
    // With hooks compiled in, this run measures "enabled but idle": no
    // sink has ever been attached. Without them it is the baseline.
    let measured = measure_qps(&engine, &jt, &graph);
    println!(
        "# {}: {measured:.0} queries/s",
        if traced_build { "idle" } else { "baseline" }
    );

    #[cfg(feature = "trace")]
    let active = {
        let sink = std::sync::Arc::new(evprop_trace::TraceSink::for_workers(THREADS, 1 << 16));
        engine.attach_trace(Some(std::sync::Arc::clone(&sink)));
        let qps = measure_qps(&engine, &jt, &graph);
        engine.attach_trace(None);
        println!(
            "# active: {qps:.0} queries/s ({} events recorded)",
            sink.drain().total_events()
        );
        Some(qps)
    };
    #[cfg(not(feature = "trace"))]
    let active: Option<f64> = None;

    // Merge with the other configuration's half, if it already ran.
    let old = std::fs::read_to_string(OUT)
        .ok()
        .and_then(|s| parse_json(&s).ok());
    let prior = |key: &str| json_num(old.as_ref().and_then(|v| v.get(key)));
    let (baseline_qps, idle_qps, active_qps) = if traced_build {
        (prior("baseline_qps"), Some(measured), active)
    } else {
        (Some(measured), prior("idle_qps"), prior("active_qps"))
    };
    let overhead_pct = |vs: Option<f64>| match (baseline_qps, vs) {
        (Some(b), Some(v)) if b > 0.0 => Some((b - v) / b * 100.0),
        _ => None,
    };
    let idle_overhead = overhead_pct(idle_qps);
    let active_overhead = overhead_pct(active_qps);
    if let Some(pct) = idle_overhead {
        println!(
            "# idle overhead {pct:.2}% (budget 2%): {}",
            if pct < 2.0 { "OK" } else { "OVER BUDGET" }
        );
    } else {
        println!("# run the other configuration to complete the comparison");
    }

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"trace_overhead\",\n",
            "  \"host_cores\": {},\n  \"threads\": {},\n",
            "  \"queries_per_repeat\": {},\n  \"repeats\": {},\n",
            "  \"workload\": \"random_tree(N=64,w=9,r=2,k=3)\",\n",
            "  \"baseline_qps\": {},\n  \"idle_qps\": {},\n  \"active_qps\": {},\n",
            "  \"idle_overhead_pct\": {},\n  \"active_overhead_pct\": {},\n",
            "  \"idle_overhead_budget_pct\": 2.0,\n  \"idle_overhead_ok\": {}\n}}\n"
        ),
        host_cores,
        THREADS,
        QUERIES,
        REPEATS,
        fmt_opt(baseline_qps),
        fmt_opt(idle_qps),
        fmt_opt(active_qps),
        idle_overhead.map_or("null".to_string(), |p| format!("{p:.3}")),
        active_overhead.map_or("null".to_string(), |p| format!("{p:.3}")),
        idle_overhead.is_none_or(|p| p < 2.0),
    );
    std::fs::write(OUT, &json).expect("write BENCH_trace_overhead.json");
    println!("# wrote {OUT}");
}
