//! Kernel micro-benchmark: compiled [`KernelPlan`] interpretation vs
//! the per-call [`AxisWalker`](evprop_potential::AxisWalker) kernels,
//! swept over every available SIMD kernel backend.
//!
//! For synthetic binary cliques of width 2..=20 (table sizes 4..1M), a
//! separator of half the variables, and partition grains
//! δ ∈ {1, 64, 4096}, measures each cross-domain primitive both ways:
//!
//! * **planned** — plans compiled once per (domain pair, δ-range), then
//!   interpreted repeatedly: the steady-state serving path, where the
//!   [`PlanCache`](evprop_taskgraph::PlanCache) hands every subtask a
//!   precompiled plan;
//! * **walker** — the `*_walker` kernels, which re-derive the
//!   mixed-radix index map on every call.
//!
//! Every cell is measured once per available
//! [`KernelBackend`](evprop_potential::KernelBackend) (scalar always,
//! SSE2/AVX2 where the CPU supports them) — every backend computes
//! bit-identical tables, so the per-backend rows differ only in time.
//! The backends run back-to-back *within* each cell (not as separate
//! whole-sweep passes), so slow clock/thermal drift over the run
//! cancels out of the cross-backend ratios.
//!
//! Two separator layouts exercise both plan kinds: `low` keeps the
//! leading variables (trailing scan axes absent → `Broadcast` blocks)
//! and `high` keeps the trailing variables (`Contig` runs).
//!
//! Prints a CSV-ish summary, writes `BENCH_kernels.json`, and reports
//! two headlines for EXPERIMENTS.md: the planned-vs-walker geometric-
//! mean speedup over wide cliques (width ≥ 16, auto-detected backend)
//! and the SIMD-vs-scalar geomean over the wide cliques' long-segment
//! cells (width ≥ 16, δ ≥ 4096, `extend` excluded — see
//! [`simd_vs_scalar`] for how the finer grains behave and why they
//! are reported but not aggregated).
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin kernel_bench
//! ```

use evprop_potential::{plan, raw, simd};
use evprop_potential::{Domain, EntryRange, KernelBackend, KernelPlan, VarId, Variable};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Clique widths (binary variables): table sizes 4 .. 2^20.
const WIDTHS: [usize; 10] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20];
/// Partition grains, mirroring the scheduler's δ sweep.
const DELTAS: [usize; 3] = [1, 64, 4096];
/// Rough entry-operation budget per timed side; reps are derived from
/// it so small and large tables measure comparable wall time.
const TARGET_OPS: usize = 1 << 21;
/// Width at and above which the headline ratios are aggregated.
const HEADLINE_WIDTH: usize = 16;
/// Grain at which the SIMD-vs-scalar headline is aggregated: the
/// coarsest grain in the sweep, where segments are long enough that
/// per-segment loop entry and horizontal-reduction overheads vanish
/// and the cell measures pure kernel throughput (δ = 1 measures
/// per-call overhead — and takes the small-`n` scalar shortcut
/// anyway; δ = 64 still pays one horizontal combine per 64 entries).
const HEADLINE_DELTA: usize = 4096;

const PRIMS: [&str; 5] = ["marg_sum", "marg_max", "extend", "multiply", "divide"];

fn binary_domain(ids: impl Iterator<Item = u32>) -> Domain {
    Domain::new(ids.map(|i| Variable::new(VarId(i), 2)).collect()).unwrap()
}

struct Cell {
    backend: &'static str,
    width: usize,
    layout: &'static str,
    delta: usize,
    prim: &'static str,
    planned_ns_per_op: f64,
    walker_ns_per_op: f64,
}

impl Cell {
    fn ratio(&self) -> f64 {
        self.walker_ns_per_op / self.planned_ns_per_op.max(1e-12)
    }
}

fn geomean(ratios: &[f64]) -> f64 {
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len().max(1) as f64).exp()
}

/// Times `reps` repetitions of `pass` split into three equal blocks,
/// returning the *median* block's ns per entry-op — one scheduler or
/// throttling burst then spoils at most one block instead of the whole
/// measurement (this box is a shared 1-core container).
fn time_ns_per_op(reps: usize, ops_per_pass: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warmup
    let block = (reps / 3).max(1);
    let mut t = [0.0f64; 3];
    for slot in &mut t {
        let start = Instant::now();
        for _ in 0..block {
            pass();
        }
        *slot = start.elapsed().as_nanos() as f64 / (block * ops_per_pass) as f64;
    }
    t.sort_by(f64::total_cmp);
    t[1]
}

#[allow(clippy::too_many_lines)]
fn bench_cells(
    backends: &[KernelBackend],
    width: usize,
    layout: &'static str,
    out: &mut Vec<Cell>,
) {
    let clique = binary_domain(0..width as u32);
    let sep = match layout {
        "low" => binary_domain(0..(width / 2) as u32),
        _ => binary_domain((width / 2) as u32..width as u32),
    };
    let size = clique.size();
    let reps = (TARGET_OPS / size).max(2);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED ^ width as u64);
    let src: Vec<f64> = (0..size).map(|_| rng.gen_range(0.01..1.0)).collect();
    // Denominator with zeros sprinkled in so divide pays for the
    // Hugin 0/0 = 0 guard the way the propagation path does.
    let den: Vec<f64> = (0..size)
        .map(|i| {
            if i % 17 == 0 {
                0.0
            } else {
                rng.gen_range(0.01..1.0)
            }
        })
        .collect();
    let sep_t: Vec<f64> = (0..sep.size()).map(|_| rng.gen_range(0.01..1.0)).collect();
    let mut dst = vec![0.0f64; sep.size()];
    let mut big = vec![0.0f64; size];

    for &delta in &DELTAS {
        let ranges = EntryRange::split(size, delta);
        // Compile once per range — this is exactly what the PlanCache
        // amortizes; compile time is deliberately outside the timing.
        let plans: Vec<KernelPlan> = ranges
            .iter()
            .map(|&r| KernelPlan::compile(&clique, &sep, r).unwrap())
            .collect();

        for prim in PRIMS {
            for &be in backends {
                simd::set_active(be).expect("available backend installs");
                let backend = be.name();
                let planned = match prim {
                    "marg_sum" => time_ns_per_op(reps, size, || {
                        dst.fill(0.0);
                        for p in &plans {
                            p.marginalize_sum_into(&src, &mut dst).unwrap();
                        }
                        black_box(&dst);
                    }),
                    "marg_max" => time_ns_per_op(reps, size, || {
                        dst.fill(0.0);
                        for p in &plans {
                            p.marginalize_max_into(&src, &mut dst).unwrap();
                        }
                        black_box(&dst);
                    }),
                    "extend" => time_ns_per_op(reps, size, || {
                        for (p, r) in plans.iter().zip(&ranges) {
                            p.extend_into(&sep_t, &mut big[r.start..r.end]).unwrap();
                        }
                        black_box(&big);
                    }),
                    "divide" => time_ns_per_op(reps, size, || {
                        for &r in &ranges {
                            plan::divide_planned(&src, &den, r, &mut big[r.start..r.end]).unwrap();
                        }
                        black_box(&big);
                    }),
                    // `multiply_into` is read-modify-write, so `big` must be
                    // reset every pass: left to decay (`big *= sep` repeatedly)
                    // the values cross the denormal range — where every
                    // multiply is microcoded — before flushing to zero, and
                    // *when* that transient lands (which block, which
                    // backend's turn) depends on reps and run order, making
                    // the timing state-dependent. The fill also mirrors the
                    // serving path, which does `reset_ones` before its
                    // multiply.
                    _ => time_ns_per_op(reps, size, || {
                        big.fill(1.0);
                        for (p, r) in plans.iter().zip(&ranges) {
                            p.multiply_into(&sep_t, &mut big[r.start..r.end]).unwrap();
                        }
                        black_box(&big);
                    }),
                };
                let walker = match prim {
                    "marg_sum" => time_ns_per_op(reps, size, || {
                        dst.fill(0.0);
                        for &r in &ranges {
                            raw::marginalize_range_into_walker(&clique, &src, r, &sep, &mut dst)
                                .unwrap();
                        }
                        black_box(&dst);
                    }),
                    "marg_max" => time_ns_per_op(reps, size, || {
                        dst.fill(0.0);
                        for &r in &ranges {
                            raw::max_marginalize_range_into_walker(
                                &clique, &src, r, &sep, &mut dst,
                            )
                            .unwrap();
                        }
                        black_box(&dst);
                    }),
                    "divide" => time_ns_per_op(reps, size, || {
                        for &r in &ranges {
                            raw::divide_range_into(&src, &den, r, &mut big[r.start..r.end])
                                .unwrap();
                        }
                        black_box(&big);
                    }),
                    "extend" => time_ns_per_op(reps, size, || {
                        for &r in &ranges {
                            raw::extend_range_into_walker(
                                &sep,
                                &sep_t,
                                &clique,
                                r,
                                &mut big[r.start..r.end],
                            )
                            .unwrap();
                        }
                        black_box(&big);
                    }),
                    // Same per-pass reset as the planned side (see above).
                    _ => time_ns_per_op(reps, size, || {
                        big.fill(1.0);
                        for &r in &ranges {
                            raw::multiply_range_into_walker(
                                &sep,
                                &sep_t,
                                &clique,
                                r,
                                &mut big[r.start..r.end],
                            )
                            .unwrap();
                        }
                        black_box(&big);
                    }),
                };
                let cell = Cell {
                    backend,
                    width,
                    layout,
                    delta,
                    prim,
                    planned_ns_per_op: planned,
                    walker_ns_per_op: walker,
                };
                println!(
                    "{backend},{width},{layout},{delta},{prim},{planned:.3},{walker:.3},{:.2}",
                    cell.ratio()
                );
                out.push(cell);
            }
        }
    }
}

/// Geomean of `scalar planned ns / simd planned ns` over the wide
/// tables' long-segment cells (width ≥ [`HEADLINE_WIDTH`],
/// δ ≥ [`HEADLINE_DELTA`]) — the acceptance headline for the SIMD
/// kernels: segments long enough that the vector loop, the thing the
/// backends actually change, is all a cell measures.
///
/// At finer grains the contrast is diluted by costs that are
/// backend-invariant by construction, so those cells are reported (in
/// `cells`) but not aggregated: δ = 1 plans dispatch per entry and
/// take the small-`n` scalar shortcut (ratio ≈ 1), and δ = 64 pays a
/// horizontal combine per 64 entries while the canonical 4-lane sum
/// order caps both backends at one add-chain element per cycle
/// (geomean there ≈ 1.27 on this host, dragged by the
/// bandwidth-bound streaming ops — see EXPERIMENTS.md).
///
/// `extend` is excluded: its planned path is `copy_from_slice`/`fill`
/// on every backend (memcpy/memset — there is nothing to dispatch), so
/// its rows would only fold measurement noise centered on 1.0 into a
/// ratio that is 1.0 by construction.
fn simd_vs_scalar(cells: &[Cell], simd: &str) -> f64 {
    let ratios: Vec<f64> = cells
        .iter()
        .filter(|c| {
            c.backend == simd
                && c.prim != "extend"
                && c.width >= HEADLINE_WIDTH
                && c.delta >= HEADLINE_DELTA
        })
        .filter_map(|c| {
            cells
                .iter()
                .find(|s| {
                    s.backend == "scalar"
                        && (s.width, s.layout, s.delta, s.prim)
                            == (c.width, c.layout, c.delta, c.prim)
                })
                .map(|s| s.planned_ns_per_op / c.planned_ns_per_op.max(1e-12))
        })
        .collect();
    geomean(&ratios)
}

fn main() {
    let backends = KernelBackend::available();
    let auto = KernelBackend::detect();
    println!("# planned vs walker kernels (binary cliques, separator = half the vars)");
    println!(
        "# backends: {} (auto-detected: {})",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(" "),
        auto.name()
    );
    evprop_bench::header(&[
        "backend",
        "width",
        "layout",
        "delta",
        "primitive",
        "planned_ns_per_op",
        "walker_ns_per_op",
        "speedup",
    ]);

    let mut cells = Vec::new();
    for &w in &WIDTHS {
        for layout in ["low", "high"] {
            bench_cells(&backends, w, layout, &mut cells);
        }
    }
    simd::set_active(auto).expect("detected backend installs");

    let wide: Vec<f64> = cells
        .iter()
        .filter(|c| c.backend == auto.name() && c.width >= HEADLINE_WIDTH)
        .map(Cell::ratio)
        .collect();
    let headline = geomean(&wide);
    println!(
        "# headline: planned is {headline:.2}x the walker path \
         (geomean, width >= {HEADLINE_WIDTH}, backend {})",
        auto.name()
    );

    let simd_headline = if auto == KernelBackend::Scalar {
        1.0
    } else {
        simd_vs_scalar(&cells, auto.name())
    };
    println!(
        "# headline: {} planned kernels are {simd_headline:.2}x scalar \
         (geomean, width >= {HEADLINE_WIDTH}, delta >= {HEADLINE_DELTA}, extend excluded)",
        auto.name()
    );

    let json_cells: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"backend\": \"{}\", \"width\": {}, \"layout\": \"{}\", ",
                    "\"delta\": {}, \"primitive\": \"{}\", \"planned_ns_per_op\": {:.4}, ",
                    "\"walker_ns_per_op\": {:.4}, \"speedup\": {:.3}}}"
                ),
                c.backend,
                c.width,
                c.layout,
                c.delta,
                c.prim,
                c.planned_ns_per_op,
                c.walker_ns_per_op,
                c.ratio()
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"kernel_bench\",\n",
            "  \"target_ops_per_side\": {},\n",
            "  \"backends\": [{}],\n",
            "  \"auto_backend\": \"{}\",\n",
            "  \"headline_width\": {},\n",
            "  \"headline_delta\": {},\n",
            "  \"headline_speedup_geomean\": {:.3},\n",
            "  \"simd_vs_scalar_geomean\": {:.3},\n",
            "  \"cells\": [\n{}\n  ]\n}}\n"
        ),
        TARGET_OPS,
        backends
            .iter()
            .map(|b| format!("\"{}\"", b.name()))
            .collect::<Vec<_>>()
            .join(", "),
        auto.name(),
        HEADLINE_WIDTH,
        HEADLINE_DELTA,
        headline,
        simd_headline,
        json_cells.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("# wrote BENCH_kernels.json");
}
