//! Kernel micro-benchmark: compiled [`KernelPlan`] interpretation vs
//! the per-call [`AxisWalker`](evprop_potential::AxisWalker) kernels.
//!
//! For synthetic binary cliques of width 2..=20 (table sizes 4..1M), a
//! separator of half the variables, and partition grains
//! δ ∈ {1, 64, 4096}, measures each cross-domain primitive both ways:
//!
//! * **planned** — plans compiled once per (domain pair, δ-range), then
//!   interpreted repeatedly: the steady-state serving path, where the
//!   [`PlanCache`](evprop_taskgraph::PlanCache) hands every subtask a
//!   precompiled plan;
//! * **walker** — the `*_walker` kernels, which re-derive the
//!   mixed-radix index map on every call.
//!
//! Two separator layouts exercise both plan kinds: `low` keeps the
//! leading variables (trailing scan axes absent → `Broadcast` blocks)
//! and `high` keeps the trailing variables (`Contig` runs).
//!
//! Prints a CSV-ish summary, writes `BENCH_kernels.json`, and reports a
//! headline geometric-mean speedup over the wide cliques (width ≥ 16)
//! for EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin kernel_bench
//! ```

use evprop_potential::{raw, Domain, EntryRange, KernelPlan, VarId, Variable};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Clique widths (binary variables): table sizes 4 .. 2^20.
const WIDTHS: [usize; 10] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20];
/// Partition grains, mirroring the scheduler's δ sweep.
const DELTAS: [usize; 3] = [1, 64, 4096];
/// Rough entry-operation budget per timed side; reps are derived from
/// it so small and large tables measure comparable wall time.
const TARGET_OPS: usize = 1 << 21;
/// Width at and above which the headline ratio is aggregated.
const HEADLINE_WIDTH: usize = 16;

const PRIMS: [&str; 4] = ["marg_sum", "marg_max", "extend", "multiply"];

fn binary_domain(ids: impl Iterator<Item = u32>) -> Domain {
    Domain::new(ids.map(|i| Variable::new(VarId(i), 2)).collect()).unwrap()
}

struct Cell {
    width: usize,
    layout: &'static str,
    delta: usize,
    prim: &'static str,
    planned_ns_per_op: f64,
    walker_ns_per_op: f64,
}

impl Cell {
    fn ratio(&self) -> f64 {
        self.walker_ns_per_op / self.planned_ns_per_op.max(1e-12)
    }
}

/// Times `reps` repetitions of `pass`, returning ns per entry-op.
fn time_ns_per_op(reps: usize, ops_per_pass: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warmup
    let start = Instant::now();
    for _ in 0..reps {
        pass();
    }
    start.elapsed().as_nanos() as f64 / (reps * ops_per_pass) as f64
}

#[allow(clippy::too_many_lines)]
fn bench_cells(width: usize, layout: &'static str, out: &mut Vec<Cell>) {
    let clique = binary_domain(0..width as u32);
    let sep = match layout {
        "low" => binary_domain(0..(width / 2) as u32),
        _ => binary_domain((width / 2) as u32..width as u32),
    };
    let size = clique.size();
    let reps = (TARGET_OPS / size).max(2);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED ^ width as u64);
    let src: Vec<f64> = (0..size).map(|_| rng.gen_range(0.01..1.0)).collect();
    let sep_t: Vec<f64> = (0..sep.size()).map(|_| rng.gen_range(0.01..1.0)).collect();
    let mut dst = vec![0.0f64; sep.size()];
    let mut big = vec![0.0f64; size];

    for &delta in &DELTAS {
        let ranges = EntryRange::split(size, delta);
        // Compile once per range — this is exactly what the PlanCache
        // amortizes; compile time is deliberately outside the timing.
        let plans: Vec<KernelPlan> = ranges
            .iter()
            .map(|&r| KernelPlan::compile(&clique, &sep, r).unwrap())
            .collect();

        for prim in PRIMS {
            let planned = match prim {
                "marg_sum" => time_ns_per_op(reps, size, || {
                    dst.fill(0.0);
                    for p in &plans {
                        p.marginalize_sum_into(&src, &mut dst).unwrap();
                    }
                    black_box(&dst);
                }),
                "marg_max" => time_ns_per_op(reps, size, || {
                    dst.fill(0.0);
                    for p in &plans {
                        p.marginalize_max_into(&src, &mut dst).unwrap();
                    }
                    black_box(&dst);
                }),
                "extend" => time_ns_per_op(reps, size, || {
                    for (p, r) in plans.iter().zip(&ranges) {
                        p.extend_into(&sep_t, &mut big[r.start..r.end]).unwrap();
                    }
                    black_box(&big);
                }),
                _ => time_ns_per_op(reps, size, || {
                    for (p, r) in plans.iter().zip(&ranges) {
                        p.multiply_into(&sep_t, &mut big[r.start..r.end]).unwrap();
                    }
                    black_box(&big);
                }),
            };
            let walker = match prim {
                "marg_sum" => time_ns_per_op(reps, size, || {
                    dst.fill(0.0);
                    for &r in &ranges {
                        raw::marginalize_range_into_walker(&clique, &src, r, &sep, &mut dst)
                            .unwrap();
                    }
                    black_box(&dst);
                }),
                "marg_max" => time_ns_per_op(reps, size, || {
                    dst.fill(0.0);
                    for &r in &ranges {
                        raw::max_marginalize_range_into_walker(&clique, &src, r, &sep, &mut dst)
                            .unwrap();
                    }
                    black_box(&dst);
                }),
                "extend" => time_ns_per_op(reps, size, || {
                    for &r in &ranges {
                        raw::extend_range_into_walker(
                            &sep,
                            &sep_t,
                            &clique,
                            r,
                            &mut big[r.start..r.end],
                        )
                        .unwrap();
                    }
                    black_box(&big);
                }),
                _ => time_ns_per_op(reps, size, || {
                    for &r in &ranges {
                        raw::multiply_range_into_walker(
                            &sep,
                            &sep_t,
                            &clique,
                            r,
                            &mut big[r.start..r.end],
                        )
                        .unwrap();
                    }
                    black_box(&big);
                }),
            };
            let cell = Cell {
                width,
                layout,
                delta,
                prim,
                planned_ns_per_op: planned,
                walker_ns_per_op: walker,
            };
            println!(
                "{width},{layout},{delta},{prim},{planned:.3},{walker:.3},{:.2}",
                cell.ratio()
            );
            out.push(cell);
        }
    }
}

fn main() {
    println!("# planned vs walker kernels (binary cliques, separator = half the vars)");
    evprop_bench::header(&[
        "width",
        "layout",
        "delta",
        "primitive",
        "planned_ns_per_op",
        "walker_ns_per_op",
        "speedup",
    ]);

    let mut cells = Vec::new();
    for &w in &WIDTHS {
        for layout in ["low", "high"] {
            bench_cells(w, layout, &mut cells);
        }
    }

    let wide: Vec<f64> = cells
        .iter()
        .filter(|c| c.width >= HEADLINE_WIDTH)
        .map(Cell::ratio)
        .collect();
    let headline = (wide.iter().map(|r| r.ln()).sum::<f64>() / wide.len() as f64).exp();
    println!("# headline: planned is {headline:.2}x the walker path (geomean, width >= {HEADLINE_WIDTH})");

    let json_cells: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"width\": {}, \"layout\": \"{}\", \"delta\": {}, ",
                    "\"primitive\": \"{}\", \"planned_ns_per_op\": {:.4}, ",
                    "\"walker_ns_per_op\": {:.4}, \"speedup\": {:.3}}}"
                ),
                c.width,
                c.layout,
                c.delta,
                c.prim,
                c.planned_ns_per_op,
                c.walker_ns_per_op,
                c.ratio()
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"kernel_bench\",\n",
            "  \"target_ops_per_side\": {},\n",
            "  \"headline_width\": {},\n",
            "  \"headline_speedup_geomean\": {:.3},\n",
            "  \"cells\": [\n{}\n  ]\n}}\n"
        ),
        TARGET_OPS,
        HEADLINE_WIDTH,
        headline,
        json_cells.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("# wrote BENCH_kernels.json");
}
