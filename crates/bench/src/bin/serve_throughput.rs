//! Serving-throughput benchmark (extension): what does compile-once,
//! serve-many buy on real threads?
//!
//! Answers the same deterministic pseudo-random query stream two ways
//! over each workload:
//!
//! * **spawn-per-query** — [`CollaborativeEngine`]: every propagation
//!   spawns and joins its worker threads and allocates a fresh table
//!   arena (what `run_collaborative` costs per call);
//! * **pooled** — [`PooledEngine`]: resident workers parked between
//!   jobs, one recycled arena reset in place per query.
//!
//! Prints a CSV-ish summary and writes the full comparison to
//! `BENCH_serve.json` in the working directory.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin serve_throughput
//! ```

use evprop_bayesnet::networks;
use evprop_core::{CollaborativeEngine, InferenceSession, PooledEngine, Query};
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::SchedulerConfig;
use evprop_workloads::{random_tree, TreeParams};
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One workload: a compiled session plus how many queries to stream.
struct Workload {
    name: &'static str,
    session: InferenceSession,
    /// Number of distinct observable variables (for evidence drawing).
    num_vars: u32,
    queries: usize,
}

/// Measured outcome of one (workload, mode) cell.
struct Cell {
    qps: f64,
    total_secs: f64,
    tables_allocated: u64,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    let asia = networks::asia();
    out.push(Workload {
        name: "asia",
        num_vars: asia.num_vars() as u32,
        session: InferenceSession::from_network(&asia).unwrap(),
        queries: 400,
    });
    let student = networks::student();
    out.push(Workload {
        name: "student",
        num_vars: student.num_vars() as u32,
        session: InferenceSession::from_network(&student).unwrap(),
        queries: 400,
    });
    // A tree in the paper's experimental range: wider tables, so each
    // query carries real propagation work.
    let shape = random_tree(&TreeParams::new(64, 8, 2, 4).with_seed(0xF9));
    let jt = JunctionTree::from_parts(
        shape.clone(),
        shape
            .domains()
            .iter()
            .map(|d| {
                let mut t = evprop_potential::PotentialTable::ones(d.clone());
                t.fill(0.5);
                t
            })
            .collect(),
    )
    .unwrap();
    let num_vars = shape
        .domains()
        .iter()
        .flat_map(|d| d.vars().iter().map(|v| v.id().0))
        .max()
        .unwrap()
        + 1;
    out.push(Workload {
        name: "random_w8",
        num_vars,
        session: InferenceSession::from_junction_tree(jt),
        queries: 100,
    });
    out
}

/// Deterministic stream of single-evidence posterior queries. Every
/// target/evidence variable is drawn from the junction tree's
/// variables, so each query is answerable.
fn query_stream(w: &Workload, seed: u64) -> Vec<Query> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let in_tree = |v: u32| {
        w.session
            .junction_tree()
            .clique_containing(VarId(v))
            .is_some()
    };
    let vars: Vec<u32> = (0..w.num_vars).filter(|&v| in_tree(v)).collect();
    (0..w.queries)
        .map(|_| {
            let target = vars[rng.gen_range(0..vars.len())];
            let mut ev = EvidenceSet::new();
            if vars.len() > 1 {
                let mut obs = target;
                while obs == target {
                    obs = vars[rng.gen_range(0..vars.len())];
                }
                // state 0 always exists; keeps P(e) > 0 on every workload
                ev.observe(VarId(obs), 0);
            }
            Query::new(VarId(target), ev)
        })
        .collect()
}

fn run_spawning(w: &Workload, queries: &[Query], threads: usize) -> Cell {
    let engine = CollaborativeEngine::with_threads(threads);
    let mut tables = 0u64;
    let start = Instant::now();
    for q in queries {
        w.session
            .posterior(&engine, q.target, &q.evidence)
            .expect("stream queries are answerable");
        tables += engine
            .last_report()
            .map_or(0, |r| r.total_tables_allocated());
    }
    let total = start.elapsed().as_secs_f64();
    Cell {
        qps: queries.len() as f64 / total.max(1e-12),
        total_secs: total,
        tables_allocated: tables,
    }
}

fn run_pooled(w: &Workload, queries: &[Query], threads: usize) -> Cell {
    let engine = PooledEngine::new(SchedulerConfig::with_threads(threads));
    let jt = w.session.junction_tree();
    let graph = w.session.task_graph();
    // warm the arena outside the timed region: steady state is the
    // regime a service lives in
    engine
        .posterior(jt, graph, queries[0].target, &queries[0].evidence)
        .expect("stream queries are answerable");
    let mut tables = 0u64;
    let start = Instant::now();
    for q in queries {
        engine
            .posterior(jt, graph, q.target, &q.evidence)
            .expect("stream queries are answerable");
        tables += engine
            .last_report()
            .map_or(0, |r| r.total_tables_allocated());
    }
    let total = start.elapsed().as_secs_f64();
    Cell {
        qps: queries.len() as f64 / total.max(1e-12),
        total_secs: total,
        tables_allocated: tables,
    }
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .min(8);
    println!("# serving throughput: spawn-per-query vs persistent pool ({threads} threads)");
    evprop_bench::header(&[
        "workload",
        "queries",
        "spawn_qps",
        "pooled_qps",
        "speedup",
        "spawn_tables",
        "pooled_tables",
    ]);

    let mut json_rows = Vec::new();
    for w in workloads() {
        let queries = query_stream(&w, 0xC0FFEE);
        let spawn = run_spawning(&w, &queries, threads);
        let pooled = run_pooled(&w, &queries, threads);
        let speedup = pooled.qps / spawn.qps;
        println!(
            "{},{},{:.0},{:.0},{:.2},{},{}",
            w.name,
            queries.len(),
            spawn.qps,
            pooled.qps,
            speedup,
            spawn.tables_allocated,
            pooled.tables_allocated
        );
        json_rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"queries\": {}, \"threads\": {},\n",
                "     \"spawn_per_query\": {{\"qps\": {:.1}, \"total_secs\": {:.4}, ",
                "\"tables_allocated\": {}}},\n",
                "     \"pooled\": {{\"qps\": {:.1}, \"total_secs\": {:.4}, ",
                "\"tables_allocated\": {}}},\n",
                "     \"pooled_speedup\": {:.3}}}"
            ),
            w.name,
            queries.len(),
            threads,
            spawn.qps,
            spawn.total_secs,
            spawn.tables_allocated,
            pooled.qps,
            pooled.total_secs,
            pooled.tables_allocated,
            speedup
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("# wrote BENCH_serve.json");
}
