//! §7 text measurement: the cost of rerooting itself. The paper reports
//! 24 µs to re-root a 512-clique junction tree on the Opteron, versus
//! ~10⁵ µs for the whole propagation — i.e. negligible even though
//! Algorithm 1 is not parallelized.
//!
//! ```sh
//! cargo run -p evprop-bench --release --bin reroot_cost
//! ```

use evprop_bench::header;
use evprop_jtree::{select_root, select_root_naive};
use evprop_simcore::{simulate, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use evprop_workloads::fig4_template;
use evprop_workloads::presets::jt1;
use std::time::Instant;

fn time<T>(f: impl Fn() -> T, iters: usize) -> std::time::Duration {
    // warm up
    let _ = f();
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters as u32
}

fn main() {
    println!("# §7 — rerooting cost (paper: 24 µs for 512 cliques vs ~1e5 µs propagation)");
    header(&[
        "tree",
        "algorithm1",
        "naive_O(N^2)",
        "sim_propagation_units_P8",
    ]);
    let model = CostModel::default();
    for (name, shape) in [
        ("template_b1_512", fig4_template(1, 512, 15)),
        ("template_b8_512", fig4_template(8, 512, 15)),
        ("jt1_512", jt1()),
    ] {
        let fast = time(|| select_root(&shape), 100);
        let naive = time(|| select_root_naive(&shape), 10);
        let g = TaskGraph::from_shape(&shape);
        let prop = simulate(&g, Policy::collaborative(), 8, &model).makespan;
        println!("{name},{fast:?},{naive:?},{prop}");
    }
    println!("# Algorithm 1 is O(w_C N); the naive method is O(w_C N^2) — the gap above");
    println!("# is the paper's complexity claim made visible.");
}
