//! Property tests: Algorithm 1 agrees with the exhaustive O(N²) rerooter.

use evprop_jtree::{
    clique_cost, critical_path_weight, select_root, select_root_naive, CliqueId, TreeShape,
};
use evprop_potential::{Domain, VarId, Variable};
use proptest::prelude::*;

/// A random tree over n cliques: clique i > 0 attaches to a random
/// earlier clique. Widths vary per clique (1..=4 binary variables, all
/// distinct across cliques so costs vary but structure is a valid tree).
fn arb_tree() -> impl Strategy<Value = TreeShape> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..usize::MAX, n - 1),
            proptest::collection::vec(1usize..=4, n),
        )
            .prop_map(move |(parents, widths)| {
                let mut edges = Vec::with_capacity(n - 1);
                for i in 1..n {
                    edges.push((parents[i - 1] % i, i));
                }
                let mut next_var = 0u32;
                let domains: Vec<Domain> = widths
                    .iter()
                    .map(|&w| {
                        let vars: Vec<Variable> = (0..w)
                            .map(|_| {
                                let v = Variable::binary(VarId(next_var));
                                next_var += 1;
                                v
                            })
                            .collect();
                        Domain::new(vars).unwrap()
                    })
                    .collect();
                TreeShape::new(domains, &edges, 0).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Algorithm 1's root achieves the same minimal critical path as
    /// trying every root.
    #[test]
    fn algorithm1_matches_naive(shape in arb_tree()) {
        let fast = select_root(&shape);
        let naive = select_root_naive(&shape);
        prop_assert_eq!(
            fast.critical_path, naive.critical_path,
            "alg1 picked {:?}, naive picked {:?}", fast.root, naive.root
        );
    }

    /// The reported critical path matches a recomputation after actually
    /// re-rooting the tree.
    #[test]
    fn reported_weight_is_real(shape in arb_tree()) {
        let choice = select_root(&shape);
        let mut s = shape.clone();
        s.reroot(choice.root).unwrap();
        prop_assert_eq!(critical_path_weight(&s), choice.critical_path);
    }

    /// Rerooting never increases the critical path relative to the
    /// original root, and is idempotent.
    #[test]
    fn reroot_never_hurts(shape in arb_tree()) {
        let before = critical_path_weight(&shape);
        let choice = select_root(&shape);
        prop_assert!(choice.critical_path <= before);
        let mut s = shape.clone();
        s.reroot(choice.root).unwrap();
        let again = select_root(&s);
        prop_assert_eq!(again.critical_path, choice.critical_path);
    }

    /// Rerooting preserves the undirected topology: same neighbor sets,
    /// same total cost, every non-root clique's parent is a neighbor.
    #[test]
    fn reroot_preserves_structure(shape in arb_tree(), seed in 0usize..1000) {
        let n = shape.num_cliques();
        let target = CliqueId(seed % n);
        let mut s = shape.clone();
        s.reroot(target).unwrap();
        prop_assert_eq!(s.root(), target);
        let total_before: u64 = (0..n).map(|i| clique_cost(&shape, CliqueId(i))).sum();
        let total_after: u64 = (0..n).map(|i| clique_cost(&s, CliqueId(i))).sum();
        prop_assert_eq!(total_before, total_after);
        for i in 0..n {
            let c = CliqueId(i);
            let mut a: Vec<usize> = shape.neighbors(c).iter().map(|x| x.index()).collect();
            let mut b: Vec<usize> = s.neighbors(c).iter().map(|x| x.index()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            if let Some(p) = s.parent(c) {
                prop_assert!(s.neighbors(c).contains(&p));
            }
        }
        // parent/child arrays are consistent
        for i in 0..n {
            let c = CliqueId(i);
            for &ch in s.children(c) {
                prop_assert_eq!(s.parent(ch), Some(c));
            }
        }
    }

    /// Preorder visits every clique exactly once, parents first.
    #[test]
    fn preorder_well_formed(shape in arb_tree()) {
        let pre = shape.preorder();
        prop_assert_eq!(pre.len(), shape.num_cliques());
        let mut seen = vec![false; shape.num_cliques()];
        for &c in pre {
            if let Some(p) = shape.parent(c) {
                prop_assert!(seen[p.index()]);
            }
            prop_assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
