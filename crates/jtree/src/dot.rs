//! Graphviz export of junction trees.

use crate::{clique_cost, CliqueId, TreeShape};
use std::fmt::Write as _;

impl TreeShape {
    /// Renders the junction tree in Graphviz DOT syntax: one node per
    /// clique labeled with its variables and Eq. 2 cost, the root drawn
    /// doubled, and edges labeled with their separator variables.
    ///
    /// ```sh
    /// dot -Tsvg tree.dot -o tree.svg
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph junction_tree {\n  node [shape=ellipse, fontsize=10];\n");
        for c in (0..self.num_cliques()).map(CliqueId) {
            let vars: Vec<String> = self
                .domain(c)
                .vars()
                .iter()
                .map(|v| v.id().to_string())
                .collect();
            let peripheries = if c == self.root() { 2 } else { 1 };
            let _ = writeln!(
                out,
                "  c{} [label=\"{}: {{{}}}\\ncost {}\", peripheries={}];",
                c.index(),
                c,
                vars.join(","),
                clique_cost(self, c),
                peripheries,
            );
        }
        for c in (0..self.num_cliques()).map(CliqueId) {
            if let Some(p) = self.parent(c) {
                let sep: Vec<String> = self
                    .parent_separator(c)
                    .vars()
                    .iter()
                    .map(|v| v.id().to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "  c{} -- c{} [label=\"{}\"];",
                    p.index(),
                    c.index(),
                    sep.join(",")
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{Domain, VarId, Variable};

    #[test]
    fn dot_lists_cliques_and_separators() {
        let d0 = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(1)), Variable::binary(VarId(2))]).unwrap();
        let shape = TreeShape::new(vec![d0, d1], &[(0, 1)], 0).unwrap();
        let dot = shape.to_dot();
        assert!(dot.starts_with("graph junction_tree {"));
        assert!(dot.contains("c0 [label=\"C0: {V0,V1}"));
        assert!(dot.contains("c1 [label=\"C1: {V1,V2}"));
        assert!(dot.contains("c0 -- c1 [label=\"V1\"]"));
        // root drawn doubled
        assert!(dot.contains("peripheries=2"));
        assert_eq!(dot.matches(" -- ").count(), 1);
    }
}
