//! Moralization: Bayesian network → undirected moral graph.

use evprop_bayesnet::BayesianNetwork;
use evprop_potential::VarId;

/// The moral graph of a Bayesian network: the undirected graph obtained
/// by "marrying" the parents of every node (connecting them pairwise) and
/// dropping edge directions. First step of junction-tree compilation.
#[derive(Clone, Debug)]
pub struct MoralGraph {
    /// Adjacency sets, indexed by variable position; sorted, deduplicated.
    adj: Vec<Vec<VarId>>,
}

impl MoralGraph {
    /// Moralizes `net`.
    pub fn of(net: &BayesianNetwork) -> Self {
        let n = net.num_vars();
        let mut adj: Vec<Vec<VarId>> = vec![Vec::new(); n];
        let add = |adj: &mut Vec<Vec<VarId>>, a: VarId, b: VarId| {
            if a != b {
                adj[a.index()].push(b);
                adj[b.index()].push(a);
            }
        };
        for i in 0..n as u32 {
            let v = VarId(i);
            let parents = net.parents_of(v);
            for &p in parents {
                add(&mut adj, v, p);
            }
            // marry parents pairwise
            for (x, &p) in parents.iter().enumerate() {
                for &q in &parents[x + 1..] {
                    add(&mut adj, p, q);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        MoralGraph { adj }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of `v`, sorted by id.
    pub fn neighbors(&self, v: VarId) -> &[VarId] {
        &self.adj[v.index()]
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: VarId, b: VarId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Consumes the graph into raw adjacency lists (used by
    /// triangulation).
    pub(crate) fn into_adj(self) -> Vec<Vec<VarId>> {
        self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks::{sprinkler, wet_grass_vars};

    #[test]
    fn sprinkler_moralization_marries_parents() {
        let net = sprinkler();
        let (c, s, r, w) = wet_grass_vars();
        let m = MoralGraph::of(&net);
        // original edges
        assert!(m.has_edge(c, s));
        assert!(m.has_edge(c, r));
        assert!(m.has_edge(s, w));
        assert!(m.has_edge(r, w));
        // moral edge between WetGrass's parents
        assert!(m.has_edge(s, r));
        assert_eq!(m.num_edges(), 5);
        assert_eq!(m.num_vertices(), 4);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let net = sprinkler();
        let m = MoralGraph::of(&net);
        for i in 0..4u32 {
            let v = VarId(i);
            let nb = m.neighbors(v);
            assert!(!nb.contains(&v));
            let mut s = nb.to_vec();
            s.dedup();
            assert_eq!(s.len(), nb.len());
        }
    }
}
