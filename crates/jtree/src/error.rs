//! Error type for junction-tree construction and validation.

use evprop_potential::{PotentialError, VarId};
use std::error::Error;
use std::fmt;

/// Errors produced while compiling or validating junction trees.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JtreeError {
    /// The clique graph is not a tree (wrong edge count or disconnected).
    NotATree {
        /// Number of cliques.
        cliques: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// An edge referenced a clique id out of range.
    BadCliqueId(usize),
    /// The running-intersection property is violated for a variable.
    RunningIntersectionViolated(VarId),
    /// A separator between adjacent cliques is empty (the tree would not
    /// propagate information across that edge).
    EmptySeparator {
        /// One endpoint.
        a: usize,
        /// Other endpoint.
        b: usize,
    },
    /// A clique potential's domain does not match the clique's domain.
    PotentialDomainMismatch(usize),
    /// A CPT could not be assigned to any clique (triangulation bug or
    /// malformed input).
    UnassignableCpt(VarId),
    /// An underlying potential-table operation failed.
    Potential(PotentialError),
}

impl fmt::Display for JtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JtreeError::NotATree { cliques, edges } => write!(
                f,
                "clique graph with {cliques} cliques and {edges} edges is not a tree"
            ),
            JtreeError::BadCliqueId(i) => write!(f, "clique id {i} out of range"),
            JtreeError::RunningIntersectionViolated(v) => {
                write!(f, "running-intersection property violated for variable {v}")
            }
            JtreeError::EmptySeparator { a, b } => {
                write!(f, "separator between cliques {a} and {b} is empty")
            }
            JtreeError::PotentialDomainMismatch(i) => {
                write!(f, "potential of clique {i} has mismatched domain")
            }
            JtreeError::UnassignableCpt(v) => {
                write!(f, "no clique covers the CPT family of variable {v}")
            }
            JtreeError::Potential(e) => write!(f, "potential-table error: {e}"),
        }
    }
}

impl Error for JtreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JtreeError::Potential(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PotentialError> for JtreeError {
    fn from(e: PotentialError) -> Self {
        JtreeError::Potential(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = vec![
            JtreeError::NotATree {
                cliques: 3,
                edges: 1,
            },
            JtreeError::BadCliqueId(5),
            JtreeError::RunningIntersectionViolated(VarId(1)),
            JtreeError::EmptySeparator { a: 0, b: 1 },
            JtreeError::PotentialDomainMismatch(2),
            JtreeError::UnassignableCpt(VarId(3)),
            JtreeError::Potential(PotentialError::UnknownVariable(VarId(0))),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
