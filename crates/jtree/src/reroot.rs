//! Junction-tree rerooting for minimizing the critical path (§4 of the
//! paper, Algorithm 1), plus the straightforward `O(w_C · N²)` method it
//! is compared against.
//!
//! ## Cost model (Eq. 2)
//!
//! The weight of a path is the sum of per-clique terms
//! `k_t · w_Ct · |ψ_Ct|` — degree × width × potential-table size — the
//! serial cost of the node-level primitives a clique executes during the
//! two propagation phases. The *critical path* of a rooted tree is the
//! heaviest root-to-leaf path; evidence propagation takes at least that
//! long regardless of core count, so the root minimizing it maximizes
//! available parallelism.
//!
//! ## Algorithm 1 in brief
//!
//! A bottom-up sweep computes, per clique, the heaviest (`p_i`) and
//! second-heaviest (`q_i`) child subtree chains; the clique maximizing
//! `v_i + v_{q_i}` sits on a maximum-weight leaf-to-leaf path, recovered
//! by descending the two chains (Lemma 1). The new root is the path
//! clique balancing the two sides, which minimizes the rooted tree's
//! eccentricity. Total cost `O(w_C · N)` versus `O(w_C · N²)` for trying
//! every root.
//!
//! Line 17 of the paper picks the path clique minimizing
//! `|L(x,C) − L(C,y)|`; we minimize `max(L(x,C), L(C,y))` instead, which
//! is the quantity the critical path actually depends on. The two rules
//! coincide when clique costs are uniform (all the paper's workloads);
//! the max rule is never worse.

use crate::{CliqueId, TreeShape};

/// Outcome of root selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootChoice {
    /// The selected root clique.
    pub root: CliqueId,
    /// The critical-path weight the tree has when rooted there.
    pub critical_path: u64,
}

/// The per-clique term of Eq. 2: `k_t · w_Ct · |ψ_Ct|` (degree × width ×
/// table size). Degree and width are clamped to at least 1 so single-
/// clique trees and scalar cliques still carry their table cost.
pub fn clique_cost(shape: &TreeShape, c: CliqueId) -> u64 {
    let k = shape.degree(c).max(1) as u64;
    let w = shape.domain(c).width().max(1) as u64;
    let size = shape.domain(c).size() as u64;
    k * w * size
}

/// Critical-path weight of the tree under its *current* root: the
/// maximum over cliques of the root-to-clique path weight (Eq. 2 summed
/// over path cliques, both endpoints included).
pub fn critical_path_weight(shape: &TreeShape) -> u64 {
    eccentricity(shape, shape.root())
}

/// Path-weight eccentricity of candidate root `r`, computed over the
/// undirected topology in O(N).
fn eccentricity(shape: &TreeShape, r: CliqueId) -> u64 {
    let n = shape.num_cliques();
    if n == 0 {
        return 0;
    }
    let mut dist = vec![0u64; n];
    let mut visited = vec![false; n];
    let mut stack = vec![r];
    visited[r.index()] = true;
    dist[r.index()] = clique_cost(shape, r);
    let mut max = dist[r.index()];
    while let Some(c) = stack.pop() {
        for &nb in shape.neighbors(c) {
            if !visited[nb.index()] {
                visited[nb.index()] = true;
                dist[nb.index()] = dist[c.index()] + clique_cost(shape, nb);
                max = max.max(dist[nb.index()]);
                stack.push(nb);
            }
        }
    }
    max
}

/// The straightforward root selection (§4): evaluate the critical path
/// for every candidate root and keep the minimum. `O(w_C · N²)`.
/// Deterministic: ties break toward the smaller clique id.
pub fn select_root_naive(shape: &TreeShape) -> RootChoice {
    let mut best = RootChoice {
        root: shape.root(),
        critical_path: u64::MAX,
    };
    for c in (0..shape.num_cliques()).map(CliqueId) {
        let ecc = eccentricity(shape, c);
        if ecc < best.critical_path {
            best = RootChoice {
                root: c,
                critical_path: ecc,
            };
        }
    }
    best
}

/// **Algorithm 1**: root selection minimizing the critical path in
/// `O(w_C · N)`.
///
/// ```
/// use evprop_jtree::{critical_path_weight, select_root};
/// use evprop_bayesnet::networks;
/// let mut jt = evprop_jtree::JunctionTree::from_network(&networks::asia())?;
/// let choice = select_root(jt.shape());
/// jt.reroot(choice.root)?;
/// assert_eq!(critical_path_weight(jt.shape()), choice.critical_path);
/// # Ok::<(), evprop_jtree::JtreeError>(())
/// ```
///
/// # Panics
///
/// Panics on an empty tree.
pub fn select_root(shape: &TreeShape) -> RootChoice {
    let n = shape.num_cliques();
    assert!(n > 0, "cannot select a root of an empty junction tree");

    // Lines 1–6: bottom-up sweep over the current orientation.
    // v[i]   — weight of the heaviest chain from C_i down to a leaf of its
    //          subtree (own cost included);
    // p[i]   — child starting that chain;
    // q[i]   — child starting the second-heaviest chain.
    let mut v: Vec<u64> = (0..n).map(|i| clique_cost(shape, CliqueId(i))).collect();
    let mut p: Vec<Option<CliqueId>> = vec![None; n];
    let mut q: Vec<Option<CliqueId>> = vec![None; n];
    for &c in shape.postorder().iter() {
        let mut best: Option<(u64, CliqueId)> = None;
        let mut second: Option<(u64, CliqueId)> = None;
        for &ch in shape.children(c) {
            let vc = v[ch.index()];
            match best {
                None => best = Some((vc, ch)),
                Some((bv, _)) if vc > bv => {
                    second = best;
                    best = Some((vc, ch));
                }
                _ => match second {
                    None => second = Some((vc, ch)),
                    Some((sv, _)) if vc > sv => second = Some((vc, ch)),
                    _ => {}
                },
            }
        }
        p[c.index()] = best.map(|(_, ch)| ch);
        q[c.index()] = second.map(|(_, ch)| ch);
        if let Some((bv, _)) = best {
            v[c.index()] += bv;
        }
    }

    // Line 7: the clique where the two heaviest chains meet.
    let m = (0..n)
        .map(CliqueId)
        .max_by_key(|c| {
            (
                v[c.index()] + q[c.index()].map_or(0, |ch| v[ch.index()]),
                // deterministic tie-break: smaller id wins via Reverse
                std::cmp::Reverse(c.index()),
            )
        })
        .expect("n > 0");

    // Lines 8–15: materialize the leaf-to-leaf path x ⋯ m ⋯ y.
    let mut path: Vec<CliqueId> = Vec::new();
    let mut c = m;
    loop {
        path.push(c);
        match p[c.index()] {
            Some(ch) => c = ch,
            None => break,
        }
    }
    path.reverse(); // now leaf x … m
    if let Some(mut c) = q[m.index()] {
        loop {
            path.push(c);
            match p[c.index()] {
                Some(ch) => c = ch,
                None => break,
            }
        }
    }

    // Line 17: balance point of the path. Prefix sums give L(x, C_i) and
    // L(C_i, y) in O(|path|).
    let costs: Vec<u64> = path.iter().map(|&c| clique_cost(shape, c)).collect();
    let total: u64 = costs.iter().sum();
    let mut prefix = 0u64; // L(x, C_i) inclusive
    let mut best: Option<(u64, CliqueId)> = None;
    for (i, &c) in path.iter().enumerate() {
        prefix += costs[i];
        let from_x = prefix;
        let to_y = total - prefix + costs[i];
        let worse_side = from_x.max(to_y);
        match best {
            None => best = Some((worse_side, c)),
            Some((b, _)) if worse_side < b => best = Some((worse_side, c)),
            _ => {}
        }
    }
    let root = best.expect("path is nonempty").1;
    RootChoice {
        root,
        critical_path: eccentricity(shape, root),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{Domain, VarId, Variable};

    /// Builds a shape whose cliques all contain `width` binary variables
    /// sharing one variable with their parent (a fresh chain per edge is
    /// irrelevant for cost testing; costs are uniform).
    fn uniform_tree(edges: &[(usize, usize)], n: usize, width: usize) -> TreeShape {
        // clique i gets variables {base_i .. base_i + width-1} with the
        // first variable shared with the parent to keep RIP-ish structure;
        // for cost tests only structure matters.
        let mut domains = Vec::with_capacity(n);
        for i in 0..n {
            let vars: Vec<Variable> = (0..width)
                .map(|j| Variable::binary(VarId((i * width + j) as u32)))
                .collect();
            domains.push(Domain::new(vars).unwrap());
        }
        TreeShape::new(domains, edges, 0).unwrap()
    }

    /// A path of n cliques 0-1-2-…-(n-1).
    fn path(n: usize, width: usize) -> TreeShape {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        uniform_tree(&edges, n, width)
    }

    #[test]
    fn path_center_is_optimal_root() {
        let shape = path(9, 2);
        let alg = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(alg.critical_path, naive.critical_path);
        assert_eq!(alg.root, CliqueId(4)); // exact middle
    }

    #[test]
    fn star_center_already_optimal() {
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        let shape = uniform_tree(&edges, 6, 2);
        let alg = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(alg.critical_path, naive.critical_path);
        assert_eq!(alg.root, CliqueId(0));
    }

    #[test]
    fn critical_path_halves_on_rerooted_path() {
        // Rooted at one end, the critical path is the entire chain; at the
        // center it is about half — the mechanism behind Fig. 5's ≤2×.
        let mut shape = path(16, 2);
        let before = critical_path_weight(&shape);
        let choice = select_root(&shape);
        shape.reroot(choice.root).unwrap();
        let after = critical_path_weight(&shape);
        assert_eq!(after, choice.critical_path);
        assert!(after * 2 <= before + clique_cost(&shape, choice.root) * 2);
        assert!(after < before);
    }

    #[test]
    fn template_tree_reroot_matches_paper_fig4() {
        // Fig. 4: root R has one long branch (Branch 0) and b short
        // branches hanging off R'; rerooting moves the root toward the
        // balance point between Branch 0 and the longest other branch.
        // Build: R=0; Branch0 = 0-1-2-...-9 (long); R'=10 attached to 0;
        // branches of length 4 at R'.
        let mut edges = vec![];
        for i in 1..10 {
            edges.push((i - 1, i));
        }
        edges.push((0, 10));
        let mut next = 11;
        for _b in 0..3 {
            let mut prev = 10;
            for _ in 0..4 {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let shape = uniform_tree(&edges, next, 2);
        let alg = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(alg.critical_path, naive.critical_path);
        // optimal root is strictly better than the original
        assert!(alg.critical_path < eccentricity_pub(&shape, CliqueId(0)));
    }

    fn eccentricity_pub(shape: &TreeShape, c: CliqueId) -> u64 {
        let mut s = shape.clone();
        s.reroot(c).unwrap();
        critical_path_weight(&s)
    }

    #[test]
    fn single_clique() {
        let shape = path(1, 3);
        let alg = select_root(&shape);
        assert_eq!(alg.root, CliqueId(0));
        assert_eq!(alg.critical_path, clique_cost(&shape, CliqueId(0)));
    }

    #[test]
    fn two_cliques() {
        let shape = path(2, 2);
        let alg = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(alg.critical_path, naive.critical_path);
    }

    #[test]
    fn cost_includes_degree_width_size() {
        let shape = path(3, 2);
        // middle clique has degree 2 -> cost 2 * 2 * 4 = 16; ends 1*2*4=8
        assert_eq!(clique_cost(&shape, CliqueId(0)), 8);
        assert_eq!(clique_cost(&shape, CliqueId(1)), 16);
    }

    #[test]
    fn reroot_does_not_change_undirected_critical_structure() {
        let shape = path(7, 2);
        let choice = select_root(&shape);
        let mut s2 = shape.clone();
        s2.reroot(choice.root).unwrap();
        // selecting again is idempotent
        let again = select_root(&s2);
        assert_eq!(again.critical_path, choice.critical_path);
    }
}
