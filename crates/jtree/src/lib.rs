//! Junction trees: compilation from Bayesian networks, tree shapes, and
//! the paper's **rerooting algorithm** (§4, Algorithm 1).
//!
//! A junction tree `J = (T, P̂)` is a tree of *cliques* (sets of random
//! variables) satisfying the running-intersection property, with a
//! potential table per clique. Exact inference propagates evidence over
//! the tree in two phases (collect, distribute); the length of the
//! longest weighted root-to-leaf path — the **critical path** — lower
//! bounds parallel execution time, and this crate implements the paper's
//! `O(w_C · N)` root-selection algorithm that minimizes it, alongside the
//! straightforward `O(w_C · N²)` method used for cross-checking.
//!
//! # Pipeline
//!
//! ```
//! use evprop_bayesnet::networks;
//! use evprop_jtree::JunctionTree;
//!
//! let net = networks::asia();
//! let jt = JunctionTree::from_network(&net).unwrap();
//! assert!(jt.shape().validate().is_ok());
//! // Re-root at the critical-path-minimizing clique:
//! let best = evprop_jtree::select_root(jt.shape());
//! # let _ = best;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod dot;
mod error;
mod moral;
mod reroot;
mod shape;
mod tree;
mod triangulate;

pub use compile::{compile_network, compile_network_with};
pub use error::JtreeError;
pub use moral::MoralGraph;
pub use reroot::{clique_cost, critical_path_weight, select_root, select_root_naive, RootChoice};
pub use shape::{CliqueId, TreeShape};
pub use tree::JunctionTree;
pub use triangulate::{
    triangulate_min_fill, triangulate_with, EliminationHeuristic, Triangulation,
};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, JtreeError>;
