//! Bayesian network → junction tree compilation.

use crate::{
    triangulate_with, CliqueId, EliminationHeuristic, JtreeError, JunctionTree, MoralGraph, Result,
    TreeShape,
};
use evprop_bayesnet::BayesianNetwork;
use evprop_potential::{Domain, PotentialTable, Variable};

/// Full Lauritzen–Spiegelhalter compilation pipeline; see
/// [`JunctionTree::from_network`] for the public entry point.
pub fn compile_network(net: &BayesianNetwork) -> Result<JunctionTree> {
    compile_network_with(net, EliminationHeuristic::MinFill)
}

/// Like [`compile_network`] with an explicit triangulation heuristic.
pub fn compile_network_with(
    net: &BayesianNetwork,
    heuristic: EliminationHeuristic,
) -> Result<JunctionTree> {
    let tri = triangulate_with(MoralGraph::of(net), heuristic);

    // Clique domains with real cardinalities.
    let domains: Vec<Domain> = tri
        .cliques
        .iter()
        .map(|ids| {
            Domain::new(
                ids.iter()
                    .map(|&v| Variable::new(v, net.var(v).cardinality()))
                    .collect::<Vec<_>>(),
            )
            .map_err(JtreeError::from)
        })
        .collect::<Result<_>>()?;

    let edges = maximum_weight_spanning_tree(&domains);
    let shape = TreeShape::new(domains, &edges, 0)?;

    // Assign each CPT to one clique covering its family; multiply in.
    let mut potentials: Vec<PotentialTable> = shape
        .domains()
        .iter()
        .map(|d| PotentialTable::ones(d.clone()))
        .collect();
    for cpt in net.cpts() {
        let fam = cpt.table().domain();
        let target = (0..shape.num_cliques())
            .map(CliqueId)
            .filter(|&c| shape.domain(c).is_superset_of(fam))
            // smallest covering clique keeps the multiply cheap
            .min_by_key(|&c| shape.domain(c).size())
            .ok_or_else(|| JtreeError::UnassignableCpt(cpt.child().id()))?;
        potentials[target.index()].multiply_assign(cpt.table())?;
    }

    JunctionTree::from_parts(shape, potentials)
}

/// Kruskal over clique pairs with weight = separator size (number of
/// shared variables), keeping the heaviest separators — the standard way
/// to realize the running-intersection property over maximal elimination
/// cliques. Components that share no variables (a disconnected network)
/// are finally linked with empty separators so the result is a single
/// tree; propagation across an empty separator carries only a scalar and
/// is mathematically a no-op between independent components.
fn maximum_weight_spanning_tree(domains: &[Domain]) -> Vec<(usize, usize)> {
    let n = domains.len();
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new(); // (weight, a, b)
    for a in 0..n {
        for b in a + 1..n {
            let w = domains[a].intersect(&domains[b]).width();
            if w > 0 {
                pairs.push((w, a, b));
            }
        }
    }
    // heaviest first; deterministic tie-break on (a, b)
    pairs.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

    let mut dsu = Dsu::new(n);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for (_, a, b) in pairs {
        if dsu.union(a, b) {
            edges.push((a, b));
        }
    }
    // link leftover components (disconnected networks)
    for b in 1..n {
        if dsu.union(0, b) {
            edges.push((0, b));
        }
    }
    edges
}

/// Minimal union-find with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks::{asia, chain, student};

    #[test]
    fn chain_compiles_to_path_of_pair_cliques() {
        let jt = compile_network(&chain(6)).unwrap();
        assert_eq!(jt.num_cliques(), 5);
        jt.shape().validate().unwrap();
        for c in 0..5 {
            assert_eq!(jt.shape().domain(CliqueId(c)).width(), 2);
        }
    }

    #[test]
    fn asia_separators_nonempty() {
        let jt = compile_network(&asia()).unwrap();
        for c in (0..jt.num_cliques()).map(CliqueId) {
            if jt.shape().parent(c).is_some() {
                assert!(!jt.shape().parent_separator(c).is_empty());
            }
        }
    }

    #[test]
    fn student_mass_is_one() {
        let jt = compile_network(&student()).unwrap();
        let total: f64 = jt
            .potentials()
            .iter()
            .fold(PotentialTable::scalar(1.0), |acc, p| {
                acc.product(p).unwrap()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_network_still_forms_tree() {
        // two independent binary pairs
        let mut b = evprop_bayesnet::BayesianNetworkBuilder::new();
        let a0 = b.add_variable(2);
        let a1 = b.add_variable(2);
        let c0 = b.add_variable(2);
        let c1 = b.add_variable(2);
        b.set_prior(a0, vec![0.3, 0.7]).unwrap();
        b.set_cpt(a1, &[a0], vec![vec![0.9, 0.1], vec![0.4, 0.6]])
            .unwrap();
        b.set_prior(c0, vec![0.5, 0.5]).unwrap();
        b.set_cpt(c1, &[c0], vec![vec![0.8, 0.2], vec![0.1, 0.9]])
            .unwrap();
        let net = b.build().unwrap();
        let jt = compile_network(&net).unwrap();
        // single tree despite two components
        assert_eq!(jt.num_cliques(), 2);
    }
}
