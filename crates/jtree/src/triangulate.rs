//! Triangulation via the min-fill elimination heuristic, and maximal
//! clique extraction.

use crate::MoralGraph;
use evprop_potential::VarId;
use std::collections::BTreeSet;

/// Greedy vertex-selection rule for triangulation (optimal triangulation
/// is NP-hard; both classics below are standard in junction-tree
/// compilers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EliminationHeuristic {
    /// Eliminate the vertex whose elimination adds the fewest fill-in
    /// edges. Usually yields the smallest cliques; costs O(deg²) per
    /// candidate.
    #[default]
    MinFill,
    /// Eliminate the vertex of smallest current degree. Cheaper to
    /// evaluate, often slightly larger cliques.
    MinDegree,
}

/// Result of triangulating a moral graph: the elimination order used and
/// the maximal cliques of the triangulated graph.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// The elimination order chosen by the heuristic.
    pub order: Vec<VarId>,
    /// Maximal cliques (as sorted variable-id sets) of the triangulated
    /// graph, in the order their elimination completed.
    pub cliques: Vec<Vec<VarId>>,
}

impl Triangulation {
    /// Induced width of the elimination order: the largest clique size
    /// minus one (an upper bound on the graph's treewidth).
    pub fn induced_width(&self) -> usize {
        self.cliques.iter().map(Vec::len).max().unwrap_or(1) - 1
    }
}

/// Triangulates with the default **min-fill** heuristic; see
/// [`triangulate_with`].
pub fn triangulate_min_fill(graph: MoralGraph) -> Triangulation {
    triangulate_with(graph, EliminationHeuristic::MinFill)
}

/// Triangulates the moral graph with the chosen greedy heuristic (ties
/// broken by smaller id, making the result deterministic). Eliminating a
/// vertex connects its surviving neighbors pairwise and records
/// `{v} ∪ N(v)` as an elimination clique; cliques subsumed by an earlier
/// one are pruned, leaving the maximal cliques.
pub fn triangulate_with(graph: MoralGraph, heuristic: EliminationHeuristic) -> Triangulation {
    let n = graph.num_vertices();
    // Work on BTreeSet adjacency for cheap edge insertion/removal.
    let mut adj: Vec<BTreeSet<VarId>> = graph
        .into_adj()
        .into_iter()
        .map(|l| l.into_iter().collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut cliques: Vec<Vec<VarId>> = Vec::new();

    for _ in 0..n {
        // pick the alive vertex minimizing the heuristic's score
        let mut best: Option<(usize, VarId)> = None;
        for v in (0..n as u32).map(VarId) {
            if !alive[v.index()] {
                continue;
            }
            let score = match heuristic {
                EliminationHeuristic::MinFill => fill_in_count(&adj, v),
                EliminationHeuristic::MinDegree => adj[v.index()].len(),
            };
            match best {
                None => best = Some((score, v)),
                Some((bf, bv)) => {
                    if score < bf || (score == bf && v < bv) {
                        best = Some((score, v));
                    }
                }
            }
        }
        let (_, v) = best.expect("at least one vertex is alive");

        // elimination clique = {v} ∪ N(v)
        let mut clique: Vec<VarId> = adj[v.index()].iter().copied().collect();
        clique.push(v);
        clique.sort_unstable();

        // connect surviving neighbors pairwise (fill edges)
        let nbs: Vec<VarId> = adj[v.index()].iter().copied().collect();
        for (i, &a) in nbs.iter().enumerate() {
            for &b in &nbs[i + 1..] {
                adj[a.index()].insert(b);
                adj[b.index()].insert(a);
            }
        }
        // remove v
        for &a in &nbs {
            adj[a.index()].remove(&v);
        }
        adj[v.index()].clear();
        alive[v.index()] = false;
        order.push(v);

        // keep clique only if not subsumed by an existing one
        if !cliques
            .iter()
            .any(|c| clique.iter().all(|x| c.binary_search(x).is_ok()))
        {
            // drop earlier cliques subsumed by the new one
            cliques.retain(|c| !c.iter().all(|x| clique.binary_search(x).is_ok()));
            cliques.push(clique);
        }
    }

    Triangulation { order, cliques }
}

/// Number of missing edges among the alive neighbors of `v`.
fn fill_in_count(adj: &[BTreeSet<VarId>], v: VarId) -> usize {
    let nbs: Vec<VarId> = adj[v.index()].iter().copied().collect();
    let mut missing = 0;
    for (i, &a) in nbs.iter().enumerate() {
        for &b in &nbs[i + 1..] {
            if !adj[a.index()].contains(&b) {
                missing += 1;
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks::{asia, sprinkler};

    #[test]
    fn sprinkler_cliques() {
        let tri = triangulate_min_fill(MoralGraph::of(&sprinkler()));
        assert_eq!(tri.order.len(), 4);
        // The sprinkler moral graph has maximal cliques {C,S,R} and {S,R,W}.
        assert_eq!(tri.cliques.len(), 2);
        for c in &tri.cliques {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn asia_cliques_cover_all_families() {
        let net = asia();
        let tri = triangulate_min_fill(MoralGraph::of(&net));
        // every CPT family {child} ∪ parents must fit inside some clique
        for cpt in net.cpts() {
            let mut fam: Vec<VarId> = cpt.parents().iter().map(|p| p.id()).collect();
            fam.push(cpt.child().id());
            fam.sort_unstable();
            assert!(
                tri.cliques
                    .iter()
                    .any(|c| fam.iter().all(|x| c.binary_search(x).is_ok())),
                "family {fam:?} not covered"
            );
        }
    }

    #[test]
    fn cliques_are_maximal() {
        let tri = triangulate_min_fill(MoralGraph::of(&asia()));
        for (i, a) in tri.cliques.iter().enumerate() {
            for (j, b) in tri.cliques.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.iter().all(|x| b.binary_search(x).is_ok()),
                        "clique {a:?} subsumed by {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = triangulate_min_fill(MoralGraph::of(&asia()));
        let b = triangulate_min_fill(MoralGraph::of(&asia()));
        assert_eq!(a.order, b.order);
        assert_eq!(a.cliques, b.cliques);
    }

    #[test]
    fn min_degree_also_covers_families() {
        let net = asia();
        let tri = triangulate_with(MoralGraph::of(&net), EliminationHeuristic::MinDegree);
        for cpt in net.cpts() {
            let mut fam: Vec<VarId> = cpt.parents().iter().map(|p| p.id()).collect();
            fam.push(cpt.child().id());
            fam.sort_unstable();
            assert!(tri
                .cliques
                .iter()
                .any(|c| fam.iter().all(|x| c.binary_search(x).is_ok())));
        }
        // both heuristics stay within a sane width on asia
        let mf = triangulate_with(MoralGraph::of(&net), EliminationHeuristic::MinFill);
        assert!(tri.induced_width() <= 4);
        assert!(mf.induced_width() <= tri.induced_width() + 1);
    }
}
