//! The junction tree proper: a [`TreeShape`] plus one potential table per
//! clique.

use crate::{compile::compile_network, CliqueId, JtreeError, Result, TreeShape};
use evprop_bayesnet::BayesianNetwork;
use evprop_potential::{PotentialTable, VarId};
use std::fmt;

/// A junction tree `J = (T, P̂)`: tree structure plus clique potentials.
///
/// The potentials stored here are the *initial* ones (products of the
/// assigned CPTs, before any evidence or propagation); the inference
/// engines clone them into working state, so one compiled tree can serve
/// many queries.
#[derive(Clone)]
pub struct JunctionTree {
    shape: TreeShape,
    potentials: Vec<PotentialTable>,
}

impl JunctionTree {
    /// Compiles a Bayesian network into a junction tree: moralization →
    /// min-fill triangulation → maximal cliques → maximum-weight spanning
    /// clique tree → CPT assignment (Lauritzen–Spiegelhalter pipeline).
    ///
    /// The initial root is clique 0; callers typically re-root using
    /// [`crate::select_root`] before parallel propagation.
    ///
    /// # Errors
    ///
    /// Propagates structural errors; [`JtreeError::UnassignableCpt`]
    /// indicates an internal triangulation bug.
    pub fn from_network(net: &BayesianNetwork) -> Result<Self> {
        compile_network(net)
    }

    /// Like [`JunctionTree::from_network`] with an explicit triangulation
    /// heuristic (see [`crate::EliminationHeuristic`]).
    ///
    /// # Errors
    ///
    /// Same as [`JunctionTree::from_network`].
    pub fn from_network_with(
        net: &BayesianNetwork,
        heuristic: crate::EliminationHeuristic,
    ) -> Result<Self> {
        crate::compile::compile_network_with(net, heuristic)
    }

    /// Assembles a junction tree from parts, validating that each
    /// potential's domain equals its clique's domain.
    ///
    /// # Errors
    ///
    /// [`JtreeError::PotentialDomainMismatch`] on any mismatch;
    /// [`JtreeError::NotATree`] if counts disagree.
    pub fn from_parts(shape: TreeShape, potentials: Vec<PotentialTable>) -> Result<Self> {
        if potentials.len() != shape.num_cliques() {
            return Err(JtreeError::NotATree {
                cliques: shape.num_cliques(),
                edges: potentials.len(),
            });
        }
        for (i, p) in potentials.iter().enumerate() {
            if p.domain() != shape.domain(CliqueId(i)) {
                return Err(JtreeError::PotentialDomainMismatch(i));
            }
        }
        Ok(JunctionTree { shape, potentials })
    }

    /// The structural part of the tree.
    #[inline]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The initial potential of a clique.
    #[inline]
    pub fn potential(&self, c: CliqueId) -> &PotentialTable {
        &self.potentials[c.index()]
    }

    /// All initial clique potentials, indexed by clique id.
    #[inline]
    pub fn potentials(&self) -> &[PotentialTable] {
        &self.potentials
    }

    /// Number of cliques.
    #[inline]
    pub fn num_cliques(&self) -> usize {
        self.shape.num_cliques()
    }

    /// Re-roots the tree (structure only; potentials are per-clique and
    /// unaffected). See [`TreeShape::reroot`].
    ///
    /// # Errors
    ///
    /// [`JtreeError::BadCliqueId`] for an out-of-range clique.
    pub fn reroot(&mut self, new_root: CliqueId) -> Result<()> {
        self.shape.reroot(new_root)
    }

    /// Some clique whose domain contains `var` (the smallest such, which
    /// minimizes marginalization cost for queries), or `None` if the
    /// variable appears nowhere.
    pub fn clique_containing(&self, var: VarId) -> Option<CliqueId> {
        (0..self.num_cliques())
            .map(CliqueId)
            .filter(|&c| self.shape.domain(c).contains(var))
            .min_by_key(|&c| self.shape.domain(c).size())
    }

    /// Splits into parts (shape, potentials) — the inverse of
    /// [`JunctionTree::from_parts`].
    pub fn into_parts(self) -> (TreeShape, Vec<PotentialTable>) {
        (self.shape, self.potentials)
    }
}

impl fmt::Debug for JunctionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JunctionTree({} cliques, max width {}, {} total entries)",
            self.num_cliques(),
            self.shape.max_width(),
            self.shape.total_state_space()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeShape;
    use evprop_bayesnet::networks::{asia, sprinkler};
    use evprop_potential::{Domain, Variable};

    #[test]
    fn compile_sprinkler() {
        let jt = JunctionTree::from_network(&sprinkler()).unwrap();
        assert_eq!(jt.num_cliques(), 2);
        jt.shape().validate().unwrap();
        // the product of all clique potentials must equal the joint:
        // total mass of the tree = 1 after multiplying all CPTs in.
        let total: f64 = jt
            .potentials()
            .iter()
            .fold(evprop_potential::PotentialTable::scalar(1.0), |acc, p| {
                acc.product(p).unwrap()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compile_asia() {
        let jt = JunctionTree::from_network(&asia()).unwrap();
        assert!(jt.num_cliques() >= 5);
        jt.shape().validate().unwrap();
        for i in 0..8u32 {
            assert!(jt.clique_containing(VarId(i)).is_some());
        }
        assert!(format!("{jt:?}").contains("cliques"));
    }

    #[test]
    fn from_parts_validates() {
        let d = Domain::new(vec![Variable::binary(VarId(0))]).unwrap();
        let d2 = Domain::new(vec![Variable::binary(VarId(1))]).unwrap();
        let shape = TreeShape::new(vec![d.clone()], &[], 0).unwrap();
        assert!(matches!(
            JunctionTree::from_parts(shape.clone(), vec![PotentialTable::ones(d2)]),
            Err(JtreeError::PotentialDomainMismatch(0))
        ));
        assert!(matches!(
            JunctionTree::from_parts(shape.clone(), vec![]),
            Err(JtreeError::NotATree { .. })
        ));
        let jt = JunctionTree::from_parts(shape, vec![PotentialTable::ones(d)]).unwrap();
        assert_eq!(jt.num_cliques(), 1);
        let (_s, p) = jt.into_parts();
        assert_eq!(p.len(), 1);
    }
}
