//! The structural part of a junction tree: clique domains, tree edges,
//! and a root-induced orientation — everything the task-graph builder and
//! the simulator need, without allocating potential tables.

use crate::{JtreeError, Result};
use evprop_potential::{Domain, VarId};
use std::collections::HashMap;
use std::fmt;

/// Index of a clique within a junction tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CliqueId(pub usize);

impl CliqueId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for CliqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CliqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A junction tree's *shape*: clique domains plus tree structure,
/// oriented away from a root clique.
///
/// The orientation (parent/children arrays) is derived state: rerooting
/// — the subject of §4 of the paper — only recomputes it, leaving the
/// underlying undirected topology untouched, exactly as the paper's
/// preorder-walk formulation (`α`) describes.
#[derive(Clone, Debug)]
pub struct TreeShape {
    domains: Vec<Domain>,
    /// Undirected adjacency lists.
    adj: Vec<Vec<CliqueId>>,
    root: CliqueId,
    parent: Vec<Option<CliqueId>>,
    children: Vec<Vec<CliqueId>>,
    /// Separator with the parent, per non-root clique.
    sep_dom: Vec<Option<Domain>>,
    /// Cliques in preorder (parents before children) for the current root.
    preorder: Vec<CliqueId>,
}

impl TreeShape {
    /// Builds a shape from clique domains, undirected edges, and a root.
    ///
    /// # Errors
    ///
    /// * [`JtreeError::NotATree`] — edge count differs from `N − 1` or the
    ///   graph is disconnected;
    /// * [`JtreeError::BadCliqueId`] — an edge or the root is out of range.
    ///
    /// Validation of the running-intersection property is separate (and
    /// more expensive): see [`TreeShape::validate`].
    pub fn new(domains: Vec<Domain>, edges: &[(usize, usize)], root: usize) -> Result<Self> {
        let n = domains.len();
        if root >= n {
            return Err(JtreeError::BadCliqueId(root));
        }
        if n > 0 && edges.len() != n - 1 {
            return Err(JtreeError::NotATree {
                cliques: n,
                edges: edges.len(),
            });
        }
        let mut adj: Vec<Vec<CliqueId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(JtreeError::BadCliqueId(a));
            }
            if b >= n {
                return Err(JtreeError::BadCliqueId(b));
            }
            adj[a].push(CliqueId(b));
            adj[b].push(CliqueId(a));
        }
        let mut shape = TreeShape {
            domains,
            adj,
            root: CliqueId(root),
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            sep_dom: vec![None; n],
            preorder: Vec::with_capacity(n),
        };
        shape.orient_from(CliqueId(root))?;
        Ok(shape)
    }

    /// Recomputes the orientation from `new_root` via a preorder walk —
    /// the paper's rerooting procedure. O(N · w).
    ///
    /// # Errors
    ///
    /// [`JtreeError::BadCliqueId`] if out of range;
    /// [`JtreeError::NotATree`] if the walk cannot reach every clique.
    pub fn reroot(&mut self, new_root: CliqueId) -> Result<()> {
        if new_root.index() >= self.num_cliques() {
            return Err(JtreeError::BadCliqueId(new_root.index()));
        }
        self.orient_from(new_root)
    }

    fn orient_from(&mut self, root: CliqueId) -> Result<()> {
        let n = self.num_cliques();
        for v in &mut self.parent {
            *v = None;
        }
        for c in &mut self.children {
            c.clear();
        }
        for s in &mut self.sep_dom {
            *s = None;
        }
        self.preorder.clear();
        self.root = root;
        if n == 0 {
            return Ok(());
        }
        let mut visited = vec![false; n];
        let mut stack = vec![root];
        visited[root.index()] = true;
        while let Some(c) = stack.pop() {
            self.preorder.push(c);
            // deterministic child order: adjacency order
            for i in 0..self.adj[c.index()].len() {
                let nb = self.adj[c.index()][i];
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    self.parent[nb.index()] = Some(c);
                    self.children[c.index()].push(nb);
                    self.sep_dom[nb.index()] =
                        Some(self.domains[nb.index()].intersect(&self.domains[c.index()]));
                    stack.push(nb);
                }
            }
        }
        if self.preorder.len() != n {
            return Err(JtreeError::NotATree {
                cliques: n,
                edges: n - 1,
            });
        }
        Ok(())
    }

    /// Number of cliques `N`.
    #[inline]
    pub fn num_cliques(&self) -> usize {
        self.domains.len()
    }

    /// The domain (variable set) of a clique.
    #[inline]
    pub fn domain(&self, c: CliqueId) -> &Domain {
        &self.domains[c.index()]
    }

    /// All clique domains, indexed by clique id.
    #[inline]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The current root.
    #[inline]
    pub fn root(&self) -> CliqueId {
        self.root
    }

    /// Parent of a clique under the current orientation (`None` for the
    /// root).
    #[inline]
    pub fn parent(&self, c: CliqueId) -> Option<CliqueId> {
        self.parent[c.index()]
    }

    /// Children of a clique under the current orientation.
    #[inline]
    pub fn children(&self, c: CliqueId) -> &[CliqueId] {
        &self.children[c.index()]
    }

    /// Undirected neighbors of a clique.
    #[inline]
    pub fn neighbors(&self, c: CliqueId) -> &[CliqueId] {
        &self.adj[c.index()]
    }

    /// Undirected degree of a clique (the `k_t` of Eq. 2).
    #[inline]
    pub fn degree(&self, c: CliqueId) -> usize {
        self.adj[c.index()].len()
    }

    /// The separator domain between a non-root clique and its parent.
    ///
    /// # Panics
    ///
    /// Panics when called on the root, which has no parent separator.
    #[inline]
    pub fn parent_separator(&self, c: CliqueId) -> &Domain {
        self.sep_dom[c.index()]
            .as_ref()
            .expect("the root clique has no parent separator")
    }

    /// Cliques in preorder (every clique after its parent).
    #[inline]
    pub fn preorder(&self) -> &[CliqueId] {
        &self.preorder
    }

    /// Cliques in postorder (every clique before its parent) — the
    /// collect-phase schedule.
    pub fn postorder(&self) -> Vec<CliqueId> {
        let mut v: Vec<CliqueId> = self.preorder.clone();
        v.reverse();
        v
    }

    /// Leaf cliques under the current orientation.
    pub fn leaves(&self) -> Vec<CliqueId> {
        (0..self.num_cliques())
            .map(CliqueId)
            .filter(|&c| self.children(c).is_empty())
            .collect()
    }

    /// Depth of each clique (root = 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_cliques()];
        for &c in &self.preorder {
            if let Some(p) = self.parent(c) {
                d[c.index()] = d[p.index()] + 1;
            }
        }
        d
    }

    /// The cliques on the path from the root down to `c`, in
    /// root-first order (`c` included, the root included). The
    /// incremental engine distributes along exactly this path.
    pub fn path_from_root(&self, c: CliqueId) -> Vec<CliqueId> {
        let mut path = vec![c];
        let mut cur = c;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Every clique in the subtree rooted at `c` (c included), in
    /// preorder.
    pub fn subtree(&self, c: CliqueId) -> Vec<CliqueId> {
        let mut out = Vec::new();
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.children(x).iter().rev().copied());
        }
        out
    }

    /// Checks the running-intersection property: for every variable, the
    /// set of cliques containing it forms a connected subtree. Also
    /// rejects empty separators on trees with more than one clique.
    ///
    /// # Errors
    ///
    /// [`JtreeError::RunningIntersectionViolated`] or
    /// [`JtreeError::EmptySeparator`].
    pub fn validate(&self) -> Result<()> {
        // For each variable, walk up from every containing clique; the
        // variable's occurrences are connected iff exactly one containing
        // clique has a parent that lacks the variable (the subtree root).
        let mut owners: HashMap<VarId, usize> = HashMap::new();
        for c in (0..self.num_cliques()).map(CliqueId) {
            for v in self.domain(c).vars() {
                let is_subtree_root = match self.parent(c) {
                    None => true,
                    Some(p) => !self.domain(p).contains(v.id()),
                };
                if is_subtree_root {
                    let e = owners.entry(v.id()).or_insert(0);
                    *e += 1;
                    if *e > 1 {
                        return Err(JtreeError::RunningIntersectionViolated(v.id()));
                    }
                }
            }
        }
        for c in (0..self.num_cliques()).map(CliqueId) {
            if let Some(p) = self.parent(c) {
                if self.parent_separator(c).is_empty() {
                    return Err(JtreeError::EmptySeparator {
                        a: c.index(),
                        b: p.index(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of potential-table entries across all cliques — the
    /// memory footprint driver.
    pub fn total_state_space(&self) -> usize {
        self.domains.iter().map(Domain::size).sum()
    }

    /// Maximum clique width (the `w_C` the paper's complexity bounds use).
    pub fn max_width(&self) -> usize {
        self.domains.iter().map(Domain::width).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::Variable;

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    /// A 4-clique path: C0{0,1} - C1{1,2} - C2{2,3} - C3{3,4}.
    fn path4() -> TreeShape {
        TreeShape::new(
            vec![dom(&[0, 1]), dom(&[1, 2]), dom(&[2, 3]), dom(&[3, 4])],
            &[(0, 1), (1, 2), (2, 3)],
            0,
        )
        .unwrap()
    }

    #[test]
    fn orientation_from_root() {
        let t = path4();
        assert_eq!(t.root(), CliqueId(0));
        assert_eq!(t.parent(CliqueId(1)), Some(CliqueId(0)));
        assert_eq!(t.children(CliqueId(0)), &[CliqueId(1)]);
        assert_eq!(t.leaves(), vec![CliqueId(3)]);
        assert_eq!(t.depths(), vec![0, 1, 2, 3]);
        assert_eq!(t.degree(CliqueId(1)), 2);
    }

    #[test]
    fn preorder_parents_first() {
        let t = path4();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, c) in t.preorder().iter().enumerate() {
                p[c.index()] = i;
            }
            p
        };
        for c in (0..4).map(CliqueId) {
            if let Some(p) = t.parent(c) {
                assert!(pos[p.index()] < pos[c.index()]);
            }
        }
        // postorder is reverse
        let post = t.postorder();
        assert_eq!(post.len(), 4);
        assert_eq!(post[3], t.root());
    }

    #[test]
    fn reroot_flips_orientation_only() {
        let mut t = path4();
        t.reroot(CliqueId(3)).unwrap();
        assert_eq!(t.root(), CliqueId(3));
        assert_eq!(t.parent(CliqueId(0)), Some(CliqueId(1)));
        assert_eq!(t.leaves(), vec![CliqueId(0)]);
        // undirected structure unchanged
        assert_eq!(t.neighbors(CliqueId(1)).len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn separators_are_intersections() {
        let t = path4();
        assert_eq!(t.parent_separator(CliqueId(1)).var_ids(), vec![VarId(1)]);
        assert_eq!(t.parent_separator(CliqueId(3)).var_ids(), vec![VarId(3)]);
    }

    #[test]
    fn rejects_non_tree() {
        let e = TreeShape::new(vec![dom(&[0]), dom(&[0])], &[], 0).unwrap_err();
        assert!(matches!(e, JtreeError::NotATree { .. }));
        let e = TreeShape::new(
            vec![dom(&[0]), dom(&[0]), dom(&[0])],
            &[(0, 1), (0, 1)], // duplicate edge, C2 unreachable
            0,
        )
        .unwrap_err();
        assert!(matches!(e, JtreeError::NotATree { .. }));
    }

    #[test]
    fn rejects_bad_ids() {
        assert!(matches!(
            TreeShape::new(vec![dom(&[0])], &[], 3),
            Err(JtreeError::BadCliqueId(3))
        ));
        assert!(matches!(
            TreeShape::new(vec![dom(&[0]), dom(&[0])], &[(0, 5)], 0),
            Err(JtreeError::BadCliqueId(5))
        ));
    }

    #[test]
    fn path_and_subtree_queries() {
        let t = path4();
        assert_eq!(
            t.path_from_root(CliqueId(3)),
            vec![CliqueId(0), CliqueId(1), CliqueId(2), CliqueId(3)]
        );
        assert_eq!(t.path_from_root(CliqueId(0)), vec![CliqueId(0)]);
        assert_eq!(t.subtree(CliqueId(2)), vec![CliqueId(2), CliqueId(3)]);
        assert_eq!(t.subtree(CliqueId(0)).len(), 4);
        let mut r = path4();
        r.reroot(CliqueId(3)).unwrap();
        assert_eq!(
            r.path_from_root(CliqueId(0)),
            vec![CliqueId(3), CliqueId(2), CliqueId(1), CliqueId(0)]
        );
    }

    #[test]
    fn validate_detects_rip_violation() {
        // V0 appears in C0 and C2 but not the middle clique C1.
        let t = TreeShape::new(
            vec![dom(&[0, 1]), dom(&[1, 2]), dom(&[2, 0])],
            &[(0, 1), (1, 2)],
            0,
        )
        .unwrap();
        assert!(matches!(
            t.validate(),
            Err(JtreeError::RunningIntersectionViolated(v)) if v == VarId(0)
        ));
    }

    #[test]
    fn validate_detects_empty_separator() {
        let t = TreeShape::new(vec![dom(&[0]), dom(&[1])], &[(0, 1)], 0).unwrap();
        assert!(matches!(
            t.validate(),
            Err(JtreeError::EmptySeparator { .. })
        ));
    }

    #[test]
    fn validate_accepts_star() {
        // star: center {0,1,2}, leaves {0},{1},{2}
        let t = TreeShape::new(
            vec![dom(&[0, 1, 2]), dom(&[0]), dom(&[1]), dom(&[2])],
            &[(0, 1), (0, 2), (0, 3)],
            0,
        )
        .unwrap();
        t.validate().unwrap();
        assert_eq!(t.leaves().len(), 3);
        assert_eq!(t.max_width(), 3);
        assert_eq!(t.total_state_space(), 8 + 2 + 2 + 2);
    }

    #[test]
    fn single_clique_tree() {
        let t = TreeShape::new(vec![dom(&[0, 1])], &[], 0).unwrap();
        t.validate().unwrap();
        assert_eq!(t.leaves(), vec![CliqueId(0)]);
        assert_eq!(t.preorder(), &[CliqueId(0)]);
    }
}
