//! Parallel evidence propagation engines — the public API of the
//! PACT 2009 reproduction.
//!
//! # Pipeline
//!
//! 1. Compile a Bayesian network to a junction tree (or bring your own
//!    tree), 2. re-root it with the paper's Algorithm 1 to minimize the
//!    critical path, 3. build the task dependency graph, 4. propagate
//!    evidence with an [`Engine`]:
//!
//! * [`SequentialEngine`] — the Hugin two-phase reference;
//! * [`CollaborativeEngine`] — the paper's contribution: decentralized
//!   scheduling with per-thread ready lists and δ-partitioning of large
//!   tasks;
//! * [`OpenMpStyleEngine`] — baseline 1: persistent thread pool, each
//!   primitive's loop split across threads behind a barrier (what
//!   mechanically adding `#pragma omp parallel for` to the sequential
//!   code does);
//! * [`DataParallelEngine`] — baseline 2: fresh threads spawned for
//!   every primitive;
//! * [`PooledEngine`] — the serving variant of the collaborative
//!   engine: worker threads spawned once, table arenas recycled, so a
//!   steady-state query pays only for propagation (compile once,
//!   serve many — see [`InferenceSession::posterior_batch`]).
//!
//! # Example
//!
//! ```
//! use evprop_bayesnet::networks;
//! use evprop_core::{Engine, InferenceSession, SequentialEngine};
//! use evprop_potential::{EvidenceSet, VarId};
//!
//! let net = networks::sprinkler();
//! let session = InferenceSession::from_network(&net)?;
//! let mut ev = EvidenceSet::new();
//! ev.observe(VarId(3), 1); // wet grass observed
//! let calibrated = session.propagate(&SequentialEngine, &ev)?;
//! let p_rain = calibrated.marginal(VarId(2))?;
//! assert!((p_rain.data()[1] - 0.7079).abs() < 5e-4);
//! # Ok::<(), evprop_core::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibrated;
mod calibrated_state;
mod collaborative;
mod dataparallel;
mod engine;
mod error;
mod model;
mod mpe;
mod openmp;
mod par_exec;
mod pooled;
mod sequential;
mod session;
mod shard;

pub use calibrated::Calibrated;
pub use calibrated_state::CalibratedState;
pub use collaborative::CollaborativeEngine;
pub use dataparallel::DataParallelEngine;
pub use engine::Engine;
pub use error::EngineError;
pub use model::CompiledModel;
pub use mpe::{decode_mpe, MostProbableExplanation};
pub use openmp::OpenMpStyleEngine;
pub use pooled::PooledEngine;
pub use sequential::SequentialEngine;
pub use session::{InferenceSession, Query, QueryBatch};
pub use shard::ShardState;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
