//! The immutable compile-once artifact: junction tree + task graphs +
//! interned kernel plans.
//!
//! Compiling a Bayesian network produces everything that is *shared*
//! between queries — the re-rooted junction tree, the task dependency
//! graph, and the [`PlanCache`](evprop_taskgraph::PlanCache) of
//! compiled kernel plans hanging off that graph. A [`CompiledModel`]
//! bundles exactly that state and nothing mutable-per-query, so one
//! `Arc<CompiledModel>` can back every shard of a serving runtime:
//! the plans are compiled once and every pool, shard and dispatcher
//! executes through the same interned index maps.

use crate::Result;
use evprop_bayesnet::BayesianNetwork;
use evprop_jtree::{select_root, JunctionTree, RootChoice};
use evprop_taskgraph::{PlanCacheStats, PropagationMode, TaskGraph};
use std::sync::OnceLock;

/// A compiled inference model: the re-rooted junction tree, its
/// sum-product task graph (with interned [`KernelPlan`]s), and a
/// lazily-built max-product twin for MPE queries.
///
/// Immutable after construction apart from two append-only caches —
/// the max-product graph's one-time initialization and the plan
/// caches' internal memo — both safe to share: hand out
/// `Arc<CompiledModel>` clones freely.
///
/// [`KernelPlan`]: evprop_potential::KernelPlan
#[derive(Debug)]
pub struct CompiledModel {
    jt: JunctionTree,
    graph: TaskGraph,
    root_choice: RootChoice,
    /// Max-product task graph, built on first MPE query.
    max_graph: OnceLock<TaskGraph>,
}

impl CompiledModel {
    /// Compiles `net` into a junction tree, re-roots it with Algorithm 1
    /// to minimize the critical path, and builds the task graph (which
    /// compiles and interns one kernel plan per cross-domain task).
    ///
    /// # Errors
    ///
    /// Propagates junction-tree compilation errors.
    pub fn from_network(net: &BayesianNetwork) -> Result<Self> {
        let jt = JunctionTree::from_network(net)?;
        Ok(Self::from_junction_tree(jt))
    }

    /// Wraps an existing junction tree, re-rooting it with Algorithm 1.
    pub fn from_junction_tree(mut jt: JunctionTree) -> Self {
        let root_choice = select_root(jt.shape());
        jt.reroot(root_choice.root)
            .expect("Algorithm 1 returns an in-range clique");
        let graph = TaskGraph::from_shape(jt.shape());
        CompiledModel {
            jt,
            graph,
            root_choice,
            max_graph: OnceLock::new(),
        }
    }

    /// Wraps an existing junction tree *without* re-rooting (the paper's
    /// "original tree" baseline in Fig. 5).
    pub fn from_junction_tree_unrerooted(jt: JunctionTree) -> Self {
        let root_choice = RootChoice {
            root: jt.shape().root(),
            critical_path: evprop_jtree::critical_path_weight(jt.shape()),
        };
        let graph = TaskGraph::from_shape(jt.shape());
        CompiledModel {
            jt,
            graph,
            root_choice,
            max_graph: OnceLock::new(),
        }
    }

    /// The junction tree (after any re-rooting).
    pub fn junction_tree(&self) -> &JunctionTree {
        &self.jt
    }

    /// The prebuilt sum-product task dependency graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The max-product task graph (same structure, max-marginalization),
    /// built lazily on the first MPE query.
    pub fn max_graph(&self) -> &TaskGraph {
        self.max_graph.get_or_init(|| {
            TaskGraph::from_shape_mode(self.jt.shape(), PropagationMode::MaxProduct)
        })
    }

    /// The root selected at construction and its critical-path weight.
    pub fn root_choice(&self) -> RootChoice {
        self.root_choice
    }

    /// Resident memory of the compiled artifact in bytes: the clique
    /// potential tables, one arena's worth of propagation buffers
    /// (what every checkout of this model costs), and the kernel-plan
    /// programs compiled so far (sum-product, plus max-product once an
    /// MPE query forced it into existence). This is the unit the model
    /// registry's `--model-budget-mb` eviction accounts in; it grows
    /// monotonically as lazily-compiled plans materialize.
    pub fn resident_bytes(&self) -> u64 {
        let f64s = std::mem::size_of::<f64>() as u64;
        let potentials: u64 = self
            .jt
            .potentials()
            .iter()
            .map(|t| t.data().len() as u64 * f64s)
            .sum();
        let buffers: u64 = self
            .graph
            .buffers()
            .iter()
            .map(|b| b.domain.size() as u64 * f64s)
            .sum();
        let mut plans = self.graph.plans().resident_bytes() as u64;
        if let Some(max) = self.max_graph.get() {
            plans += max.plans().resident_bytes() as u64;
        }
        potentials + buffers + plans
    }

    /// Combined plan-cache counters of every graph this model has
    /// built so far (sum-product, plus max-product once an MPE query
    /// forced it into existence).
    pub fn plan_stats(&self) -> PlanCacheStats {
        let mut stats = self.graph.plans().stats();
        if let Some(max) = self.max_graph.get() {
            stats = stats.merged(max.plans().stats());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use std::sync::Arc;

    #[test]
    fn one_model_is_shared_not_copied() {
        let model = Arc::new(CompiledModel::from_network(&networks::asia()).unwrap());
        let interned = model.graph().plans().len();
        assert!(interned > 0, "build interned plans");
        // Shards-style sharing: clones of the Arc see the same graph
        // (and therefore the same plan cache), not per-shard copies.
        let a = Arc::clone(&model);
        let b = Arc::clone(&model);
        assert!(std::ptr::eq(a.graph(), b.graph()));
        assert_eq!(model.plan_stats().interned, interned as u64);
    }

    #[test]
    fn resident_bytes_grow_as_plans_compile() {
        let model = CompiledModel::from_network(&networks::asia()).unwrap();
        let fresh = model.resident_bytes();
        assert!(fresh > 0, "tables and buffers count even before compile");
        let plans = model.graph().plans();
        for i in 0..plans.len() {
            let _ = plans.get(evprop_taskgraph::PlanId(i as u32));
        }
        assert!(model.resident_bytes() > fresh, "compiled plans add bytes");
    }

    #[test]
    fn plan_stats_fold_in_the_max_graph() {
        let model = CompiledModel::from_network(&networks::asia()).unwrap();
        let before = model.plan_stats().interned;
        let max_interned = model.max_graph().plans().len() as u64;
        assert!(max_interned > 0);
        assert_eq!(model.plan_stats().interned, before + max_interned);
    }
}
