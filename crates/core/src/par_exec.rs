//! Shared helpers for the two intra-primitive (loop-parallel) baselines.

use evprop_potential::{EntryRange, PotentialTable};
use evprop_sched::TableArena;
use evprop_taskgraph::{Task, TaskKind};

/// Worker `i` of `p`'s slice of a length-`len` loop (contiguous, evenly
/// sized, covering exactly `0..len`).
pub(crate) fn worker_range(len: usize, i: usize, p: usize) -> EntryRange {
    let start = len * i / p;
    let end = len * (i + 1) / p;
    EntryRange { start, end }
}

/// Executes worker `i`'s share of `task`. For destination-partitioned
/// primitives the write lands directly in the arena; for marginalization
/// a private partial table is returned for the caller to combine.
///
/// # Safety
///
/// Caller must guarantee (via sequential task order plus disjoint worker
/// ranges) that no other thread writes the buffers this share touches.
pub(crate) unsafe fn exec_share(
    task: &Task,
    i: usize,
    p: usize,
    arena: &TableArena,
) -> Option<PotentialTable> {
    match task.kind {
        TaskKind::Marginalize { src, dst, max } => {
            let s = arena.get(src);
            let range = worker_range(s.len(), i, p);
            let spec_domain = arena.get(dst).domain().clone();
            let mut partial = PotentialTable::zeros(spec_domain);
            if max {
                s.max_marginalize_range_into(range, &mut partial)
                    .expect("separator domain nests in clique domain");
            } else {
                s.marginalize_range_into(range, &mut partial)
                    .expect("separator domain nests in clique domain");
            }
            Some(partial)
        }
        TaskKind::Divide { num, den, dst } => {
            let d = arena.get_mut(dst);
            let range = worker_range(d.len(), i, p);
            let (nm, dn) = (arena.get(num), arena.get(den));
            d.data_mut()[range.start..range.end]
                .copy_from_slice(&nm.data()[range.start..range.end]);
            d.divide_assign_range(range, dn)
                .expect("separator domains agree");
            None
        }
        TaskKind::Extend { src, dst } => {
            let d = arena.get_mut(dst);
            let range = worker_range(d.len(), i, p);
            arena
                .get(src)
                .extend_range_into(range, d)
                .expect("separator domain nests in clique domain");
            None
        }
        TaskKind::Multiply { src, dst } => {
            let d = arena.get_mut(dst);
            let range = worker_range(d.len(), i, p);
            d.multiply_assign_range(range, arena.get(src))
                .expect("extended ratio matches clique domain");
            None
        }
    }
}

/// Combines marginalization partials into the destination buffer
/// (no-op for other primitives, whose worker writes were disjoint).
///
/// # Safety
///
/// Caller must guarantee exclusive access to the destination buffer.
pub(crate) unsafe fn combine_shares(
    task: &Task,
    partials: Vec<Option<PotentialTable>>,
    arena: &TableArena,
) {
    if let TaskKind::Marginalize { dst, max, .. } = task.kind {
        let d = arena.get_mut(dst);
        d.fill(0.0);
        for partial in partials.into_iter().flatten() {
            if max {
                d.max_assign(&partial)
                    .expect("partials share the separator domain");
            } else {
                d.add_assign(&partial)
                    .expect("partials share the separator domain");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ranges_tile_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for i in 0..p {
                    let r = worker_range(len, i, p);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
