//! Shared helpers for the two intra-primitive (loop-parallel) baselines.
//!
//! Like the collaborative scheduler, the baselines never hand a worker a
//! reference to an arena table: each propagation derives one
//! [`ArenaView`] up front and workers touch buffers only through
//! disjoint windows over their own [`EntryRange`] — see the safety model
//! in `evprop_sched::arena`.

use evprop_potential::{raw, EntryRange, PotentialTable};
use evprop_sched::ArenaView;
use evprop_taskgraph::{Task, TaskGraph, TaskKind};

/// Worker `i` of `p`'s slice of a length-`len` loop (contiguous, evenly
/// sized, covering exactly `0..len`).
pub(crate) fn worker_range(len: usize, i: usize, p: usize) -> EntryRange {
    let start = len * i / p;
    let end = len * (i + 1) / p;
    EntryRange { start, end }
}

/// Executes worker `i`'s share of `task`. For destination-partitioned
/// primitives the write lands directly in the arena; for marginalization
/// a private partial table is returned for the caller to combine.
///
/// # Safety
///
/// Caller must guarantee (via sequential task order plus disjoint worker
/// ranges) that no other thread writes the buffers this share touches.
pub(crate) unsafe fn exec_share(
    graph: &TaskGraph,
    task: &Task,
    i: usize,
    p: usize,
    view: &ArenaView<'_>,
) -> Option<PotentialTable> {
    let buffers = graph.buffers();
    match task.kind {
        TaskKind::Marginalize { src, dst, max } => {
            let src_domain = &buffers[src.index()].domain;
            let dst_domain = &buffers[dst.index()].domain;
            let s = view.read_full(src);
            let range = worker_range(s.len(), i, p);
            let mut partial = PotentialTable::zeros(dst_domain.clone());
            if max {
                raw::max_marginalize_range_into_raw(
                    src_domain,
                    &s,
                    range,
                    dst_domain,
                    partial.data_mut(),
                )
                .expect("separator domain nests in clique domain");
            } else {
                raw::marginalize_range_into_raw(
                    src_domain,
                    &s,
                    range,
                    dst_domain,
                    partial.data_mut(),
                )
                .expect("separator domain nests in clique domain");
            }
            Some(partial)
        }
        TaskKind::Divide { num, den, dst } => {
            let nm = view.read_full(num);
            let dn = view.read_full(den);
            let range = worker_range(nm.len(), i, p);
            let mut d = view.write_range(dst, range);
            raw::divide_range_into(&nm, &dn, range, d.as_mut_slice())
                .expect("separator domains agree");
            None
        }
        TaskKind::Extend { src, dst } => {
            let src_domain = &buffers[src.index()].domain;
            let dst_domain = &buffers[dst.index()].domain;
            let s = view.read_full(src);
            let range = worker_range(view.buffer_len(dst), i, p);
            let mut d = view.write_range(dst, range);
            raw::extend_range_into_raw(src_domain, &s, dst_domain, range, d.as_mut_slice())
                .expect("separator domain nests in clique domain");
            None
        }
        TaskKind::Multiply { src, dst } => {
            let src_domain = &buffers[src.index()].domain;
            let dst_domain = &buffers[dst.index()].domain;
            let s = view.read_full(src);
            let range = worker_range(view.buffer_len(dst), i, p);
            let mut d = view.write_range(dst, range);
            raw::multiply_range_into(src_domain, &s, dst_domain, range, d.as_mut_slice())
                .expect("extended ratio matches clique domain");
            None
        }
    }
}

/// Combines marginalization partials into the destination buffer
/// (no-op for other primitives, whose worker writes were disjoint).
/// `partials` is indexed by worker, so the fold order — and thus the
/// result, FP addition being non-associative — is identical across runs.
///
/// # Safety
///
/// Caller must guarantee exclusive access to the destination buffer.
pub(crate) unsafe fn combine_shares(
    task: &Task,
    partials: Vec<Option<PotentialTable>>,
    view: &ArenaView<'_>,
) {
    if let TaskKind::Marginalize { dst, max, .. } = task.kind {
        let mut d = view.write_full(dst);
        let out = d.as_mut_slice();
        out.fill(0.0);
        for partial in partials.into_iter().flatten() {
            if max {
                raw::max_assign_raw(out, partial.data())
                    .expect("partials share the separator domain");
            } else {
                raw::add_assign_raw(out, partial.data())
                    .expect("partials share the separator domain");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ranges_tile_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for i in 0..p {
                    let r = worker_range(len, i, p);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
