//! Baseline 1: OpenMP-style loop parallelism with a persistent pool.

use crate::engine::collect_cliques;
use crate::par_exec::{combine_shares, exec_share};
use crate::{Calibrated, Engine, Result};
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, PotentialTable};
use evprop_sched::{ArenaView, TableArena};
use evprop_taskgraph::{TaskGraph, TaskId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// The paper's first baseline: the sequential engine with every
/// primitive's entry loop split across a persistent pool of `P` threads
/// behind fork/join barriers — the semantics of annotating the loops with
/// `#pragma omp parallel for`. Task order stays strictly sequential, so
/// only *data* parallelism is exploited.
#[derive(Debug)]
pub struct OpenMpStyleEngine {
    threads: usize,
}

impl OpenMpStyleEngine {
    /// An engine with a pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        OpenMpStyleEngine { threads }
    }

    /// Number of pool threads.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

struct PoolState<'a> {
    graph: &'a TaskGraph,
    view: &'a ArenaView<'a>,
    current: Mutex<Option<TaskId>>,
    partials: Vec<Mutex<Option<PotentialTable>>>,
    start: Barrier,
    done: Barrier,
    stop: AtomicBool,
}

impl Engine for OpenMpStyleEngine {
    fn name(&self) -> &'static str {
        "openmp-style"
    }

    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        let arena = TableArena::initialize(graph, jt.potentials(), evidence);
        // SAFETY: this propagation is the arena's only user; workers
        // access buffers only through the view's disjoint windows, and
        // the barriers serialize primitives against the combiner.
        let view = unsafe { arena.job_view() };
        let p = self.threads;
        let order = graph
            .topological_order()
            .expect("task graphs from trees are acyclic");

        if p == 1 || graph.num_tasks() == 0 {
            // degenerate pool: run inline
            for &t in &order {
                let task = graph.task(t);
                // SAFETY: single-threaded here.
                let partial = unsafe { exec_share(graph, task, 0, 1, &view) };
                unsafe { combine_shares(task, vec![partial], &view) };
            }
            drop(view);
            return Ok(collect_cliques(jt, graph, arena.into_tables()));
        }

        let state = PoolState {
            graph,
            view: &view,
            current: Mutex::new(None),
            partials: (0..p).map(|_| Mutex::new(None)).collect(),
            start: Barrier::new(p + 1),
            done: Barrier::new(p + 1),
            stop: AtomicBool::new(false),
        };

        std::thread::scope(|scope| {
            for i in 0..p {
                let st = &state;
                scope.spawn(move || loop {
                    st.start.wait();
                    if st.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let t = st.current.lock().expect("job set before barrier");
                    let task = st.graph.task(t);
                    // SAFETY: the main thread serializes primitives; this
                    // worker's share is disjoint from its siblings'.
                    let partial = unsafe { exec_share(st.graph, task, i, p, st.view) };
                    *st.partials[i].lock() = partial;
                    st.done.wait();
                });
            }

            for &t in &order {
                *state.current.lock() = Some(t);
                state.start.wait(); // fork
                state.done.wait(); // join
                let task = graph.task(t);
                let partials: Vec<Option<PotentialTable>> =
                    state.partials.iter().map(|s| s.lock().take()).collect();
                // SAFETY: all workers are parked between barriers.
                unsafe { combine_shares(task, partials, &view) };
            }
            state.stop.store(true, Ordering::Release);
            state.start.wait(); // release workers into shutdown
        });

        drop(view);
        Ok(collect_cliques(jt, graph, arena.into_tables()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialEngine;
    use evprop_bayesnet::networks;
    use evprop_potential::VarId;

    #[test]
    fn agrees_with_sequential() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(4), 1);
        let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
        for threads in [1, 2, 4] {
            let got = OpenMpStyleEngine::new(threads).propagate(&jt, &ev).unwrap();
            assert!(got.max_divergence(&reference) < 1e-9, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = OpenMpStyleEngine::new(0);
    }
}
