//! Resident calibrated state: snapshot and restore of a propagation
//! arena, the building block of incremental evidence sessions.
//!
//! After a full two-phase propagation the [`TableArena`] holds more
//! than the calibrated clique beliefs — it also holds every collect
//! separator (`ψ*_S`), every extended collect message, and every
//! distribute separator (`ψ**_S`). Incremental re-propagation trades
//! on exactly that extra state, so [`CalibratedState`] snapshots the
//! *whole* buffer table, not just the cliques: restoring one into a
//! fresh arena yields a session that can answer its first query
//! without any propagation at all.

use evprop_potential::{EvidenceSet, PotentialTable};
use evprop_sched::TableArena;
use evprop_taskgraph::TaskGraph;

/// An owned snapshot of a fully calibrated propagation arena (every
/// buffer: clique beliefs *and* separator/message scratch) together
/// with the evidence it was calibrated under.
///
/// Capture one after a full propagation with
/// [`CalibratedState::capture`]; restore it into any arena built for
/// the same graph with [`CalibratedState::restore_into`]. Serving
/// runtimes keep a base snapshot (typically under empty evidence) per
/// model so that opening an incremental session costs one buffer copy
/// instead of one propagation.
#[derive(Clone)]
pub struct CalibratedState {
    tables: Vec<PotentialTable>,
    evidence: EvidenceSet,
}

impl CalibratedState {
    /// Snapshots every buffer of `arena`, which must have just executed
    /// a full two-phase job for `graph` under `evidence`.
    ///
    /// # Panics
    ///
    /// Panics if the arena was not built for `graph`.
    pub fn capture(graph: &TaskGraph, arena: &mut TableArena, evidence: EvidenceSet) -> Self {
        assert!(
            arena.matches(graph),
            "arena layout does not match this task graph"
        );
        CalibratedState {
            tables: arena.tables_mut().to_vec(),
            evidence,
        }
    }

    /// Copies the snapshot back into `arena` in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `arena` was not built for the same graph (buffer count
    /// or domains differ).
    pub fn restore_into(&self, graph: &TaskGraph, arena: &mut TableArena) {
        assert!(
            arena.matches(graph) && arena.len() == self.tables.len(),
            "arena layout does not match this snapshot"
        );
        for (dst, src) in arena.tables_mut().iter_mut().zip(&self.tables) {
            dst.copy_from(src).expect("matches() verified the domains");
        }
    }

    /// The evidence the snapshot was calibrated under.
    pub fn evidence(&self) -> &EvidenceSet {
        &self.evidence
    }

    /// Number of buffers in the snapshot.
    pub fn num_buffers(&self) -> usize {
        self.tables.len()
    }
}

impl std::fmt::Debug for CalibratedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CalibratedState({} buffers, {} hard items)",
            self.tables.len(),
            self.evidence.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardState;
    use evprop_bayesnet::networks;
    use evprop_jtree::JunctionTree;
    use evprop_potential::VarId;
    use evprop_sched::SchedulerConfig;

    #[test]
    fn capture_restore_roundtrip_preserves_answers() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = evprop_taskgraph::TaskGraph::from_shape(jt.shape());
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);

        let mut arena = TableArena::initialize(&graph, jt.potentials(), &ev);
        shard.run_job(&graph, &arena).unwrap();
        let snap = CalibratedState::capture(&graph, &mut arena, ev.clone());
        assert_eq!(snap.num_buffers(), graph.buffers().len());
        assert_eq!(snap.evidence().len(), 1);

        // Scribble over the arena, restore, and read the same marginal.
        let want = arena.tables_mut()[graph.clique_buffer(evprop_jtree::CliqueId(0)).index()]
            .data()
            .to_vec();
        arena.reset(&graph, jt.potentials(), &EvidenceSet::new());
        snap.restore_into(&graph, &mut arena);
        let got = arena.tables_mut()[graph.clique_buffer(evprop_jtree::CliqueId(0)).index()]
            .data()
            .to_vec();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn restore_rejects_wrong_graph() {
        let jt = JunctionTree::from_network(&networks::asia()).unwrap();
        let graph = evprop_taskgraph::TaskGraph::from_shape(jt.shape());
        let jt2 = JunctionTree::from_network(&networks::sprinkler()).unwrap();
        let graph2 = evprop_taskgraph::TaskGraph::from_shape(jt2.shape());
        let mut arena = TableArena::initialize(&graph, jt.potentials(), &EvidenceSet::new());
        let snap = CalibratedState::capture(&graph, &mut arena, EvidenceSet::new());
        let mut arena2 = TableArena::initialize(&graph2, jt2.potentials(), &EvidenceSet::new());
        snap.restore_into(&graph2, &mut arena2);
    }
}
