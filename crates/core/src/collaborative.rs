//! The paper's engine: collaborative scheduling on real threads.

use crate::engine::collect_cliques;
use crate::{Calibrated, Engine, Result};
use evprop_jtree::JunctionTree;
use evprop_potential::EvidenceSet;
use evprop_sched::{run_collaborative, RunReport, SchedulerConfig, TableArena};
use evprop_taskgraph::TaskGraph;
use parking_lot::Mutex;

/// The proposed method (§6): `P` worker threads with local ready lists,
/// least-loaded allocation, and δ-partitioning of large tasks.
///
/// The report of the most recent run (per-thread computation time and
/// scheduling overhead — Fig. 8's measurements) is kept for inspection
/// via [`CollaborativeEngine::last_report`].
#[derive(Debug)]
pub struct CollaborativeEngine {
    config: SchedulerConfig,
    last_report: Mutex<Option<RunReport>>,
}

impl CollaborativeEngine {
    /// An engine with the given scheduler configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        CollaborativeEngine {
            config,
            last_report: Mutex::new(None),
        }
    }

    /// An engine with `threads` workers and default δ.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(SchedulerConfig::with_threads(threads))
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Per-thread statistics of the most recent propagation, if any.
    pub fn last_report(&self) -> Option<RunReport> {
        self.last_report.lock().clone()
    }
}

impl CollaborativeEngine {
    /// Propagates a **batch** of independent evidence cases through one
    /// scheduler run: the task graph is replicated per case and all
    /// copies' tasks share the worker pool, exposing inter-case
    /// parallelism on top of the intra-case kind. Pays off when single
    /// cases are too small to keep `P` threads busy — the regime behind
    /// the paper's `w=10, r=2` outlier.
    ///
    /// # Errors
    ///
    /// See [`Engine::propagate_graph`]; an empty batch yields an empty
    /// vector.
    pub fn propagate_batch(
        &self,
        jt: &evprop_jtree::JunctionTree,
        graph: &TaskGraph,
        evidences: &[EvidenceSet],
    ) -> crate::Result<Vec<Calibrated>> {
        if evidences.is_empty() {
            return Ok(Vec::new());
        }
        let batch = graph.replicate(evidences.len());
        let arena = TableArena::initialize_batch(graph, jt.potentials(), evidences);
        let report = run_collaborative(&batch, &arena, &self.config);
        *self.last_report.lock() = Some(report);
        let per_copy = graph.buffers().len();
        let mut tables = arena.into_tables();
        let mut out = Vec::with_capacity(evidences.len());
        // split the flat buffer vector back into per-case slices
        for case in (0..evidences.len()).rev() {
            let tail = tables.split_off(case * per_copy);
            let _ = case;
            out.push(crate::engine::collect_cliques(jt, graph, tail));
        }
        out.reverse();
        Ok(out)
    }
}

impl Engine for CollaborativeEngine {
    fn name(&self) -> &'static str {
        "collaborative"
    }

    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        let arena = TableArena::initialize(graph, jt.potentials(), evidence);
        let report = run_collaborative(graph, &arena, &self.config);
        *self.last_report.lock() = Some(report);
        Ok(collect_cliques(jt, graph, arena.into_tables()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialEngine;
    use evprop_bayesnet::networks;
    use evprop_potential::VarId;

    #[test]
    fn agrees_with_sequential_across_thread_counts() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(6), 1);
        let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
        for threads in [1, 2, 4] {
            let engine = CollaborativeEngine::with_threads(threads);
            let got = engine.propagate(&jt, &ev).unwrap();
            assert!(got.max_divergence(&reference) < 1e-9, "threads = {threads}");
            assert!(engine.last_report().is_some());
        }
    }

    #[test]
    fn partitioning_preserves_results() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let reference = SequentialEngine
            .propagate(&jt, &EvidenceSet::new())
            .unwrap();
        let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(4).with_delta(2));
        let got = engine.propagate(&jt, &EvidenceSet::new()).unwrap();
        assert!(got.max_divergence(&reference) < 1e-9);
        let report = engine.last_report().unwrap();
        assert!(report.partitioned_tasks > 0);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::SequentialEngine;
    use evprop_bayesnet::networks;
    use evprop_potential::VarId;
    use evprop_taskgraph::TaskGraph;

    #[test]
    fn batch_matches_individual_runs() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let evidences: Vec<EvidenceSet> = (0..5)
            .map(|i| {
                let mut e = EvidenceSet::new();
                e.observe(VarId(7), i % 2);
                if i > 2 {
                    e.observe(VarId(2), 1);
                }
                e
            })
            .collect();
        let engine = CollaborativeEngine::new(SchedulerConfig::with_threads(4).with_delta(8));
        let batch = engine.propagate_batch(&jt, &graph, &evidences).unwrap();
        assert_eq!(batch.len(), 5);
        for (i, ev) in evidences.iter().enumerate() {
            let single = SequentialEngine.propagate(&jt, ev).unwrap();
            assert!(batch[i].max_divergence(&single) < 1e-9, "case {i} diverges");
        }
    }

    #[test]
    fn empty_batch() {
        let net = networks::sprinkler();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let engine = CollaborativeEngine::with_threads(2);
        assert!(engine.propagate_batch(&jt, &graph, &[]).unwrap().is_empty());
    }

    #[test]
    fn replicated_graph_validates() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let batch = graph.replicate(3);
        assert_eq!(batch.num_tasks(), 3 * graph.num_tasks());
        assert_eq!(batch.buffers().len(), 3 * graph.buffers().len());
        batch.validate().unwrap();
        assert_eq!(batch.total_weight(), 3 * graph.total_weight());
        // critical path unchanged: copies are independent
        assert_eq!(batch.critical_path_weight(), graph.critical_path_weight());
    }
}
