//! Most-probable-explanation (MPE) queries via Dawid max-propagation.
//!
//! Max-propagation runs the exact same two-phase task DAG as evidence
//! propagation with marginalization replaced by maximization
//! ([`PropagationMode::MaxProduct`](evprop_taskgraph::PropagationMode::MaxProduct));
//! the calibrated cliques then hold
//! *max-marginals*, and a single root-to-leaves sweep decodes a jointly
//! most probable assignment. This demonstrates the paper's claim that
//! the scheduling machinery covers a *class* of DAG-structured
//! computations, not just sum-product inference.

use crate::{Calibrated, Engine, EngineError, Result};
use evprop_potential::{EvidenceSet, Odometer, VarId};

/// A jointly most probable assignment and its probability.
#[derive(Clone, Debug, PartialEq)]
pub struct MostProbableExplanation {
    /// One state per variable, sorted by variable id. Includes the
    /// observed (evidence) variables at their observed states.
    pub assignment: Vec<(VarId, usize)>,
    /// The joint probability `P(assignment)` — equivalently
    /// `P(MPE, evidence)`.
    pub probability: f64,
}

impl MostProbableExplanation {
    /// The assigned state of `var`, if the variable occurs in the model.
    pub fn state_of(&self, var: VarId) -> Option<usize> {
        self.assignment
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.assignment[i].1)
    }
}

/// Decodes an MPE assignment from a **max-calibrated** tree (the result
/// of propagating with
/// [`PropagationMode::MaxProduct`](evprop_taskgraph::PropagationMode::MaxProduct)).
///
/// Standard consistent decoding: fix the root clique at its argmax, then
/// walk the tree in preorder, maximizing each clique subject to the
/// states already fixed on its parent separator. Ties break toward lower
/// flat indices, deterministically.
///
/// # Errors
///
/// [`EngineError::ImpossibleEvidence`] when the max-marginal peak is 0.
pub fn decode_mpe(calibrated: &Calibrated) -> Result<MostProbableExplanation> {
    let shape = calibrated.shape();
    let mut states: Vec<Option<(VarId, usize)>> = Vec::new();
    let mut fixed: std::collections::HashMap<VarId, usize> = std::collections::HashMap::new();
    let mut probability = None;

    for &c in shape.preorder() {
        let table = calibrated.clique(c);
        let dom = table.domain();
        // best entry consistent with already-fixed variables
        let mut best: Option<(f64, Vec<usize>)> = None;
        for assignment in Odometer::new(dom) {
            let consistent = dom
                .vars()
                .iter()
                .zip(&assignment)
                .all(|(v, &s)| fixed.get(&v.id()).is_none_or(|&f| f == s));
            if !consistent {
                continue;
            }
            let v = table.get(&assignment);
            if best.as_ref().is_none_or(|(bv, _)| v > *bv) {
                best = Some((v, assignment));
            }
        }
        let (peak, assignment) = best.expect("every domain has at least one joint state");
        if c == shape.root() {
            if peak <= 0.0 {
                return Err(EngineError::ImpossibleEvidence);
            }
            probability = Some(peak);
        }
        for (v, &s) in dom.vars().iter().zip(&assignment) {
            if fixed.insert(v.id(), s).is_none() {
                states.push(Some((v.id(), s)));
            }
        }
    }

    let mut assignment: Vec<(VarId, usize)> = states.into_iter().flatten().collect();
    assignment.sort_by_key(|&(v, _)| v);
    Ok(MostProbableExplanation {
        assignment,
        probability: probability.unwrap_or(1.0),
    })
}

impl crate::InferenceSession {
    /// Runs **max-propagation** with `engine` and returns the
    /// max-calibrated tree (each clique's table holds max-marginals of
    /// the joint with the evidence absorbed).
    ///
    /// # Errors
    ///
    /// See [`Engine::propagate_graph`].
    pub fn propagate_max(&self, engine: &dyn Engine, evidence: &EvidenceSet) -> Result<Calibrated> {
        engine.propagate_graph(self.junction_tree(), self.max_task_graph(), evidence)
    }

    /// The most probable explanation given `evidence`: the jointly most
    /// likely assignment to *all* variables, with its probability.
    ///
    /// # Errors
    ///
    /// [`EngineError::ImpossibleEvidence`] if the evidence has zero
    /// probability; otherwise see [`Engine::propagate_graph`].
    ///
    /// # Example
    ///
    /// ```
    /// use evprop_bayesnet::networks;
    /// use evprop_core::{InferenceSession, SequentialEngine};
    /// use evprop_potential::{EvidenceSet, VarId};
    ///
    /// let session = InferenceSession::from_network(&networks::sprinkler())?;
    /// let mut ev = EvidenceSet::new();
    /// ev.observe(VarId(3), 1); // grass is wet
    /// let mpe = session.most_probable_explanation(&SequentialEngine, &ev)?;
    /// assert_eq!(mpe.state_of(VarId(3)), Some(1)); // evidence is respected
    /// assert!(mpe.probability > 0.0);
    /// # Ok::<(), evprop_core::EngineError>(())
    /// ```
    pub fn most_probable_explanation(
        &self,
        engine: &dyn Engine,
        evidence: &EvidenceSet,
    ) -> Result<MostProbableExplanation> {
        let calibrated = self.propagate_max(engine, evidence)?;
        decode_mpe(&calibrated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollaborativeEngine, InferenceSession, SequentialEngine};
    use evprop_bayesnet::{networks, JointDistribution};
    use evprop_potential::Odometer as JointOdometer;

    /// Brute-force MPE: scan the joint table.
    fn oracle_mpe(net: &evprop_bayesnet::BayesianNetwork, ev: &EvidenceSet) -> (Vec<usize>, f64) {
        let joint = JointDistribution::of(net).unwrap();
        let mut table = joint.table().clone();
        ev.absorb_into(&mut table).unwrap();
        let mut best = (Vec::new(), f64::NEG_INFINITY);
        for assignment in JointOdometer::new(table.domain()) {
            let p = table.get(&assignment);
            if p > best.1 {
                best = (assignment, p);
            }
        }
        best
    }

    fn check_net(net: &evprop_bayesnet::BayesianNetwork, ev: &EvidenceSet) {
        let session = InferenceSession::from_network(net).unwrap();
        let mpe = session
            .most_probable_explanation(&SequentialEngine, ev)
            .unwrap();
        let (oracle_assign, oracle_p) = oracle_mpe(net, ev);
        // probabilities must match exactly (assignments may differ on ties)
        assert!(
            (mpe.probability - oracle_p).abs() < 1e-9,
            "P(mpe) {} vs oracle {}",
            mpe.probability,
            oracle_p
        );
        // and the decoded assignment's joint probability must equal the peak
        let joint = JointDistribution::of(net).unwrap();
        let states: Vec<usize> = mpe.assignment.iter().map(|&(_, s)| s).collect();
        let decoded_p = joint.table().get(&states);
        assert!(
            (decoded_p - oracle_p).abs() < 1e-9,
            "decoded {} vs oracle {} (oracle assignment {:?})",
            decoded_p,
            oracle_p,
            oracle_assign
        );
    }

    #[test]
    fn mpe_matches_bruteforce_on_classics() {
        for net in [networks::sprinkler(), networks::asia(), networks::student()] {
            check_net(&net, &EvidenceSet::new());
        }
    }

    #[test]
    fn mpe_with_evidence() {
        let net = networks::asia();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1); // dyspnoea
        ev.observe(VarId(2), 1); // smoker
        check_net(&net, &ev);
        // evidence states appear in the assignment
        let session = InferenceSession::from_network(&net).unwrap();
        let mpe = session
            .most_probable_explanation(&SequentialEngine, &ev)
            .unwrap();
        assert_eq!(mpe.state_of(VarId(7)), Some(1));
        assert_eq!(mpe.state_of(VarId(2)), Some(1));
    }

    #[test]
    fn mpe_on_random_networks() {
        for seed in 0..4 {
            let cfg = evprop_bayesnet::RandomNetworkConfig {
                num_vars: 8,
                max_parents: 2,
                cardinality: (2, 3),
                seed,
            };
            let net = evprop_bayesnet::random_network(&cfg).unwrap();
            check_net(&net, &EvidenceSet::new());
        }
    }

    #[test]
    fn parallel_mpe_agrees_with_sequential() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(6), 1); // abnormal x-ray
        let seq = session
            .most_probable_explanation(&SequentialEngine, &ev)
            .unwrap();
        let par = session
            .most_probable_explanation(&CollaborativeEngine::with_threads(4), &ev)
            .unwrap();
        assert!((seq.probability - par.probability).abs() < 1e-12);
        assert_eq!(seq.assignment, par.assignment);
    }

    #[test]
    fn impossible_evidence_rejected() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(3), 1); // lung cancer
        ev.observe(VarId(5), 0); // but "either" is false — contradiction
        let r = session.most_probable_explanation(&SequentialEngine, &ev);
        assert!(matches!(r, Err(EngineError::ImpossibleEvidence)));
    }
}
