//! The reusable core of a serving shard: one resident worker pool plus
//! a cache of recycled table arenas.
//!
//! [`ShardState`] is the engine-agnostic building block that both
//! [`PooledEngine`](crate::PooledEngine) (one shard behind the
//! [`Engine`](crate::Engine) trait) and the `evprop-serve` sharded
//! runtime (N shards, each owning one `ShardState`) are built from.
//! The serialized-jobs arena invariant holds *per shard*: a shard's
//! pool runs one job at a time, so its arenas are never aliased across
//! concurrent jobs.

use crate::{Calibrated, EngineError, Result};
use evprop_jtree::{CliqueId, JunctionTree};
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_sched::{CancelToken, CollabPool, JobError, RunReport, SchedulerConfig, TableArena};
use evprop_taskgraph::TaskGraph;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Arenas kept warm between queries. Jobs are serialized on the pool,
/// so one arena per concurrently-used task graph (sum-product,
/// max-product, the occasional collect-only graph) is plenty.
const MAX_CACHED_ARENAS: usize = 4;

/// One serving shard: a resident [`CollabPool`] and recycled
/// [`TableArena`]s, answering queries with zero steady-state table
/// allocation.
///
/// All methods take `&self`; concurrent callers are serialized on the
/// pool's submission lock, which is exactly the invariant the arena's
/// `unsafe impl Sync` relies on.
pub struct ShardState {
    pool: CollabPool,
    config: SchedulerConfig,
    /// Recycled arenas, matched back to graphs by buffer layout.
    arenas: Mutex<Vec<TableArena>>,
    last_report: Mutex<Option<RunReport>>,
    /// Cold-start arena allocations since construction — stays flat in
    /// steady state, which the serving tests assert.
    arenas_allocated: AtomicU64,
    /// Attached span sink plus the shard index query spans are tagged
    /// with; also forwarded to the pool for worker-level events.
    #[cfg(feature = "trace")]
    trace: Mutex<Option<(std::sync::Arc<evprop_trace::TraceSink>, u32)>>,
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("pool", &self.pool)
            .field("config", &self.config)
            .field("cached_arenas", &self.arenas.lock().len())
            .field("arenas_allocated", &self.arenas_allocated())
            .finish_non_exhaustive()
    }
}

impl ShardState {
    /// A shard with resident `config.num_threads` workers.
    pub fn new(config: SchedulerConfig) -> Self {
        ShardState {
            pool: CollabPool::new(config.num_threads),
            config,
            arenas: Mutex::new(Vec::new()),
            last_report: Mutex::new(None),
            arenas_allocated: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            trace: Mutex::new(None),
        }
    }

    /// Attaches (or with `None`, detaches) a span sink: the resident
    /// pool's workers record scheduler events into it, and this shard
    /// records arena checkouts and `Query` spans — tagged with
    /// `shard` — on its control row. Size the sink with
    /// [`evprop_trace::TraceSink::for_workers`]`(num_threads(), …)`.
    #[cfg(feature = "trace")]
    pub fn attach_trace(&self, sink: Option<std::sync::Arc<evprop_trace::TraceSink>>, shard: u32) {
        self.pool.set_trace_sink(sink.clone());
        *self.trace.lock() = sink.map(|s| (s, shard));
    }

    #[cfg(feature = "trace")]
    fn trace_span(&self, kind: impl FnOnce(u32) -> evprop_trace::SpanKind, t0: std::time::Instant) {
        if let Some((sink, shard)) = self.trace.lock().as_ref() {
            sink.control()
                .span(kind(*shard), sink.clock().ns_at(t0), sink.clock().now_ns());
        }
    }

    /// Records `kind` as a zero-duration instant on the control row of
    /// this shard's attached sink (no-op while detached) — how the
    /// serving runtime drops counter snapshots, e.g. plan-cache
    /// hit/miss totals, into exported timelines.
    #[cfg(feature = "trace")]
    pub fn trace_instant(&self, kind: evprop_trace::SpanKind) {
        if let Some((sink, _)) = self.trace.lock().as_ref() {
            sink.control().instant(kind, sink.clock().now_ns());
        }
    }

    /// A shard with `threads` resident workers and default δ.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(SchedulerConfig::with_threads(threads))
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Number of resident worker threads.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Per-thread statistics of the most recent job, if any.
    pub fn last_report(&self) -> Option<RunReport> {
        self.last_report.lock().clone()
    }

    /// Cold-start arena allocations since construction. A warm shard
    /// answering queries for graphs it has seen before does not move
    /// this counter.
    pub fn arenas_allocated(&self) -> u64 {
        self.arenas_allocated.load(Ordering::Relaxed)
    }

    /// Number of arenas currently parked in the recycle cache.
    pub fn cached_arenas(&self) -> usize {
        self.arenas.lock().len()
    }

    /// Dead pool worker threads the supervisor reaped and respawned
    /// over this shard's lifetime (see [`CollabPool::restarts`]).
    pub fn pool_restarts(&self) -> u64 {
        self.pool.restarts()
    }

    /// Fault injection forward to [`CollabPool::inject_worker_deaths`]:
    /// the next `n` job pickups on this shard each kill their worker
    /// thread. Hidden; for fault tests and the robustness harness only.
    #[doc(hidden)]
    pub fn inject_worker_deaths(&self, n: usize) {
        self.pool.inject_worker_deaths(n);
    }

    /// Takes a warm arena matching `graph` from the cache, or allocates
    /// a fresh one (initialized with empty evidence) on a cold start.
    /// The caller is expected to [`TableArena::reset`] it with the
    /// query's evidence — [`ShardState::posterior_on`] does — and hand
    /// it back via [`ShardState::recycle`].
    pub fn checkout(&self, graph: &TaskGraph, clique_potentials: &[PotentialTable]) -> TableArena {
        #[cfg(feature = "trace")]
        let t0 = std::time::Instant::now();
        let cached = {
            let mut cache = self.arenas.lock();
            cache
                .iter()
                .position(|a| a.matches(graph))
                .map(|i| cache.swap_remove(i))
        };
        let (arena, _fresh) = match cached {
            Some(a) => (a, false),
            None => {
                self.arenas_allocated.fetch_add(1, Ordering::Relaxed);
                (
                    TableArena::initialize(graph, clique_potentials, &EvidenceSet::new()),
                    true,
                )
            }
        };
        #[cfg(feature = "trace")]
        self.trace_span(
            |_| evprop_trace::SpanKind::ArenaCheckout { fresh: _fresh },
            t0,
        );
        arena
    }

    /// Returns an arena to the cache for the next query.
    pub fn recycle(&self, arena: TableArena) {
        let mut cache = self.arenas.lock();
        if cache.len() < MAX_CACHED_ARENAS {
            cache.push(arena);
        }
    }

    /// Runs one job on the resident pool and stores its report.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] if a worker thread panicked; the
    /// pool itself stays usable, but the arena's contents are
    /// unspecified (the next `reset` reinitializes them).
    pub fn run_job(&self, graph: &TaskGraph, arena: &TableArena) -> Result<()> {
        match self.pool.run(graph, arena, &self.config) {
            Ok(report) => {
                *self.last_report.lock() = Some(report);
                Ok(())
            }
            Err(panic) => Err(EngineError::WorkerPanicked(panic.message().to_string())),
        }
    }

    /// Like [`ShardState::run_job`], but the job can be stopped early
    /// by `cancel` (workers check the token at task boundaries).
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] if the token fired before the job
    /// drained; [`EngineError::WorkerPanicked`] as for `run_job`. In
    /// both cases the arena's contents are unspecified and the next
    /// `reset` reinitializes them.
    pub fn run_job_cancellable(
        &self,
        graph: &TaskGraph,
        arena: &TableArena,
        cancel: &CancelToken,
    ) -> Result<()> {
        match self
            .pool
            .run_cancellable(graph, arena, &self.config, cancel)
        {
            Ok(report) => {
                *self.last_report.lock() = Some(report);
                Ok(())
            }
            Err(JobError::Cancelled) => Err(EngineError::Cancelled),
            Err(JobError::Panicked(panic)) => {
                Err(EngineError::WorkerPanicked(panic.message().to_string()))
            }
        }
    }

    /// Runs a **dirty-slice job** on the resident pool: `slice` must
    /// share the full graph's buffer table (see
    /// [`TaskGraph::incremental_slice`](evprop_taskgraph::TaskGraph::incremental_slice)),
    /// and `arena` must hold the session's resident calibrated state
    /// with the re-collected cliques already partially reset
    /// ([`TableArena::reset_cliques`]). This is the incremental
    /// engine's execution entry point; it differs from
    /// [`ShardState::run_job`] only in documentation and in asserting
    /// the buffer-layout contract eagerly.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] if a worker thread panicked.
    pub fn run_slice(&self, slice: &TaskGraph, arena: &TableArena) -> Result<()> {
        assert_eq!(
            slice.buffers().len(),
            arena.len(),
            "slice graphs must share the full graph's buffer table"
        );
        self.run_job(slice, arena)
    }

    /// Answers one query **on a caller-held arena**: resets the arena
    /// with the query's evidence, propagates, and marginalizes `var`
    /// straight out of the buffer of the smallest clique covering it —
    /// the same clique [`Calibrated::marginal`] picks, so results are
    /// bit-identical to the sequential path on unpartitioned runs.
    ///
    /// This is the batch building block: checking out one arena and
    /// calling this per query reuses the evidence-scratch buffers for
    /// the whole batch.
    ///
    /// # Errors
    ///
    /// [`EngineError::VariableNotInTree`] if no clique covers `var`;
    /// [`EngineError::ImpossibleEvidence`] if `P(e) = 0`;
    /// [`EngineError::WorkerPanicked`] if a worker died mid-job.
    pub fn posterior_on(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        arena: &mut TableArena,
        var: VarId,
        evidence: &EvidenceSet,
    ) -> Result<PotentialTable> {
        self.posterior_on_cancellable(jt, graph, arena, var, evidence, None)
    }

    /// [`ShardState::posterior_on`] with an optional cancellation
    /// token: with `Some`, the propagation job can be stopped early at
    /// task boundaries (the deadline path of the serving runtime). A
    /// query that completes despite a racing token is bit-identical to
    /// an uncancelled one. With `None` this *is* `posterior_on` — no
    /// token is allocated and the job runs the plain path.
    ///
    /// # Errors
    ///
    /// As for [`ShardState::posterior_on`], plus
    /// [`EngineError::Cancelled`] when the token fired mid-job.
    pub fn posterior_on_cancellable(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        arena: &mut TableArena,
        var: VarId,
        evidence: &EvidenceSet,
        cancel: Option<&CancelToken>,
    ) -> Result<PotentialTable> {
        #[cfg(feature = "trace")]
        let t0 = std::time::Instant::now();
        let result = self.posterior_on_impl(jt, graph, arena, var, evidence, cancel);
        #[cfg(feature = "trace")]
        self.trace_span(|shard| evprop_trace::SpanKind::Query { shard }, t0);
        result
    }

    fn posterior_on_impl(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        arena: &mut TableArena,
        var: VarId,
        evidence: &EvidenceSet,
        cancel: Option<&CancelToken>,
    ) -> Result<PotentialTable> {
        let target = (0..jt.num_cliques())
            .map(CliqueId)
            .filter(|&c| jt.shape().domain(c).contains(var))
            .min_by_key(|&c| jt.shape().domain(c).size())
            .ok_or(EngineError::VariableNotInTree(var))?;
        // The unconditional reset is also the self-heal after a
        // cancelled or panicked predecessor left this arena dirty.
        arena.reset(graph, jt.potentials(), evidence);
        match cancel {
            Some(token) => self.run_job_cancellable(graph, arena, token)?,
            None => self.run_job(graph, arena)?,
        }
        let table = &arena.tables_mut()[graph.clique_buffer(target).index()];
        let sub = table.domain().project(&[var]);
        let mut m = table.marginalize(&sub)?;
        if m.sum() <= 0.0 {
            return Err(EngineError::ImpossibleEvidence);
        }
        m.normalize();
        Ok(m)
    }

    /// Checkout–answer–recycle convenience for a single query.
    ///
    /// # Errors
    ///
    /// As for [`ShardState::posterior_on`].
    pub fn posterior(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        var: VarId,
        evidence: &EvidenceSet,
    ) -> Result<PotentialTable> {
        let mut arena = self.checkout(graph, jt.potentials());
        let result = self.posterior_on(jt, graph, &mut arena, var, evidence);
        self.recycle(arena);
        result
    }

    /// Answers a batch of queries reusing **one** arena across the
    /// whole batch: the arena (and its evidence-scratch buffers) is
    /// checked out once, each query resets it in place, and it is
    /// recycled at the end. Results are in input order.
    ///
    /// # Errors
    ///
    /// Per-query errors as in [`ShardState::posterior_on`]; the first
    /// error aborts the batch.
    pub fn posterior_batch(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        queries: &[crate::Query],
    ) -> Result<Vec<PotentialTable>> {
        let mut arena = self.checkout(graph, jt.potentials());
        let mut out = Vec::with_capacity(queries.len());
        let mut first_err = None;
        for q in queries {
            match self.posterior_on(jt, graph, &mut arena, q.target, &q.evidence) {
                Ok(m) => out.push(m),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        self.recycle(arena);
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Full calibration: propagates and clones every clique table out
    /// into a [`Calibrated`], leaving the arena in the cache.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] if a worker died mid-job.
    pub fn calibrate(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        let mut arena = self.checkout(graph, jt.potentials());
        arena.reset(graph, jt.potentials(), evidence);
        if let Err(e) = self.run_job(graph, &arena) {
            self.recycle(arena);
            return Err(e);
        }
        // Clone the calibrated clique tables out instead of consuming
        // the arena — the buffers stay allocated for the next query.
        let tables = arena.tables_mut();
        let cliques: Vec<PotentialTable> = (0..jt.num_cliques())
            .map(|c| tables[graph.clique_buffer(CliqueId(c)).index()].clone())
            .collect();
        self.recycle(arena);
        Ok(Calibrated::new(jt.shape().clone(), cliques))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use crate::{Query, SequentialEngine};
    use evprop_bayesnet::networks;

    #[test]
    fn shard_posterior_bit_identical_to_sequential() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        for state in 0..2 {
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(7), state);
            let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
            for v in 0..8u32 {
                let got = shard.posterior(&jt, &graph, VarId(v), &ev).unwrap();
                let want = reference.marginal(VarId(v)).unwrap();
                assert_eq!(got.data(), want.data(), "V{v} state {state}");
            }
        }
    }

    #[test]
    fn batch_reuses_one_arena_with_zero_steady_state_allocation() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        let queries: Vec<Query> = (0..6u32)
            .map(|i| {
                let mut ev = EvidenceSet::new();
                ev.observe(VarId(7), (i % 2) as usize);
                Query::new(VarId(i % 3), ev)
            })
            .collect();
        let batch = shard.posterior_batch(&jt, &graph, &queries).unwrap();
        assert_eq!(batch.len(), 6);
        // The whole batch checked out exactly one arena …
        assert_eq!(shard.arenas_allocated(), 1);
        // … and a second batch on the warm shard allocates none.
        shard.posterior_batch(&jt, &graph, &queries).unwrap();
        assert_eq!(shard.arenas_allocated(), 1);
        assert_eq!(shard.last_report().unwrap().total_tables_allocated(), 0);
    }

    /// A cancelled query fails with `Cancelled`, and the *same* arena
    /// (left dirty by the cancelled job) heals on the next query via
    /// the unconditional reset — bit-identical to the sequential
    /// engine.
    #[test]
    fn cancelled_query_errors_and_arena_heals() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        let mut arena = shard.checkout(&graph, jt.potentials());
        let token = CancelToken::new();
        token.cancel();
        let ev = EvidenceSet::new();
        let err = shard
            .posterior_on_cancellable(&jt, &graph, &mut arena, VarId(0), &ev, Some(&token))
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled));
        let got = shard
            .posterior_on(&jt, &graph, &mut arena, VarId(0), &ev)
            .unwrap();
        shard.recycle(arena);
        let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
        assert_eq!(got.data(), reference.marginal(VarId(0)).unwrap().data());
    }

    #[test]
    fn batch_error_recycles_arena() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let shard = ShardState::with_threads(2);
        let queries = vec![
            Query::new(VarId(3), EvidenceSet::new()),
            Query::new(VarId(99), EvidenceSet::new()), // not in tree
        ];
        let err = shard.posterior_batch(&jt, &graph, &queries).unwrap_err();
        assert!(matches!(err, EngineError::VariableNotInTree(_)));
        // The arena went back to the cache despite the error.
        assert_eq!(shard.cached_arenas(), 1);
        assert!(shard
            .posterior(&jt, &graph, VarId(3), &EvidenceSet::new())
            .is_ok());
        assert_eq!(shard.arenas_allocated(), 1);
    }
}
