//! The result of evidence propagation: a calibrated junction tree.

use crate::{EngineError, Result};
use evprop_jtree::{CliqueId, TreeShape};
use evprop_potential::{PotentialTable, VarId};
use std::fmt;

/// Calibrated clique potentials after two-phase propagation: the table of
/// clique `C` holds the unnormalized joint `P(C, e)` of its variables
/// with the absorbed evidence `e`. Any variable's posterior can be read
/// off any clique containing it.
#[derive(Clone)]
pub struct Calibrated {
    shape: TreeShape,
    cliques: Vec<PotentialTable>,
}

impl Calibrated {
    /// Assembles a calibrated result (used by engines).
    pub(crate) fn new(shape: TreeShape, cliques: Vec<PotentialTable>) -> Self {
        debug_assert_eq!(shape.num_cliques(), cliques.len());
        Calibrated { shape, cliques }
    }

    /// The tree structure.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The calibrated potential of one clique.
    pub fn clique(&self, c: CliqueId) -> &PotentialTable {
        &self.cliques[c.index()]
    }

    /// The probability of the absorbed evidence, `P(e)` — the total mass
    /// of the root clique. After full calibration every clique agrees;
    /// after a collect-only run ([`evprop_taskgraph::TaskGraph::collect_only`])
    /// the root is the *only* calibrated clique, so reading it keeps this
    /// correct in both modes.
    pub fn probability_of_evidence(&self) -> f64 {
        self.cliques
            .get(self.shape.root().index())
            .map(PotentialTable::sum)
            .unwrap_or(1.0)
    }

    /// The normalized posterior marginal `P(var | e)`.
    ///
    /// # Errors
    ///
    /// [`EngineError::VariableNotInTree`] if no clique contains `var`;
    /// [`EngineError::ImpossibleEvidence`] if `P(e) = 0`.
    pub fn marginal(&self, var: VarId) -> Result<PotentialTable> {
        let c = (0..self.shape.num_cliques())
            .map(CliqueId)
            .filter(|&c| self.shape.domain(c).contains(var))
            .min_by_key(|&c| self.shape.domain(c).size())
            .ok_or(EngineError::VariableNotInTree(var))?;
        let table = &self.cliques[c.index()];
        let sub = table.domain().project(&[var]);
        let mut m = table.marginalize(&sub)?;
        if m.sum() <= 0.0 {
            return Err(EngineError::ImpossibleEvidence);
        }
        m.normalize();
        Ok(m)
    }

    /// Normalized posteriors for **every** variable in the tree, sorted
    /// by variable id — the batch form of [`Calibrated::marginal`].
    ///
    /// # Errors
    ///
    /// [`EngineError::ImpossibleEvidence`] if `P(e) = 0`.
    pub fn all_marginals(&self) -> Result<Vec<(VarId, PotentialTable)>> {
        let mut vars: Vec<VarId> = Vec::new();
        for c in 0..self.shape.num_cliques() {
            for v in self.shape.domain(CliqueId(c)).vars() {
                if !vars.contains(&v.id()) {
                    vars.push(v.id());
                }
            }
        }
        vars.sort_unstable();
        vars.into_iter()
            .map(|v| Ok((v, self.marginal(v)?)))
            .collect()
    }

    /// The normalized joint posterior over a *set* of variables, provided
    /// some clique covers all of them (junction trees answer in-clique
    /// joint queries for free; cross-clique joints would require
    /// out-of-band elimination).
    ///
    /// # Errors
    ///
    /// [`EngineError::VariableNotInTree`] (reporting the first variable)
    /// if no clique contains the whole set;
    /// [`EngineError::ImpossibleEvidence`] if the restricted mass is zero.
    pub fn joint_marginal(&self, vars: &[VarId]) -> Result<PotentialTable> {
        let c = (0..self.shape.num_cliques())
            .map(CliqueId)
            .filter(|&c| vars.iter().all(|&v| self.shape.domain(c).contains(v)))
            .min_by_key(|&c| self.shape.domain(c).size())
            .ok_or_else(|| {
                EngineError::VariableNotInTree(vars.first().copied().unwrap_or(VarId(u32::MAX)))
            })?;
        let table = &self.cliques[c.index()];
        let sub = table.domain().project(vars);
        let mut m = table.marginalize(&sub)?;
        if m.sum() <= 0.0 {
            return Err(EngineError::ImpossibleEvidence);
        }
        m.normalize();
        Ok(m)
    }

    /// Maximum absolute disagreement between two calibrated results over
    /// the same shape (engine cross-checks on normalized inputs).
    ///
    /// # Panics
    ///
    /// Panics if clique counts differ.
    pub fn max_divergence(&self, other: &Calibrated) -> f64 {
        assert_eq!(self.cliques.len(), other.cliques.len());
        self.cliques
            .iter()
            .zip(&other.cliques)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f64::max)
    }

    /// Maximum *relative* disagreement: per clique, the absolute gap
    /// divided by the largest magnitude in either table. The right
    /// comparison for unnormalized potentials, whose calibrated masses
    /// can be astronomically large or small.
    ///
    /// # Panics
    ///
    /// Panics if clique counts differ.
    pub fn max_relative_divergence(&self, other: &Calibrated) -> f64 {
        assert_eq!(self.cliques.len(), other.cliques.len());
        self.cliques
            .iter()
            .zip(&other.cliques)
            .map(|(a, b)| {
                let scale = a
                    .data()
                    .iter()
                    .chain(b.data())
                    .fold(0.0f64, |m, &v| m.max(v.abs()));
                if scale == 0.0 {
                    0.0
                } else {
                    a.max_abs_diff(b) / scale
                }
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Debug for Calibrated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Calibrated({} cliques, P(e) = {:.6})",
            self.cliques.len(),
            self.probability_of_evidence()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{Domain, Variable};

    fn simple() -> Calibrated {
        let d = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
        let shape = TreeShape::new(vec![d.clone()], &[], 0).unwrap();
        let t = PotentialTable::from_data(d, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        Calibrated::new(shape, vec![t])
    }

    #[test]
    fn marginal_normalizes() {
        let c = simple();
        let m = c.marginal(VarId(0)).unwrap();
        assert!((m.data()[0] - 0.3).abs() < 1e-12);
        assert!((m.data()[1] - 0.7).abs() < 1e-12);
        assert!((c.probability_of_evidence() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_marginals_cover_every_variable() {
        let c = simple();
        let all = c.all_marginals().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, VarId(0));
        assert_eq!(all[1].0, VarId(1));
        for (_, m) in &all {
            assert!((m.sum() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_marginal_within_clique() {
        let c = simple();
        let j = c.joint_marginal(&[VarId(0), VarId(1)]).unwrap();
        assert_eq!(j.data(), &[0.1, 0.2, 0.3, 0.4]);
        // covered subset works too, uncovered set errors
        assert!(c.joint_marginal(&[VarId(0)]).is_ok());
        assert!(matches!(
            c.joint_marginal(&[VarId(0), VarId(9)]),
            Err(EngineError::VariableNotInTree(_))
        ));
    }

    #[test]
    fn unknown_variable_errors() {
        let c = simple();
        assert!(matches!(
            c.marginal(VarId(9)),
            Err(EngineError::VariableNotInTree(_))
        ));
    }

    #[test]
    fn impossible_evidence_detected() {
        let d = Domain::new(vec![Variable::binary(VarId(0))]).unwrap();
        let shape = TreeShape::new(vec![d.clone()], &[], 0).unwrap();
        let c = Calibrated::new(shape, vec![PotentialTable::zeros(d)]);
        assert!(matches!(
            c.marginal(VarId(0)),
            Err(EngineError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn debug_shows_pe() {
        assert!(format!("{:?}", simple()).contains("P(e)"));
    }
}
