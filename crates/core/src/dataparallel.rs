//! Baseline 2: per-primitive data parallelism with fresh threads.

use crate::engine::collect_cliques;
use crate::par_exec::{combine_shares, exec_share};
use crate::{Calibrated, Engine, Result};
use evprop_jtree::JunctionTree;
use evprop_potential::EvidenceSet;
use evprop_sched::TableArena;
use evprop_taskgraph::TaskGraph;

/// The paper's second baseline ("data parallel method"): task order stays
/// sequential, and **new threads are created for every node-level
/// primitive** and joined right after. Functionally identical to
/// [`crate::OpenMpStyleEngine`], but the per-primitive spawn/join cost is
/// real — which is exactly the overhead the paper blames for this
/// method's inferior scaling.
#[derive(Clone, Copy, Debug)]
pub struct DataParallelEngine {
    threads: usize,
}

impl DataParallelEngine {
    /// An engine spawning `threads` workers per primitive.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        DataParallelEngine { threads }
    }

    /// Number of worker threads per primitive.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Engine for DataParallelEngine {
    fn name(&self) -> &'static str {
        "data-parallel"
    }

    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        let arena = TableArena::initialize(graph, jt.potentials(), evidence);
        // SAFETY: this propagation is the arena's only user; workers
        // access buffers only through the view's disjoint windows, and
        // every scope below joins before the next primitive starts.
        let view = unsafe { arena.job_view() };
        let p = self.threads;
        let order = graph
            .topological_order()
            .expect("task graphs from trees are acyclic");

        for &t in &order {
            let task = graph.task(t);
            let partials = if p == 1 {
                // SAFETY: single-threaded.
                vec![unsafe { exec_share(graph, task, 0, 1, &view) }]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..p)
                        .map(|i| {
                            let view_ref = &view;
                            // SAFETY: this primitive is the only work in
                            // flight; worker shares are disjoint.
                            scope.spawn(move || unsafe { exec_share(graph, task, i, p, view_ref) })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("workers do not panic"))
                        .collect()
                })
            };
            // SAFETY: all workers joined.
            unsafe { combine_shares(task, partials, &view) };
        }

        drop(view);
        Ok(collect_cliques(jt, graph, arena.into_tables()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialEngine;
    use evprop_bayesnet::networks;
    use evprop_potential::VarId;

    #[test]
    fn agrees_with_sequential() {
        let net = networks::student();
        let jt = JunctionTree::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(4), 1);
        let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
        for threads in [1, 2, 3] {
            let got = DataParallelEngine::new(threads)
                .propagate(&jt, &ev)
                .unwrap();
            assert!(got.max_divergence(&reference) < 1e-9, "threads = {threads}");
        }
    }
}
