//! End-to-end inference sessions: compile once, query many times.

use crate::{Calibrated, CompiledModel, Engine, PooledEngine, Result};
use evprop_bayesnet::BayesianNetwork;
use evprop_jtree::{JunctionTree, RootChoice};
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_sched::SchedulerConfig;
use evprop_taskgraph::{PropagationMode, TaskGraph};
use std::sync::{Arc, OnceLock};

/// One serving query: the variable whose posterior is wanted, under
/// some evidence.
#[derive(Clone, Debug)]
pub struct Query {
    /// Variable whose posterior marginal is requested.
    pub target: VarId,
    /// Evidence to condition on (may be empty).
    pub evidence: EvidenceSet,
}

impl Query {
    /// A query for `P(target | evidence)`.
    pub fn new(target: VarId, evidence: EvidenceSet) -> Self {
        Query { target, evidence }
    }
}

/// An ordered batch of queries, answered back-to-back on the session's
/// resident pool by [`InferenceSession::posterior_batch`].
pub type QueryBatch = Vec<Query>;

/// A reusable inference pipeline: an [`Arc`]-shared [`CompiledModel`]
/// (junction tree re-rooted by Algorithm 1, task graph, interned
/// kernel plans) plus this session's resident serving engine.
///
/// # Example
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_core::{InferenceSession, SequentialEngine};
/// use evprop_potential::{EvidenceSet, VarId};
///
/// let session = InferenceSession::from_network(&networks::asia())?;
/// let posterior = session.posterior(&SequentialEngine, VarId(3), &EvidenceSet::new())?;
/// assert!((posterior.sum() - 1.0).abs() < 1e-9);
/// # Ok::<(), evprop_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct InferenceSession {
    model: Arc<CompiledModel>,
    /// Resident serving engine, spawned on first pooled query.
    pooled: OnceLock<PooledEngine>,
}

impl InferenceSession {
    /// Compiles `net` into a junction tree, re-roots it with Algorithm 1
    /// to minimize the critical path, and builds the task graph.
    ///
    /// # Errors
    ///
    /// Propagates junction-tree compilation errors.
    pub fn from_network(net: &BayesianNetwork) -> Result<Self> {
        Ok(Self::from_model(Arc::new(CompiledModel::from_network(
            net,
        )?)))
    }

    /// Wraps an existing junction tree, re-rooting it with Algorithm 1.
    pub fn from_junction_tree(jt: JunctionTree) -> Self {
        Self::from_model(Arc::new(CompiledModel::from_junction_tree(jt)))
    }

    /// Wraps an existing junction tree *without* re-rooting (the paper's
    /// "original tree" baseline in Fig. 5).
    pub fn from_junction_tree_unrerooted(jt: JunctionTree) -> Self {
        Self::from_model(Arc::new(CompiledModel::from_junction_tree_unrerooted(jt)))
    }

    /// A session serving an already-compiled model. The model stays
    /// shared: sessions (and serving shards) built from clones of the
    /// same `Arc` execute through one set of interned kernel plans.
    pub fn from_model(model: Arc<CompiledModel>) -> Self {
        InferenceSession {
            model,
            pooled: OnceLock::new(),
        }
    }

    /// The shared compiled model behind this session.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The junction tree (after any re-rooting).
    pub fn junction_tree(&self) -> &JunctionTree {
        self.model.junction_tree()
    }

    /// The prebuilt task dependency graph.
    pub fn task_graph(&self) -> &TaskGraph {
        self.model.graph()
    }

    /// The max-product task graph (same structure, max-marginalization),
    /// built lazily on the first MPE query.
    pub fn max_task_graph(&self) -> &TaskGraph {
        self.model.max_graph()
    }

    /// The root selected at construction and its critical-path weight.
    pub fn root_choice(&self) -> RootChoice {
        self.model.root_choice()
    }

    /// Runs two-phase propagation with `engine`.
    ///
    /// # Errors
    ///
    /// See [`Engine::propagate_graph`].
    pub fn propagate(&self, engine: &dyn Engine, evidence: &EvidenceSet) -> Result<Calibrated> {
        engine.propagate_graph(self.junction_tree(), self.task_graph(), evidence)
    }

    /// Convenience: posterior marginal of one variable.
    ///
    /// # Errors
    ///
    /// See [`Calibrated::marginal`].
    pub fn posterior(
        &self,
        engine: &dyn Engine,
        var: VarId,
        evidence: &EvidenceSet,
    ) -> Result<PotentialTable> {
        self.propagate(engine, evidence)?.marginal(var)
    }

    /// The session's resident serving engine — worker threads spawned
    /// once, table arenas recycled across queries — created with the
    /// default [`SchedulerConfig`] on first use. To pick the
    /// configuration, call [`InferenceSession::pooled_engine_with`]
    /// before the first pooled query.
    pub fn pooled_engine(&self) -> &PooledEngine {
        self.pooled
            .get_or_init(|| PooledEngine::new(SchedulerConfig::default()))
    }

    /// The resident serving engine, created with `config` if none
    /// exists yet. The first creation wins: if the pool is already
    /// running, the existing engine is returned and `config` ignored.
    pub fn pooled_engine_with(&self, config: SchedulerConfig) -> &PooledEngine {
        self.pooled.get_or_init(|| PooledEngine::new(config))
    }

    /// Posterior marginal of one variable on the resident pool: the
    /// steady-state serving path (no thread spawn, no table
    /// allocation on a warm arena).
    ///
    /// # Errors
    ///
    /// See [`PooledEngine::posterior`].
    pub fn posterior_pooled(&self, var: VarId, evidence: &EvidenceSet) -> Result<PotentialTable> {
        self.pooled_engine()
            .posterior(self.junction_tree(), self.task_graph(), var, evidence)
    }

    /// Answers a [`QueryBatch`] back-to-back on the resident pool,
    /// reusing one arena slot for the whole batch. Results are in
    /// input order.
    ///
    /// # Errors
    ///
    /// See [`PooledEngine::posterior_batch`].
    pub fn posterior_batch(&self, batch: &[Query]) -> Result<Vec<PotentialTable>> {
        self.pooled_engine()
            .posterior_batch(self.junction_tree(), self.task_graph(), batch)
    }

    /// Posterior marginal via **collect-only propagation**: the tree is
    /// re-rooted at a clique covering `var` and only the collect phase
    /// runs — half the propagation work of [`InferenceSession::posterior`],
    /// at the cost of building a one-shot task graph. Worth it when a
    /// single marginal is needed from a large tree; for many queries over
    /// the same evidence, full calibration amortizes better.
    ///
    /// # Errors
    ///
    /// [`crate::EngineError::VariableNotInTree`] if no clique covers
    /// `var`; [`crate::EngineError::ImpossibleEvidence`] if `P(e) = 0`.
    pub fn posterior_collect_only(
        &self,
        engine: &dyn Engine,
        var: VarId,
        evidence: &EvidenceSet,
    ) -> Result<PotentialTable> {
        let target = self
            .junction_tree()
            .clique_containing(var)
            .ok_or(crate::EngineError::VariableNotInTree(var))?;
        let mut shape = self.junction_tree().shape().clone();
        shape
            .reroot(target)
            .expect("clique_containing returns in-range ids");
        let graph = TaskGraph::collect_only(&shape, PropagationMode::SumProduct);
        let calibrated = engine.propagate_graph(self.junction_tree(), &graph, evidence)?;
        // only the target clique is calibrated; marginalize from it
        let table = calibrated.clique(target);
        let sub = table.domain().project(&[var]);
        let mut m = table.marginalize(&sub)?;
        if m.sum() <= 0.0 {
            return Err(crate::EngineError::ImpossibleEvidence);
        }
        m.normalize();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollaborativeEngine, SequentialEngine};
    use evprop_bayesnet::{networks, JointDistribution};

    #[test]
    fn session_reroots_and_stays_correct() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let joint = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);
        for v in 0..7u32 {
            let got = session.posterior(&SequentialEngine, VarId(v), &ev).unwrap();
            let want = joint.marginal(VarId(v), &ev).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "V{v}");
        }
    }

    #[test]
    fn rerooted_and_original_agree() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let a = InferenceSession::from_junction_tree(jt.clone());
        let b = InferenceSession::from_junction_tree_unrerooted(jt);
        assert!(a.root_choice().critical_path <= b.root_choice().critical_path);
        let ev = EvidenceSet::new();
        let pa = a.posterior(&SequentialEngine, VarId(3), &ev).unwrap();
        let pb = b.posterior(&SequentialEngine, VarId(3), &ev).unwrap();
        assert!(pa.approx_eq(&pb, 1e-9));
    }

    #[test]
    fn pooled_batch_matches_per_query_engines() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let batch: QueryBatch = (0..4u32)
            .map(|i| {
                let mut ev = EvidenceSet::new();
                ev.observe(VarId(7), (i % 2) as usize);
                Query::new(VarId(i), ev)
            })
            .collect();
        let pooled = session.posterior_batch(&batch).unwrap();
        assert_eq!(pooled.len(), batch.len());
        for (q, got) in batch.iter().zip(&pooled) {
            let want = session
                .posterior(&SequentialEngine, q.target, &q.evidence)
                .unwrap();
            assert!(got.approx_eq(&want, 1e-9), "query {:?}", q.target);
            let single = session.posterior_pooled(q.target, &q.evidence).unwrap();
            assert!(got.approx_eq(&single, 1e-12));
        }
    }

    #[test]
    fn session_reuse_across_queries_and_engines() {
        let net = networks::student();
        let session = InferenceSession::from_network(&net).unwrap();
        let collab = CollaborativeEngine::with_threads(2);
        for state in 0..2 {
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(3), state);
            let a = session.posterior(&SequentialEngine, VarId(2), &ev).unwrap();
            let b = session.posterior(&collab, VarId(2), &ev).unwrap();
            assert!(a.approx_eq(&b, 1e-9));
        }
    }
}

#[cfg(test)]
mod collect_only_tests {
    use super::*;
    use crate::{CollaborativeEngine, SequentialEngine};
    use evprop_bayesnet::networks;

    #[test]
    fn collect_only_matches_full_posterior() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);
        ev.observe_likelihood(VarId(6), vec![0.4, 0.8]);
        for v in 0..6u32 {
            let full = session.posterior(&SequentialEngine, VarId(v), &ev).unwrap();
            let fast = session
                .posterior_collect_only(&SequentialEngine, VarId(v), &ev)
                .unwrap();
            assert!(full.approx_eq(&fast, 1e-9), "V{v}");
            let fast_par = session
                .posterior_collect_only(&CollaborativeEngine::with_threads(3), VarId(v), &ev)
                .unwrap();
            assert!(full.approx_eq(&fast_par, 1e-9), "V{v} parallel");
        }
    }

    #[test]
    fn collect_only_detects_impossible_evidence() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(3), 1);
        ev.observe(VarId(5), 0); // contradiction
        let r = session.posterior_collect_only(&SequentialEngine, VarId(4), &ev);
        assert!(matches!(r, Err(crate::EngineError::ImpossibleEvidence)));
    }

    #[test]
    fn collect_only_unknown_variable() {
        let net = networks::sprinkler();
        let session = InferenceSession::from_network(&net).unwrap();
        let r = session.posterior_collect_only(&SequentialEngine, VarId(99), &EvidenceSet::new());
        assert!(matches!(r, Err(crate::EngineError::VariableNotInTree(_))));
    }
}
