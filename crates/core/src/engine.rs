//! The engine abstraction.

use crate::{Calibrated, Result};
use evprop_jtree::{CliqueId, JunctionTree};
use evprop_potential::EvidenceSet;
use evprop_taskgraph::TaskGraph;
use std::fmt::Debug;

/// An evidence-propagation engine: absorbs evidence into a junction tree
/// and runs two-phase propagation, producing calibrated clique
/// potentials.
///
/// All engines compute the same function; they differ in how the task
/// graph executes (sequentially, under the collaborative scheduler, or
/// under one of the baseline parallelization schemes).
pub trait Engine: Debug {
    /// Short stable name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Runs propagation of `evidence` through `jt` using the prebuilt
    /// task `graph` (which must have been built from `jt.shape()`).
    ///
    /// # Errors
    ///
    /// Propagates table-operation failures; see [`crate::EngineError`].
    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated>;

    /// Convenience: builds the task graph and propagates.
    ///
    /// # Errors
    ///
    /// See [`Engine::propagate_graph`].
    fn propagate(&self, jt: &JunctionTree, evidence: &EvidenceSet) -> Result<Calibrated> {
        let graph = TaskGraph::from_shape(jt.shape());
        self.propagate_graph(jt, &graph, evidence)
    }
}

/// Shared helper: pull the calibrated clique tables out of a final buffer
/// arena state.
pub(crate) fn collect_cliques(
    jt: &JunctionTree,
    graph: &TaskGraph,
    mut buffers: Vec<evprop_potential::PotentialTable>,
) -> Calibrated {
    let n = jt.num_cliques();
    let mut cliques = Vec::with_capacity(n);
    // clique buffers are the first n and in clique order by construction,
    // but go through the graph's mapping to stay robust
    for c in (0..n).map(CliqueId) {
        let b = graph.clique_buffer(c);
        cliques.push(std::mem::replace(
            &mut buffers[b.index()],
            evprop_potential::PotentialTable::scalar(0.0),
        ));
    }
    Calibrated::new(jt.shape().clone(), cliques)
}
