//! Engine error type.

use evprop_jtree::JtreeError;
use evprop_potential::{PotentialError, VarId};
use std::error::Error;
use std::fmt;

/// Errors produced by the inference engines.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The queried variable appears in no clique.
    VariableNotInTree(VarId),
    /// The evidence is impossible under the model (probability zero), so
    /// posteriors are undefined.
    ImpossibleEvidence,
    /// Junction-tree construction or validation failed.
    Jtree(JtreeError),
    /// A potential-table operation failed.
    Potential(PotentialError),
    /// A scheduler worker thread panicked while executing the job. The
    /// pool survives (panics are contained per job), but this query
    /// produced no result.
    WorkerPanicked(String),
    /// The job's cancellation token fired (typically a query deadline)
    /// before propagation completed: workers stopped at task
    /// boundaries and no result was produced. Cancellation never
    /// alters a result that *is* produced — a query that completes is
    /// bit-identical to an uncancelled run.
    Cancelled,
    /// An observed state index is out of range for its variable.
    InvalidEvidenceState {
        /// The observed variable.
        var: VarId,
        /// The rejected state index.
        state: usize,
        /// The variable's state count.
        cardinality: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::VariableNotInTree(v) => {
                write!(f, "variable {v} does not appear in any clique")
            }
            EngineError::ImpossibleEvidence => {
                write!(f, "evidence has probability zero under the model")
            }
            EngineError::Jtree(e) => write!(f, "junction tree error: {e}"),
            EngineError::Potential(e) => write!(f, "potential-table error: {e}"),
            EngineError::WorkerPanicked(msg) => {
                write!(f, "worker thread panicked during the job: {msg}")
            }
            EngineError::Cancelled => {
                write!(f, "job cancelled before completion")
            }
            EngineError::InvalidEvidenceState {
                var,
                state,
                cardinality,
            } => {
                write!(
                    f,
                    "state {state} is out of range for variable {var} ({cardinality} states)"
                )
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Jtree(e) => Some(e),
            EngineError::Potential(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JtreeError> for EngineError {
    fn from(e: JtreeError) -> Self {
        EngineError::Jtree(e)
    }
}

impl From<PotentialError> for EngineError {
    fn from(e: PotentialError) -> Self {
        EngineError::Potential(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let errs: Vec<EngineError> = vec![
            EngineError::VariableNotInTree(VarId(1)),
            EngineError::ImpossibleEvidence,
            EngineError::Jtree(JtreeError::BadCliqueId(3)),
            EngineError::Potential(PotentialError::UnknownVariable(VarId(0))),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[2].source().is_some());
        assert!(errs[0].source().is_none());
    }
}
