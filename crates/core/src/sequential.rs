//! The sequential reference engine.

use crate::engine::collect_cliques;
use crate::{Calibrated, Engine, Result};
use evprop_jtree::JunctionTree;
use evprop_potential::EvidenceSet;
use evprop_sched::TableArena;
use evprop_taskgraph::{execute_full, TaskGraph};

/// Classic single-threaded Hugin two-phase propagation: the task graph
/// executes in topological order. Every parallel engine is tested against
/// this one, and this one against the brute-force joint oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine;

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        let mut arena = TableArena::initialize(graph, jt.potentials(), evidence);
        let order = graph
            .topological_order()
            .expect("task graphs from trees are acyclic");
        let tables = arena.tables_mut();
        for t in order {
            execute_full(&graph.task(t).kind, tables);
        }
        Ok(collect_cliques(jt, graph, arena.into_tables()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::{networks, JointDistribution};
    use evprop_potential::VarId;

    #[test]
    fn matches_oracle_on_asia_no_evidence() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let joint = JointDistribution::of(&net).unwrap();
        let cal = SequentialEngine
            .propagate(&jt, &EvidenceSet::new())
            .unwrap();
        for v in 0..8u32 {
            let got = cal.marginal(VarId(v)).unwrap();
            let want = joint.marginal(VarId(v), &EvidenceSet::new()).unwrap();
            assert!(
                got.approx_eq(&want, 1e-9),
                "marginal of V{v}: {:?} vs {:?}",
                got,
                want
            );
        }
    }

    #[test]
    fn matches_oracle_with_evidence() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let joint = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1); // dyspnoea
        ev.observe(VarId(0), 1); // visited asia
        let cal = SequentialEngine.propagate(&jt, &ev).unwrap();
        for v in [1u32, 2, 3, 4, 5, 6] {
            let got = cal.marginal(VarId(v)).unwrap();
            let want = joint.marginal(VarId(v), &ev).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "V{v}");
        }
        // P(e) agrees too
        let pe = joint.probability_of_evidence(&ev).unwrap();
        assert!((cal.probability_of_evidence() - pe).abs() < 1e-9);
    }

    #[test]
    fn multiple_evidence_cliques_supported() {
        // the paper claims performance/correctness independent of the
        // number of evidence variables — check correctness side
        let net = networks::student();
        let jt = JunctionTree::from_network(&net).unwrap();
        let joint = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        ev.observe(VarId(3), 1);
        ev.observe(VarId(4), 0);
        let cal = SequentialEngine.propagate(&jt, &ev).unwrap();
        for v in [1u32, 2] {
            let got = cal.marginal(VarId(v)).unwrap();
            let want = joint.marginal(VarId(v), &ev).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "V{v}");
        }
    }
}
