//! Compile-once, serve-many: the collaborative scheduler behind a
//! persistent worker pool with recycled table arenas.

use crate::{Calibrated, Engine, Result, ShardState};
use evprop_jtree::JunctionTree;
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_sched::{RunReport, SchedulerConfig};
use evprop_taskgraph::TaskGraph;

/// A [`CollaborativeEngine`](crate::CollaborativeEngine) variant for
/// services: worker threads are spawned **once** (a resident
/// [`evprop_sched::CollabPool`]) and table arenas are **recycled**
/// across queries ([`evprop_sched::TableArena::reset`] instead of a
/// fresh allocation), so the steady-state cost of a query is the
/// propagation itself — no thread spawn, no buffer allocation.
///
/// Internally this is exactly one [`ShardState`]; the sharded serving
/// runtime (`evprop-serve`) runs N of them side by side.
///
/// # Example
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_core::{Engine, PooledEngine};
/// use evprop_potential::{EvidenceSet, VarId};
/// use evprop_jtree::JunctionTree;
///
/// let jt = JunctionTree::from_network(&networks::asia())?;
/// let engine = PooledEngine::with_threads(2);
/// for state in 0..2 {
///     let mut ev = EvidenceSet::new();
///     ev.observe(VarId(7), state);
///     let calibrated = engine.propagate(&jt, &ev)?;
///     assert!((calibrated.marginal(VarId(3))?.sum() - 1.0).abs() < 1e-9);
/// }
/// # Ok::<(), evprop_core::EngineError>(())
/// ```
pub struct PooledEngine {
    shard: ShardState,
}

impl std::fmt::Debug for PooledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledEngine")
            .field("shard", &self.shard)
            .finish()
    }
}

impl PooledEngine {
    /// An engine with resident `config.num_threads` workers.
    pub fn new(config: SchedulerConfig) -> Self {
        PooledEngine {
            shard: ShardState::new(config),
        }
    }

    /// An engine with `threads` resident workers and default δ.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(SchedulerConfig::with_threads(threads))
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        self.shard.config()
    }

    /// Number of resident worker threads.
    pub fn num_threads(&self) -> usize {
        self.shard.num_threads()
    }

    /// The underlying shard, for callers that want arena-level control
    /// ([`ShardState::checkout`] / [`ShardState::posterior_on`]).
    pub fn shard(&self) -> &ShardState {
        &self.shard
    }

    /// Attaches (or with `None`, detaches) a span sink recording this
    /// engine's scheduler events, arena checkouts, and query spans.
    /// See [`ShardState::attach_trace`].
    #[cfg(feature = "trace")]
    pub fn attach_trace(&self, sink: Option<std::sync::Arc<evprop_trace::TraceSink>>) {
        self.shard.attach_trace(sink, 0);
    }

    /// Per-thread statistics of the most recent job, if any. On the
    /// pooled path `wall` is per-job handoff-to-completion time and
    /// `total_tables_allocated` stays 0 for unpartitioned steady-state
    /// queries — the two numbers this engine exists to shrink.
    pub fn last_report(&self) -> Option<RunReport> {
        self.shard.last_report()
    }

    /// Posterior marginal of `var` without materializing a full
    /// [`Calibrated`]: propagates, marginalizes straight out of the
    /// arena buffer of the smallest clique covering `var`, and recycles
    /// the arena — the only allocation on a warm path is the returned
    /// marginal.
    ///
    /// # Errors
    ///
    /// [`crate::EngineError::VariableNotInTree`] if no clique covers
    /// `var`; [`crate::EngineError::ImpossibleEvidence`] if `P(e) = 0`;
    /// [`crate::EngineError::WorkerPanicked`] if a worker died mid-job.
    pub fn posterior(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        var: VarId,
        evidence: &EvidenceSet,
    ) -> Result<PotentialTable> {
        self.shard.posterior(jt, graph, var, evidence)
    }

    /// Answers a batch of queries, reusing **one** arena (and its
    /// evidence-scratch buffers) across the whole batch: each query
    /// resets the arena in place, runs as one pool job, and yields its
    /// normalized posterior. Queries run back-to-back on the resident
    /// workers; results are in input order.
    ///
    /// # Errors
    ///
    /// Per-query errors as in [`PooledEngine::posterior`]; the first
    /// error aborts the batch.
    pub fn posterior_batch(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        queries: &[crate::Query],
    ) -> Result<Vec<PotentialTable>> {
        self.shard.posterior_batch(jt, graph, queries)
    }
}

impl Engine for PooledEngine {
    fn name(&self) -> &'static str {
        "pooled"
    }

    fn propagate_graph(
        &self,
        jt: &JunctionTree,
        graph: &TaskGraph,
        evidence: &EvidenceSet,
    ) -> Result<Calibrated> {
        self.shard.calibrate(jt, graph, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Query, SequentialEngine};
    use evprop_bayesnet::networks;

    #[test]
    fn pooled_agrees_with_sequential() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let engine = PooledEngine::with_threads(3);
        for state in 0..2 {
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(7), state);
            let reference = SequentialEngine.propagate(&jt, &ev).unwrap();
            let got = engine.propagate(&jt, &ev).unwrap();
            assert!(got.max_divergence(&reference) < 1e-9, "state {state}");
        }
    }

    #[test]
    fn warm_queries_reuse_arena_without_table_allocations() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let engine = PooledEngine::new(SchedulerConfig::with_threads(2).without_partitioning());
        let ev = EvidenceSet::new();
        // cold start allocates the arena …
        engine.posterior(&jt, &graph, VarId(3), &ev).unwrap();
        // … warm queries reset it in place; no worker allocates a table
        for _ in 0..3 {
            engine.posterior(&jt, &graph, VarId(3), &ev).unwrap();
            let report = engine.last_report().unwrap();
            assert_eq!(report.total_tables_allocated(), 0);
        }
        assert_eq!(engine.shard.cached_arenas(), 1);
        assert_eq!(engine.shard.arenas_allocated(), 1);
    }

    #[test]
    fn posterior_matches_full_calibration() {
        let net = networks::student();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let engine = PooledEngine::with_threads(2);
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(3), 1);
        for v in 0..3u32 {
            let fast = engine.posterior(&jt, &graph, VarId(v), &ev).unwrap();
            let full = engine
                .propagate_graph(&jt, &graph, &ev)
                .unwrap()
                .marginal(VarId(v))
                .unwrap();
            assert!(fast.approx_eq(&full, 1e-9), "V{v}");
        }
    }

    #[test]
    fn posterior_batch_in_input_order() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let engine = PooledEngine::with_threads(2);
        let queries: Vec<Query> = (0..4u32)
            .map(|i| {
                let mut ev = EvidenceSet::new();
                ev.observe(VarId(7), (i % 2) as usize);
                Query::new(VarId(i % 3), ev)
            })
            .collect();
        let batch = engine.posterior_batch(&jt, &graph, &queries).unwrap();
        assert_eq!(batch.len(), 4);
        for (q, got) in queries.iter().zip(&batch) {
            let want = engine
                .posterior(&jt, &graph, q.target, &q.evidence)
                .unwrap();
            assert!(got.approx_eq(&want, 1e-12));
        }
    }

    #[test]
    fn unknown_variable_and_impossible_evidence() {
        let net = networks::asia();
        let jt = JunctionTree::from_network(&net).unwrap();
        let graph = TaskGraph::from_shape(jt.shape());
        let engine = PooledEngine::with_threads(2);
        let r = engine.posterior(&jt, &graph, VarId(99), &EvidenceSet::new());
        assert!(matches!(r, Err(crate::EngineError::VariableNotInTree(_))));
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(3), 1);
        ev.observe(VarId(5), 0); // contradiction
        let r = engine.posterior(&jt, &graph, VarId(4), &ev);
        assert!(matches!(r, Err(crate::EngineError::ImpossibleEvidence)));
    }
}
