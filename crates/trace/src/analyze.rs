//! Timeline analysis: turn a raw [`Trace`] into the per-thread
//! busy/idle/steal breakdowns and load-imbalance score the paper's
//! Fig. 5–8 discussion is phrased in.

use crate::event::SpanKind;
use crate::recorder::Trace;
use crate::stats::imbalance_of;

/// What one recorder row's timeline amounts to.
#[derive(Clone, Debug, Default)]
pub struct ThreadTimeline {
    /// The recorder row.
    pub thread: usize,
    /// Nanoseconds inside task spans (primitive execution).
    pub busy_ns: u64,
    /// Nanoseconds inside idle-spin spans.
    pub idle_ns: u64,
    /// Successful steals recorded.
    pub steals: u64,
    /// Local fetches recorded.
    pub fetches: u64,
    /// (Sub)tasks executed.
    pub tasks: u64,
    /// Total task weight (table entries) executed.
    pub weight: u64,
    /// Events lost to ring overflow (the breakdown above undercounts
    /// if this is nonzero).
    pub dropped: u64,
}

impl ThreadTimeline {
    fn is_worker(&self) -> bool {
        self.tasks > 0 || self.fetches > 0 || self.steals > 0 || self.idle_ns > 0
    }
}

/// Aggregate analysis of a drained trace.
#[derive(Clone, Debug, Default)]
pub struct TimelineAnalysis {
    /// Per-row timelines, in row order (including the control row,
    /// which reports zero busy time).
    pub threads: Vec<ThreadTimeline>,
    /// Span of the whole trace: latest `end_ns` minus earliest
    /// `start_ns` over every event.
    pub wall_ns: u64,
    /// Total busy nanoseconds across worker rows.
    pub busy_ns: u64,
    /// Total idle-spin nanoseconds across worker rows.
    pub idle_ns: u64,
    /// Job spans observed (control row).
    pub jobs: u64,
    /// Query spans observed (control row).
    pub queries: u64,
    /// `max / mean` of per-worker executed weight (1.0 = balanced);
    /// same score as `RunReport::imbalance`.
    pub imbalance: f64,
    /// `busy / (wall × workers)`: the fraction of the parallel
    /// section's capacity spent in primitives.
    pub parallel_efficiency: f64,
    /// Observed cost rate `busy_ns / total weight` — multiply by a
    /// task graph's critical-path weight to estimate the reroot lower
    /// bound on wall time.
    pub ns_per_weight: f64,
}

impl TimelineAnalysis {
    /// Rows that actually ran scheduler work (excludes the control row
    /// and any idle workers that recorded nothing).
    pub fn worker_count(&self) -> usize {
        self.threads.iter().filter(|t| t.is_worker()).count()
    }

    /// Total task weight executed across workers.
    pub fn total_weight(&self) -> u64 {
        self.threads.iter().map(|t| t.weight).sum()
    }

    /// Estimated wall-time lower bound (nanoseconds) for a dependency
    /// chain of `critical_path_weight` table entries, at this trace's
    /// observed cost rate.
    pub fn critical_path_estimate_ns(&self, critical_path_weight: u64) -> u64 {
        (self.ns_per_weight * critical_path_weight as f64) as u64
    }
}

/// Computes per-thread and aggregate timelines from a drained trace.
pub fn analyze(trace: &Trace) -> TimelineAnalysis {
    let mut threads = Vec::with_capacity(trace.threads.len());
    let (mut min_start, mut max_end) = (u64::MAX, 0u64);
    let (mut jobs, mut queries) = (0u64, 0u64);
    for t in &trace.threads {
        let mut tl = ThreadTimeline {
            thread: t.thread,
            dropped: t.dropped_events,
            ..Default::default()
        };
        for e in &t.events {
            min_start = min_start.min(e.start_ns);
            max_end = max_end.max(e.end_ns);
            match e.kind {
                SpanKind::Task { weight, .. } => {
                    tl.busy_ns += e.duration_ns();
                    tl.tasks += 1;
                    tl.weight += weight;
                }
                SpanKind::IdleSpin => tl.idle_ns += e.duration_ns(),
                SpanKind::Steal { .. } => tl.steals += 1,
                SpanKind::Fetch => tl.fetches += 1,
                SpanKind::Job { .. } => jobs += 1,
                SpanKind::Query { .. } => queries += 1,
                SpanKind::Partition { .. }
                | SpanKind::ArenaCheckout { .. }
                | SpanKind::PlanCache { .. }
                | SpanKind::KernelBackend { .. }
                | SpanKind::Faults { .. } => {}
            }
        }
        threads.push(tl);
    }
    let workers: Vec<&ThreadTimeline> = threads.iter().filter(|t| t.is_worker()).collect();
    let busy_ns: u64 = workers.iter().map(|t| t.busy_ns).sum();
    let idle_ns: u64 = workers.iter().map(|t| t.idle_ns).sum();
    let weights: Vec<u64> = workers.iter().map(|t| t.weight).collect();
    let total_weight: u64 = weights.iter().sum();
    let wall_ns = max_end.saturating_sub(if min_start == u64::MAX { 0 } else { min_start });
    let capacity = wall_ns.saturating_mul(workers.len() as u64);
    TimelineAnalysis {
        imbalance: imbalance_of(&weights),
        parallel_efficiency: if capacity == 0 {
            0.0
        } else {
            busy_ns as f64 / capacity as f64
        },
        ns_per_weight: if total_weight == 0 {
            0.0
        } else {
            busy_ns as f64 / total_weight as f64
        },
        threads,
        wall_ns,
        busy_ns,
        idle_ns,
        jobs,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PrimitiveKind;
    use crate::recorder::TraceSink;

    fn task(buffer: u32, weight: u64) -> SpanKind {
        SpanKind::Task {
            buffer,
            primitive: PrimitiveKind::Multiply,
            weight,
            part: None,
        }
    }

    #[test]
    fn analyze_reconstructs_per_thread_breakdown() {
        let sink = TraceSink::for_workers(2, 64);
        // worker 0: two tasks (300 ns busy, weight 30) and a fetch
        sink.recorder(0).instant(SpanKind::Fetch, 50);
        sink.recorder(0).span(task(0, 10), 100, 200);
        sink.recorder(0).span(task(1, 20), 200, 400);
        // worker 1: one stolen task (100 ns busy, weight 10) + idle
        sink.recorder(1).instant(SpanKind::Steal { victim: 0 }, 90);
        sink.recorder(1).span(task(2, 10), 100, 200);
        sink.recorder(1).span(SpanKind::IdleSpin, 200, 500);
        // control: the job
        sink.control().span(SpanKind::Job { tasks: 3 }, 0, 600);

        let a = analyze(&sink.drain());
        assert_eq!(a.threads.len(), 3);
        assert_eq!(a.worker_count(), 2);
        assert_eq!(a.wall_ns, 600);
        assert_eq!(a.busy_ns, 400);
        assert_eq!(a.idle_ns, 300);
        assert_eq!(a.jobs, 1);
        assert_eq!(a.queries, 0);
        assert_eq!(a.total_weight(), 40);
        let t0 = &a.threads[0];
        assert_eq!(
            (t0.busy_ns, t0.tasks, t0.weight, t0.fetches),
            (300, 2, 30, 1)
        );
        let t1 = &a.threads[1];
        assert_eq!((t1.busy_ns, t1.idle_ns, t1.steals), (100, 300, 1));
        // weight 30 vs 10: max/mean = 30/20
        assert!((a.imbalance - 1.5).abs() < 1e-12);
        // 400 busy over 600 ns × 2 workers
        assert!((a.parallel_efficiency - 400.0 / 1200.0).abs() < 1e-12);
        // 400 ns / 40 weight = 10 ns per entry
        assert!((a.ns_per_weight - 10.0).abs() < 1e-12);
        assert_eq!(a.critical_path_estimate_ns(25), 250);
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = analyze(&TraceSink::for_workers(4, 8).drain());
        assert_eq!(a.wall_ns, 0);
        assert_eq!(a.worker_count(), 0);
        assert_eq!(a.parallel_efficiency, 0.0);
        assert_eq!(a.imbalance, 1.0);
    }
}
