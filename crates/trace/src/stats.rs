//! Per-thread execution statistics (the measurements behind Fig. 8).
//!
//! These types live here — rather than in `evprop-sched`, which
//! re-exports them — so the timeline analyzer, the serving runtime and
//! the scheduler all report through one set of definitions.

use std::time::Duration;

/// What one worker thread did during a run.
#[derive(Clone, Debug, Default)]
pub struct ThreadStats {
    /// Time spent executing node-level primitives ("computation time" in
    /// the paper's Fig. 8 terminology).
    pub busy: Duration,
    /// Time spent in the scheduler itself: fetching, allocating,
    /// partitioning, waiting.
    pub overhead: Duration,
    /// The part of `overhead` spent spinning with an empty ready list
    /// (and, with stealing on, nothing to steal) — the cost a persistent
    /// pool must keep low between a job's dependency waves.
    pub idle_spin: Duration,
    /// Number of (sub)tasks executed.
    pub tasks_executed: usize,
    /// Total weight (table entries processed) executed.
    pub weight_executed: u64,
    /// Tasks this thread obtained by stealing from a victim's list.
    pub steals: u64,
    /// Ready (sub)tasks this thread handed to a local list (the
    /// Allocate module ran here).
    pub allocations: u64,
    /// Fresh `PotentialTable`s this thread allocated during execution
    /// (partial tables of partitioned marginalizations) — `0` on the
    /// steady-state pooled path for unpartitioned runs, and the metric
    /// the arena-reuse work drives down.
    pub tables_allocated: u64,
}

impl ThreadStats {
    /// `busy / (busy + overhead)` — the computation-time ratio of
    /// Fig. 8(b); 1.0 for a thread that never waited.
    pub fn compute_ratio(&self) -> f64 {
        let total = self.busy + self.overhead;
        if total.is_zero() {
            return 1.0;
        }
        self.busy.as_secs_f64() / total.as_secs_f64()
    }
}

/// Outcome of one scheduler run (one **job** on a pool).
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-thread statistics, indexed by worker id.
    pub threads: Vec<ThreadStats>,
    /// Wall-clock time of the parallel section: for a pooled run this is
    /// the per-job wall time (handoff to last worker done), excluding
    /// thread spawn — which a one-shot run pays inside this figure.
    pub wall: Duration,
    /// How many tasks the Partition module split.
    pub partitioned_tasks: usize,
    /// Total dynamic subtasks spawned by partitioning.
    pub subtasks_spawned: usize,
}

impl RunReport {
    /// Total successful steals across threads.
    pub fn total_steals(&self) -> u64 {
        self.threads.iter().map(|t| t.steals).sum()
    }

    /// Total Allocate-module placements across threads.
    pub fn total_allocations(&self) -> u64 {
        self.threads.iter().map(|t| t.allocations).sum()
    }

    /// Total fresh tables allocated during execution across threads.
    pub fn total_tables_allocated(&self) -> u64 {
        self.threads.iter().map(|t| t.tables_allocated).sum()
    }

    /// Total time threads spent spinning idle (see
    /// [`ThreadStats::idle_spin`]).
    pub fn total_idle_spin(&self) -> Duration {
        self.threads.iter().map(|t| t.idle_spin).sum()
    }

    /// Load imbalance: max over threads of `weight_executed` divided by
    /// the mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let weights: Vec<u64> = self.threads.iter().map(|t| t.weight_executed).collect();
        imbalance_of(&weights)
    }
}

/// Load imbalance of a per-thread weight distribution: `max / mean`
/// (1.0 = perfectly balanced, 1.0 for empty or all-zero input). Used
/// by both [`RunReport::imbalance`] and the timeline analyzer so the
/// two scores are directly comparable.
pub fn imbalance_of(weights: &[u64]) -> f64 {
    if weights.is_empty() {
        return 1.0;
    }
    let max = *weights.iter().max().unwrap() as f64;
    let mean = weights.iter().sum::<u64>() as f64 / weights.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_ratio_bounds() {
        let mut s = ThreadStats::default();
        assert_eq!(s.compute_ratio(), 1.0);
        s.busy = Duration::from_millis(99);
        s.overhead = Duration::from_millis(1);
        let r = s.compute_ratio();
        assert!(r > 0.98 && r < 1.0);
    }

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let report = RunReport {
            threads: vec![
                ThreadStats {
                    weight_executed: 100,
                    ..Default::default()
                };
                4
            ],
            ..Default::default()
        };
        assert_eq!(report.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut threads = vec![
            ThreadStats {
                weight_executed: 100,
                ..Default::default()
            };
            2
        ];
        threads[1].weight_executed = 300;
        let report = RunReport {
            threads,
            ..Default::default()
        };
        assert_eq!(report.imbalance(), 1.5);
    }

    #[test]
    fn empty_report_defaults() {
        let r = RunReport::default();
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.partitioned_tasks, 0);
        assert_eq!(imbalance_of(&[]), 1.0);
        assert_eq!(imbalance_of(&[0, 0]), 1.0);
    }
}
