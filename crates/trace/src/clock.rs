//! The shared monotonic clock every recorder timestamps against.

use std::time::Instant;

/// A monotonic clock with a fixed epoch.
///
/// All recorders of one [`TraceSink`](crate::TraceSink) share one
/// clock, so timestamps from different threads are directly comparable
/// and the exported timeline needs no per-thread skew correction.
/// Reading the clock is one `Instant::now()` — no synchronization.
#[derive(Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl Default for TraceClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceClock {
    /// A clock whose epoch is *now*.
    pub fn new() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.ns_at(Instant::now())
    }

    /// Converts an [`Instant`] (e.g. one already taken for a
    /// statistics measurement) to nanoseconds since the epoch, so a
    /// span and the `ThreadStats` duration it mirrors are computed
    /// from the *same* readings and agree exactly.
    pub fn ns_at(&self, t: Instant) -> u64 {
        u64::try_from(
            t.checked_duration_since(self.epoch)
                .unwrap_or_default()
                .as_nanos(),
        )
        .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = TraceClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn instants_before_the_epoch_clamp_to_zero() {
        let before = Instant::now();
        let c = TraceClock::new();
        assert_eq!(c.ns_at(before), 0);
    }

    #[test]
    fn ns_at_matches_elapsed_arithmetic() {
        let c = TraceClock::new();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = Instant::now();
        let span = c.ns_at(t1) - c.ns_at(t0);
        let elapsed = u64::try_from((t1 - t0).as_nanos()).unwrap();
        assert_eq!(span, elapsed);
    }
}
