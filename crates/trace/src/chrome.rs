//! Chrome-trace (Trace Event Format) export.
//!
//! The emitted JSON loads directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one `pid 0` process, one `tid`
//! per recorder row (named `worker N`, plus `control` for the sink's
//! control row), complete spans as `ph:"X"` events and zero-duration
//! events as `ph:"i"` instants. Timestamps are microseconds with
//! nanosecond fractions, monotone non-decreasing within each `tid`.

use std::fmt::Write as _;

use crate::event::{SpanKind, TraceEvent};
use crate::recorder::Trace;

/// Appends `ns` nanoseconds as a microsecond decimal (`"12.345"`).
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn event_name(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::Task { primitive, .. } => primitive.name(),
        SpanKind::Partition { .. } => "partition",
        SpanKind::Fetch => "fetch",
        SpanKind::Steal { .. } => "steal",
        SpanKind::IdleSpin => "idle",
        SpanKind::ArenaCheckout { .. } => "arena-checkout",
        SpanKind::Job { .. } => "job",
        SpanKind::Query { .. } => "query",
        SpanKind::PlanCache { .. } => "plan-cache",
        SpanKind::KernelBackend { .. } => "kernel-backend",
        SpanKind::Faults { .. } => "faults",
    }
}

fn push_args(out: &mut String, e: &TraceEvent) {
    let _ = match e.kind {
        SpanKind::Task {
            buffer,
            weight,
            part,
            ..
        } => {
            let _ = write!(out, "\"buffer\":{buffer},\"weight\":{weight},");
            match part {
                Some(p) => write!(out, "\"part\":{p},"),
                None => write!(out, "\"part\":null,"),
            }
        }
        SpanKind::Partition { buffer, parts } => {
            write!(out, "\"buffer\":{buffer},\"parts\":{parts},")
        }
        SpanKind::Steal { victim } => write!(out, "\"victim\":{victim},"),
        SpanKind::ArenaCheckout { fresh } => write!(out, "\"fresh\":{fresh},"),
        SpanKind::Job { tasks } => write!(out, "\"tasks\":{tasks},"),
        SpanKind::Query { shard } => write!(out, "\"shard\":{shard},"),
        SpanKind::PlanCache {
            hits,
            misses,
            interned,
        } => write!(
            out,
            "\"hits\":{hits},\"misses\":{misses},\"interned\":{interned},"
        ),
        SpanKind::KernelBackend { backend } => write!(out, "\"backend\":\"{backend}\","),
        SpanKind::Faults {
            shed,
            cancelled,
            panics,
            restarts,
        } => write!(
            out,
            "\"shed\":{shed},\"cancelled\":{cancelled},\"panics\":{panics},\"restarts\":{restarts},"
        ),
        SpanKind::Fetch | SpanKind::IdleSpin => Ok(()),
    };
    let _ = write!(out, "\"depth\":{}", e.depth);
}

fn push_event(out: &mut String, tid: usize, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",",
        event_name(&e.kind),
        e.kind.category()
    );
    if e.end_ns > e.start_ns {
        out.push_str("\"ph\":\"X\",\"ts\":");
        push_us(out, e.start_ns);
        out.push_str(",\"dur\":");
        push_us(out, e.end_ns - e.start_ns);
    } else {
        out.push_str("\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        push_us(out, e.start_ns);
    }
    let _ = write!(out, ",\"pid\":0,\"tid\":{tid},\"args\":{{");
    push_args(out, e);
    out.push_str("}}");
}

/// Serializes a drained [`Trace`] to Chrome-trace JSON.
///
/// One event object per line inside `traceEvents`; thread-name
/// metadata events come first, then each row's events in start order,
/// so timestamps are monotone per `tid`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };
    let last = trace.threads.len().saturating_sub(1);
    for t in &trace.threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"",
            t.thread
        );
        if t.thread == last && trace.threads.len() > 1 {
            out.push_str("control");
        } else {
            let _ = write!(out, "worker {}", t.thread);
        }
        out.push_str("\"}}");
    }
    for t in &trace.threads {
        for e in &t.events {
            sep(&mut out);
            push_event(&mut out, t.thread, e);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PrimitiveKind;
    use crate::recorder::TraceSink;

    fn sample_trace() -> Trace {
        let sink = TraceSink::for_workers(2, 64);
        sink.recorder(0).span(
            SpanKind::Task {
                buffer: 3,
                primitive: PrimitiveKind::Marginalize,
                weight: 128,
                part: Some(1),
            },
            1_500,
            4_750,
        );
        sink.recorder(0).instant(SpanKind::Fetch, 1_400);
        sink.recorder(1)
            .instant(SpanKind::Steal { victim: 0 }, 2_000);
        sink.control()
            .span(SpanKind::Job { tasks: 7 }, 1_000, 5_000);
        sink.drain()
    }

    #[test]
    fn export_carries_required_fields() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"control\""));
        // The task span: ts 1.5 µs, dur 3.25 µs, with its args.
        assert!(json.contains(
            "{\"name\":\"marginalize\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":1.500,\"dur\":3.250,\
             \"pid\":0,\"tid\":0,\"args\":{\"buffer\":3,\"weight\":128,\"part\":1,\"depth\":0}}"
        ));
        // Instants carry a scope and no dur.
        assert!(json.contains("\"name\":\"steal\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\""));
        assert!(json.contains("\"victim\":0"));
        // The job span lands on the control row (tid 2).
        assert!(json.contains("\"name\":\"job\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1.000,\"dur\":4.000,\"pid\":0,\"tid\":2"));
    }

    #[test]
    fn braces_and_brackets_balance() {
        let json = chrome_trace_json(&sample_trace());
        let bal = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}'));
        assert!(bal('[', ']'));
        assert!(!json.contains("}{"), "missing separators");
    }

    #[test]
    fn timestamps_are_monotone_per_tid() {
        let json = chrome_trace_json(&sample_trace());
        // Extract (tid, ts) pairs line by line and check per-tid order.
        let mut last: std::collections::HashMap<u64, f64> = Default::default();
        for line in json.lines().filter(|l| l.contains("\"ts\":")) {
            let grab = |key: &str| -> f64 {
                let at = line.find(key).unwrap() + key.len();
                line[at..]
                    .split([',', '}'])
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            let (tid, ts) = (grab("\"tid\":") as u64, grab("\"ts\":"));
            assert!(
                ts >= *last.get(&tid).unwrap_or(&0.0),
                "tid {tid} went backwards"
            );
            last.insert(tid, ts);
        }
        assert_eq!(last.len(), 3);
    }
}
