//! The event model: what one recorded span *is*.

/// Which node-level primitive a task span executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimitiveKind {
    /// Sum-marginalization of a clique onto a separator.
    Marginalize,
    /// Max-marginalization (max-product propagation).
    MaxMarginalize,
    /// Separator division (new message / old message).
    Divide,
    /// Extension of a separator onto a clique domain.
    Extend,
    /// Pointwise multiplication into a clique.
    Multiply,
}

impl PrimitiveKind {
    /// Short lowercase name, used in exported trace event names.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveKind::Marginalize => "marginalize",
            PrimitiveKind::MaxMarginalize => "max-marginalize",
            PrimitiveKind::Divide => "divide",
            PrimitiveKind::Extend => "extend",
            PrimitiveKind::Multiply => "multiply",
        }
    }
}

/// What a span covers. Instant-like events (a partition decision, a
/// fetch, a steal) are recorded with `start_ns == end_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One (sub)task execution: the destination buffer it wrote, the
    /// primitive it ran, its weight (table entries processed), and —
    /// for a subtask of a δ-partitioned task — its part index
    /// (`None` for an unpartitioned full-table execution).
    Task {
        /// Destination buffer index in the task graph.
        buffer: u32,
        /// The primitive executed.
        primitive: PrimitiveKind,
        /// Table entries processed (the scheduler's weight unit).
        weight: u64,
        /// Part index within a partitioned task, `None` if whole.
        part: Option<u32>,
    },
    /// The Partition module split a task into `parts` subtasks.
    Partition {
        /// Destination buffer of the split task.
        buffer: u32,
        /// Number of subtasks created (including the combiner).
        parts: u32,
    },
    /// The Fetch module popped a unit from this thread's own list.
    Fetch,
    /// A successful steal from `victim`'s ready list.
    Steal {
        /// The thread stolen from.
        victim: u32,
    },
    /// A contiguous period spent spinning with nothing to run.
    IdleSpin,
    /// A serving shard checked an arena out of its cache (`fresh` on a
    /// cold-start allocation, warm reuse otherwise).
    ArenaCheckout {
        /// Whether the checkout allocated a fresh arena.
        fresh: bool,
    },
    /// One whole scheduler job (a propagation) on a pool.
    Job {
        /// Static tasks in the job's graph.
        tasks: u32,
    },
    /// One serving query (reset + propagate + marginalize).
    Query {
        /// The shard that answered it.
        shard: u32,
    },
    /// A kernel-plan cache counter snapshot, recorded as an instant on
    /// the control row (e.g. whenever the serving runtime takes a
    /// stats snapshot), so exported timelines carry the cache's
    /// hit/miss history alongside the scheduler spans.
    PlanCache {
        /// δ-subrange lookups answered from the memo.
        hits: u64,
        /// Lookups that had to compile (or re-key) a plan.
        misses: u64,
        /// Distinct interned plans at snapshot time.
        interned: u64,
    },
    /// The active SIMD kernel backend, recorded as an instant on the
    /// control row alongside stats snapshots so exported timelines
    /// state which kernels produced them.
    KernelBackend {
        /// Stable backend name (`scalar`, `sse2`, `avx2`, `portable`).
        backend: &'static str,
    },
    /// A fault-tolerance counter snapshot, recorded as an instant on
    /// the control row alongside stats snapshots so exported timelines
    /// carry the shed/cancel/panic/restart history of the serving
    /// runtime next to the scheduler spans.
    Faults {
        /// Queries shed at dequeue with an already-expired deadline.
        shed: u64,
        /// In-flight jobs stopped early by a fired deadline token.
        cancelled: u64,
        /// Queries failed by a worker panic (or thread death).
        panics: u64,
        /// Dead pool worker threads reaped and respawned.
        restarts: u64,
    },
}

impl SpanKind {
    /// The category string used in Chrome-trace export (`cat` field).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Task { .. } => "task",
            SpanKind::Partition { .. } => "partition",
            SpanKind::Fetch => "fetch",
            SpanKind::Steal { .. } => "steal",
            SpanKind::IdleSpin => "idle",
            SpanKind::ArenaCheckout { .. } => "arena",
            SpanKind::Job { .. } => "job",
            SpanKind::Query { .. } => "query",
            SpanKind::PlanCache { .. } => "plan-cache",
            SpanKind::KernelBackend { .. } => "kernel-backend",
            SpanKind::Faults { .. } => "faults",
        }
    }
}

/// One recorded span: a kind plus `[start_ns, end_ns]` on the sink's
/// shared clock, and the nesting depth it was recorded at (0 = top
/// level for its thread). Fixed-size and `Copy` so the ring buffer
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the span covers.
    pub kind: SpanKind,
    /// Start, nanoseconds since the sink's clock epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the sink's clock epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Nesting depth within the recording thread at record time.
    pub depth: u8,
}

impl TraceEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}
