//! Shared lock-free metric primitives: a relaxed atomic counter and a
//! log₂-bucketed latency histogram.
//!
//! Both the scheduler's `ThreadStats` aggregation and the serving
//! runtime's `RuntimeStats` are built on these types, so the two
//! layers' numbers come from one implementation and cannot drift.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A relaxed atomic event counter.
///
/// All operations use `Ordering::Relaxed`: counters are monotone
/// tallies read for reporting, never for synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets. Bucket `i` holds samples whose nanosecond
/// value has bit length `i` (bucket 0 is the zero sample), so the
/// covered range tops out far beyond any plausible query latency.
const BUCKETS: usize = 64;

/// A concurrent latency histogram with power-of-two buckets.
///
/// Recording is two relaxed atomic increments — cheap enough to sit on
/// the per-query hot path. Quantiles are approximate (upper bound of
/// the bucket containing the rank), which is plenty for p50/p95/p99
/// over latencies spanning orders of magnitude.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            sum_nanos: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    fn bucket(nanos: u64) -> usize {
        // Bit length 0..=64 clamped into 0..BUCKETS: a saturated
        // u64::MAX sample (bit length 64) lands in the *top* bucket.
        // (`% BUCKETS` here would wrap it into bucket 0 — the zero
        // bucket — silently deflating every quantile under
        // pathological latencies.)
        ((u64::BITS - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero if nothing was recorded.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank. Zero if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        quantile_of(&self.snapshot_counts(), q)
    }

    /// The raw bucket counts, for merging several histograms into an
    /// aggregate view (feed the summed counts to [`quantile_of`]).
    pub fn snapshot_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all recorded samples in nanoseconds, for aggregate means.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }
}

/// Quantile over raw log₂ bucket counts (as produced by
/// [`LatencyHistogram::snapshot_counts`], possibly summed across
/// several histograms).
pub fn quantile_of(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Upper bound of bucket i: all values of bit length i. The
            // top bucket is a catch-all (it also holds clamped
            // bit-length-64 samples), so its upper bound is u64::MAX.
            let upper = if i == 0 {
                0
            } else if i >= BUCKETS - 1 {
                u64::MAX
            } else {
                (1u64 << i) - 1
            };
            return Duration::from_nanos(upper);
        }
    }
    Duration::from_nanos(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn quantiles_are_ordered_and_bracketing() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // p50 falls in the bucket of the 40 µs sample: [32768, 65535] ns
        assert!(p50 >= Duration::from_micros(40) && p50 < Duration::from_micros(80));
        // p99 falls in the 5 ms sample's bucket
        assert!(p99 >= Duration::from_micros(5000));
        assert!(h.mean() >= Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_sample_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn one_nanosecond_sample_lands_in_bucket_one() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        assert_eq!(h.snapshot_counts()[1], 1);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1));
    }

    #[test]
    fn saturated_sample_lands_in_top_bucket_not_zero() {
        // Duration::MAX saturates to u64::MAX nanoseconds — bit length
        // 64, which the old `% BUCKETS` bucketing wrapped into the zero
        // bucket, reporting p50/p95/p99 = 0 under pathological
        // latencies. It must clamp into the top (catch-all) bucket.
        let h = LatencyHistogram::new();
        h.record(Duration::MAX);
        let counts = h.snapshot_counts();
        assert_eq!(counts[0], 0, "saturated sample wrapped to bucket 0");
        assert_eq!(counts[BUCKETS - 1], 1);
        assert_eq!(h.quantile(0.99), Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(0.5), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn quantiles_over_merged_edge_samples() {
        // Merge snapshots containing both histogram edges (0 ns and a
        // saturated sample): low quantiles see the zero bucket, high
        // quantiles the catch-all top bucket.
        let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for _ in 0..9 {
            a.record(Duration::ZERO);
        }
        b.record(Duration::MAX);
        let merged: Vec<u64> = a
            .snapshot_counts()
            .iter()
            .zip(b.snapshot_counts())
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(quantile_of(&merged, 0.5), Duration::ZERO);
        assert_eq!(quantile_of(&merged, 0.99), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn merged_counts_quantile_matches_single_histogram() {
        let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
        let whole = LatencyHistogram::new();
        for micros in [10u64, 20, 40, 80] {
            a.record(Duration::from_micros(micros));
            whole.record(Duration::from_micros(micros));
        }
        for micros in [160u64, 320] {
            b.record(Duration::from_micros(micros));
            whole.record(Duration::from_micros(micros));
        }
        let merged: Vec<u64> = a
            .snapshot_counts()
            .iter()
            .zip(b.snapshot_counts())
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(quantile_of(&merged, 0.95), whole.quantile(0.95));
        assert_eq!(a.sum_nanos() + b.sum_nanos(), whole.sum_nanos());
    }
}
