//! Per-thread span recorders and the sink that bundles them.
//!
//! Each worker thread owns one [`SpanRecorder`] row of a
//! [`TraceSink`]; within a row, events never interleave across
//! threads, so recording needs no cross-thread coordination beyond an
//! uncontended mutex acquire (one atomic exchange on the single-writer
//! fast path — the lock only ever contends with a concurrent
//! [`TraceSink::drain`]). The ring buffer and the open-span stack are
//! both preallocated: the hot path performs **zero allocations**, and
//! overflow drops the *oldest* event while counting it in
//! [`ThreadTrace::dropped_events`] rather than reallocating or
//! corrupting the ring.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::clock::TraceClock;
use crate::event::{SpanKind, TraceEvent};

/// Default per-thread ring capacity (events). At ~40 bytes per event
/// this bounds a recorder at well under a megabyte.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// Maximum nesting depth tracked per thread. Deeper `begin`s are
/// still recorded but their depth saturates.
const MAX_OPEN_SPANS: usize = 32;

struct Ring {
    /// Completed events, oldest first. Length is kept `<= capacity`
    /// so pushes never reallocate.
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Open `begin`s awaiting their `end`, innermost last.
    open: Vec<(SpanKind, u64)>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// One thread's event recorder: a fixed-capacity ring of completed
/// spans plus a stack of open ones.
///
/// All methods take `&self`; a recorder is shared between its owning
/// worker (writing) and the exporter (draining).
pub struct SpanRecorder {
    inner: Mutex<Ring>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("SpanRecorder")
            .field("events", &g.events.len())
            .field("open", &g.open.len())
            .field("dropped", &g.dropped)
            .finish()
    }
}

impl SpanRecorder {
    /// A recorder holding at most `capacity` completed events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                capacity,
                open: Vec::with_capacity(MAX_OPEN_SPANS),
                dropped: 0,
            }),
        }
    }

    /// Opens a span of `kind` starting at `start_ns`. Must be paired
    /// with a later [`end`](Self::end) on the same thread.
    pub fn begin(&self, kind: SpanKind, start_ns: u64) {
        let mut g = self.inner.lock();
        if g.open.len() < MAX_OPEN_SPANS {
            g.open.push((kind, start_ns));
        } else {
            // Saturate rather than grow: record it immediately as a
            // zero-length marker so nothing is silently lost.
            let depth = MAX_OPEN_SPANS as u8;
            g.push(TraceEvent {
                kind,
                start_ns,
                end_ns: start_ns,
                depth,
            });
        }
    }

    /// Closes the innermost open span at `end_ns`, committing it to
    /// the ring. A stray `end` with no open span is ignored.
    pub fn end(&self, end_ns: u64) {
        let mut g = self.inner.lock();
        if let Some((kind, start_ns)) = g.open.pop() {
            let depth = g.open.len() as u8;
            g.push(TraceEvent {
                kind,
                start_ns,
                end_ns: end_ns.max(start_ns),
                depth,
            });
        }
    }

    /// Records a complete span directly (both endpoints already
    /// measured), nested under any currently open spans.
    pub fn span(&self, kind: SpanKind, start_ns: u64, end_ns: u64) {
        let mut g = self.inner.lock();
        let depth = g.open.len().min(MAX_OPEN_SPANS) as u8;
        g.push(TraceEvent {
            kind,
            start_ns,
            end_ns: end_ns.max(start_ns),
            depth,
        });
    }

    /// Records an instantaneous event (`start == end`) at `at_ns`.
    pub fn instant(&self, kind: SpanKind, at_ns: u64) {
        self.span(kind, at_ns, at_ns);
    }

    /// Number of spans currently open (begun but not ended).
    pub fn open_spans(&self) -> usize {
        self.inner.lock().open.len()
    }

    /// Takes all completed events out of the ring, sorted by start
    /// time, plus the count of events dropped to overflow since the
    /// last drain. Open spans are left on the stack and will commit
    /// on their `end`.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let mut g = self.inner.lock();
        let mut events: Vec<TraceEvent> = g.events.drain(..).collect();
        let dropped = std::mem::take(&mut g.dropped);
        drop(g);
        // The ring holds events in completion order; parents complete
        // after their children. Present them in start order instead.
        events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns)));
        (events, dropped)
    }
}

/// One thread's drained timeline.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// The recorder row (worker index; the last row is the control
    /// row of its sink).
    pub thread: usize,
    /// Completed events, sorted by `start_ns`.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full (oldest-first).
    pub dropped_events: u64,
}

/// A drained snapshot of every recorder in a sink.
#[derive(Clone, Debug)]
pub struct Trace {
    /// One entry per recorder row, in row order.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Total completed events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events dropped to ring overflow across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped_events).sum()
    }
}

/// A bundle of per-thread recorders sharing one clock.
///
/// Rows `0..p` belong to worker threads; by convention the final row
/// (see [`control_row`](Self::control_row)) is the **control row**,
/// used by whoever submits jobs (pool callers, serving shards) for
/// job-, query- and checkout-level spans so they never contend with a
/// worker's recorder.
#[derive(Debug)]
pub struct TraceSink {
    clock: TraceClock,
    recorders: Vec<SpanRecorder>,
}

impl TraceSink {
    /// A sink with `rows` recorders of `capacity` events each.
    pub fn new(rows: usize, capacity: usize) -> Self {
        TraceSink {
            clock: TraceClock::new(),
            recorders: (0..rows.max(1))
                .map(|_| SpanRecorder::new(capacity))
                .collect(),
        }
    }

    /// A sink sized for `p` worker threads: `p + 1` rows, the last
    /// being the control row.
    pub fn for_workers(p: usize, capacity: usize) -> Self {
        Self::new(p + 1, capacity)
    }

    /// Number of recorder rows (workers + control).
    pub fn rows(&self) -> usize {
        self.recorders.len()
    }

    /// The shared clock all rows timestamp against.
    pub fn clock(&self) -> &TraceClock {
        &self.clock
    }

    /// The recorder for `row`.
    pub fn recorder(&self, row: usize) -> &SpanRecorder {
        &self.recorders[row]
    }

    /// Index of the control row (always the last).
    pub fn control_row(&self) -> usize {
        self.recorders.len() - 1
    }

    /// The control row's recorder.
    pub fn control(&self) -> &SpanRecorder {
        &self.recorders[self.control_row()]
    }

    /// Drains every row into a [`Trace`] snapshot.
    pub fn drain(&self) -> Trace {
        Trace {
            threads: self
                .recorders
                .iter()
                .enumerate()
                .map(|(thread, r)| {
                    let (events, dropped_events) = r.drain();
                    ThreadTrace {
                        thread,
                        events,
                        dropped_events,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PrimitiveKind;

    fn task(weight: u64) -> SpanKind {
        SpanKind::Task {
            buffer: 0,
            primitive: PrimitiveKind::Marginalize,
            weight,
            part: None,
        }
    }

    #[test]
    fn begin_end_nest_and_commit_in_start_order() {
        let r = SpanRecorder::new(64);
        r.begin(SpanKind::Job { tasks: 3 }, 10);
        r.begin(task(5), 20);
        r.end(30); // the task
        assert_eq!(r.open_spans(), 1);
        r.end(40); // the job
        assert_eq!(r.open_spans(), 0);

        let (events, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        // Job started first, so it sorts first despite ending last.
        assert_eq!(events[0].kind, SpanKind::Job { tasks: 3 });
        assert_eq!((events[0].start_ns, events[0].end_ns), (10, 40));
        assert_eq!(events[0].depth, 0);
        assert_eq!((events[1].start_ns, events[1].end_ns), (20, 30));
        assert_eq!(events[1].depth, 1);
    }

    #[test]
    fn stray_end_is_ignored() {
        let r = SpanRecorder::new(8);
        r.end(5);
        r.instant(SpanKind::Fetch, 7);
        let (events, _) = r.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Fetch);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let r = SpanRecorder::new(4);
        for i in 0..10u64 {
            r.span(task(i), i, i + 1);
        }
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 6);
        assert_eq!(events.len(), 4);
        // The four *newest* events survive.
        assert_eq!(events[0].start_ns, 6);
        assert_eq!(events[3].start_ns, 9);
    }

    #[test]
    fn drain_resets_the_dropped_counter() {
        let r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.instant(SpanKind::Fetch, i);
        }
        assert_eq!(r.drain().1, 3);
        r.instant(SpanKind::Fetch, 9);
        assert_eq!(r.drain().1, 0);
    }

    #[test]
    fn end_never_precedes_begin() {
        let r = SpanRecorder::new(8);
        r.begin(SpanKind::IdleSpin, 100);
        r.end(90); // clock noise: clamp, don't underflow
        let (events, _) = r.drain();
        assert_eq!((events[0].start_ns, events[0].end_ns), (100, 100));
    }

    #[test]
    fn sink_rows_are_independent_across_threads() {
        let sink = std::sync::Arc::new(TraceSink::for_workers(4, 128));
        std::thread::scope(|s| {
            for w in 0..4usize {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..100u64 {
                        sink.recorder(w).span(task(w as u64), i * 10, i * 10 + 5);
                    }
                });
            }
        });
        sink.control().instant(SpanKind::Job { tasks: 1 }, 0);
        let trace = sink.drain();
        assert_eq!(trace.threads.len(), 5);
        assert_eq!(sink.control_row(), 4);
        for w in 0..4usize {
            let t = &trace.threads[w];
            assert_eq!(t.events.len(), 100);
            // No cross-thread interleaving: every event in row w is w's.
            assert!(t
                .events
                .iter()
                .all(|e| matches!(e.kind, SpanKind::Task { weight, .. } if weight == w as u64)));
        }
        assert_eq!(trace.threads[4].events.len(), 1);
        assert_eq!(trace.total_events(), 401);
        assert_eq!(trace.total_dropped(), 0);
    }
}
