//! **evprop-trace** — task-level tracing and observability.
//!
//! The paper's claims (near-linear speedup, the collaborative scheduler
//! beating loop-parallel baselines, δ-partitioning filling idle
//! threads) are all claims about *where time goes per thread*. This
//! crate is the layer that makes a schedule observable:
//!
//! * an **event model** ([`SpanKind`], [`TraceEvent`]) covering every
//!   scheduler event — task execute (buffer, primitive kind, weight,
//!   part index), partition decisions, fetches, steals, idle spins,
//!   arena checkouts — plus job- and query-level spans;
//! * per-thread **span recorders** ([`SpanRecorder`]) writing into
//!   fixed-capacity ring buffers: zero allocation on the hot path,
//!   drop-oldest on overflow with a counted [`ThreadTrace::dropped`],
//!   monotonic timestamps from one shared [`TraceClock`] epoch;
//! * a [`TraceSink`] bundling one recorder per worker thread (plus a
//!   control row for job/query/checkout events), drained into a
//!   [`Trace`] snapshot;
//! * a **Chrome-trace exporter** ([`chrome_trace_json`]) whose output
//!   loads directly in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev);
//! * a **timeline analyzer** ([`analyze`]) computing per-thread
//!   busy/idle/steal breakdowns, a load-imbalance score, and the
//!   observed cost rate used to compare wall time against the
//!   reroot critical-path estimate;
//! * the **shared statistic types** the rest of the workspace builds
//!   on: [`ThreadStats`]/[`RunReport`] (re-exported by `evprop-sched`)
//!   and the lock-free [`Counter`]/[`LatencyHistogram`] (backing
//!   `evprop-serve`'s `RuntimeStats`), so the scheduler's and the
//!   serving runtime's numbers come from one implementation and cannot
//!   drift apart.
//!
//! Recording is **per thread** by design: each worker owns one
//! recorder row, so events never interleave across threads within a
//! recorder and the hot path never contends. Merging happens once, at
//! export time ([`TraceSink::drain`]).
//!
//! This crate is always compiled (the statistic types are used
//! unconditionally); whether the *schedulers* call into it is gated by
//! their `trace` cargo feature, which compiles the recording hooks out
//! entirely when off.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyze;
mod chrome;
mod clock;
mod event;
mod metrics;
mod recorder;
mod stats;

pub use analyze::{analyze, ThreadTimeline, TimelineAnalysis};
pub use chrome::chrome_trace_json;
pub use clock::TraceClock;
pub use event::{PrimitiveKind, SpanKind, TraceEvent};
pub use metrics::{quantile_of, Counter, LatencyHistogram};
pub use recorder::{SpanRecorder, ThreadTrace, Trace, TraceSink, DEFAULT_CAPACITY};
pub use stats::{imbalance_of, RunReport, ThreadStats};
