//! The stateful session: resident arena, evidence deltas, dirty-slice
//! queries.

use evprop_core::{CalibratedState, CompiledModel, EngineError, Result, ShardState};
use evprop_jtree::CliqueId;
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_sched::TableArena;
use evprop_taskgraph::{EdgeUpdate, SlicePlan, TaskGraph};
use std::sync::Arc;

/// Per-clique synchronization state relative to the session's evidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CliqueSync {
    /// The clique buffer holds a valid *post-collect* value for the
    /// current evidence (potential × current evidence × children's
    /// messages), and its `sep_up`/`ext_up` buffers match it.
    Collected,
    /// The clique buffer holds a calibrated belief for the evidence as
    /// of `epoch`. Current iff `epoch` equals the session's epoch.
    Calibrated { epoch: u64 },
}

/// How a query was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// No propagation at all: the target clique was already calibrated
    /// under the current evidence.
    Cached,
    /// A dirty slice of the task graph was executed on the resident
    /// arena.
    Incremental {
        /// Cliques re-collected (changed-evidence cliques plus their
        /// ancestors).
        dirty_cliques: usize,
        /// Distribute-path edges refreshed by Hugin division against
        /// the stored separator.
        stale_edges: usize,
    },
    /// Both full phases were re-run.
    Full {
        /// Why incremental execution was not possible.
        reason: FullReason,
    },
}

/// Why a query fell back to full two-phase propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullReason {
    /// The session had no resident calibrated state yet.
    FirstQuery,
    /// A stored distribute separator on the query path contained a
    /// zero entry, so the division update would be undefined.
    ZeroSeparator,
}

impl QueryMode {
    /// Short stable label (`"cached"`, `"incremental"`, `"full"`) used
    /// in protocol responses and benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            QueryMode::Cached => "cached",
            QueryMode::Incremental { .. } => "incremental",
            QueryMode::Full { .. } => "full",
        }
    }
}

/// Number of power-of-two buckets in [`SessionStats::dirty_hist`].
pub const DIRTY_HIST_BUCKETS: usize = 16;

/// Counters accumulated over the lifetime of one session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (successfully computed marginals only).
    pub queries: u64,
    /// Queries answered from the resident state with no propagation.
    pub cached: u64,
    /// Queries answered by a dirty-slice execution.
    pub incremental: u64,
    /// Queries answered by full two-phase propagation.
    pub full: u64,
    /// Full runs that were first queries (no resident state).
    pub full_first: u64,
    /// Full runs forced by a zero entry in a stored separator.
    pub full_zero_separator: u64,
    /// Total stale edges refreshed by division updates.
    pub stale_edges: u64,
    /// Histogram of re-collected clique counts per incremental query;
    /// bucket `b` counts queries with `dirty_cliques` in
    /// `[2^(b-1), 2^b)` (bucket 0 is exactly zero).
    pub dirty_hist: [u64; DIRTY_HIST_BUCKETS],
}

impl SessionStats {
    fn record(&mut self, mode: QueryMode) {
        self.queries += 1;
        match mode {
            QueryMode::Cached => self.cached += 1,
            QueryMode::Incremental {
                dirty_cliques,
                stale_edges,
            } => {
                self.incremental += 1;
                self.stale_edges += stale_edges as u64;
                let bucket = (usize::BITS - dirty_cliques.leading_zeros()) as usize;
                self.dirty_hist[bucket.min(DIRTY_HIST_BUCKETS - 1)] += 1;
            }
            QueryMode::Full { reason } => {
                self.full += 1;
                match reason {
                    FullReason::FirstQuery => self.full_first += 1,
                    FullReason::ZeroSeparator => self.full_zero_separator += 1,
                }
            }
        }
    }

    /// Folds another session's counters into this one.
    pub fn merge(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.cached += other.cached;
        self.incremental += other.incremental;
        self.full += other.full;
        self.full_first += other.full_first;
        self.full_zero_separator += other.full_zero_separator;
        self.stale_edges += other.stale_edges;
        for (d, s) in self.dirty_hist.iter_mut().zip(other.dirty_hist) {
            *d += s;
        }
    }
}

/// A stateful inference session over one compiled model.
///
/// The session owns a [`TableArena`] that stays resident between
/// queries, a logical evidence set, and per-clique sync state. Mutate
/// evidence with [`observe`](IncrementalSession::observe) /
/// [`retract`](IncrementalSession::retract); read posteriors with
/// [`query`](IncrementalSession::query), which brings exactly the
/// affected part of the tree up to date on the given shard's pool.
///
/// Sessions are not `Sync`-shared: one client, one session, queries
/// strictly ordered (the serving layer wraps each in a mutex).
#[derive(Debug)]
pub struct IncrementalSession {
    model: Arc<CompiledModel>,
    arena: Option<TableArena>,
    evidence: EvidenceSet,
    /// Variables whose evidence changed since the last propagation.
    changed: Vec<VarId>,
    sync: Vec<CliqueSync>,
    epoch: u64,
    /// Epoch of the last *zero-reviving* delta batch (a retraction or a
    /// re-observation to a different state). Hard observations only
    /// *add* zeros to separator marginals, and the Hugin `0/0 → 0`
    /// division convention propagates a grown zero set exactly — so a
    /// stored separator's zeros invalidate the division update only for
    /// cliques whose epoch predates this.
    revive_epoch: u64,
    /// A reviving delta is pending in `changed`.
    revive_pending: bool,
    /// Reusable slice graph sharing the full graph's buffer table and
    /// plan index (built lazily on the first incremental query). Only
    /// its task list is rebuilt per query — cloning the buffer specs
    /// and plan index every time would cost `O(cliques)` allocations,
    /// dwarfing the sliced propagation itself on large trees.
    slice_scratch: Option<TaskGraph>,
    stats: SessionStats,
}

impl IncrementalSession {
    /// Opens an empty session (no evidence, no resident state). The
    /// first query runs a full propagation.
    pub fn new(model: Arc<CompiledModel>) -> Self {
        let n = model.junction_tree().num_cliques();
        IncrementalSession {
            model,
            arena: None,
            evidence: EvidenceSet::new(),
            changed: Vec::new(),
            sync: vec![CliqueSync::Calibrated { epoch: 0 }; n],
            epoch: 0,
            revive_epoch: 0,
            revive_pending: false,
            slice_scratch: None,
            stats: SessionStats::default(),
        }
    }

    /// Opens a session pre-seeded from a calibrated snapshot: one
    /// buffer copy instead of one propagation. The session starts with
    /// the snapshot's evidence and every clique current.
    pub fn from_snapshot(model: Arc<CompiledModel>, snapshot: &CalibratedState) -> Self {
        let mut arena = TableArena::initialize(
            model.graph(),
            model.junction_tree().potentials(),
            snapshot.evidence(),
        );
        snapshot.restore_into(model.graph(), &mut arena);
        let n = model.junction_tree().num_cliques();
        IncrementalSession {
            model,
            arena: Some(arena),
            evidence: snapshot.evidence().clone(),
            changed: Vec::new(),
            sync: vec![CliqueSync::Calibrated { epoch: 0 }; n],
            epoch: 0,
            revive_epoch: 0,
            revive_pending: false,
            slice_scratch: None,
            stats: SessionStats::default(),
        }
    }

    /// The compiled model this session runs against.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The session's current (logical) evidence.
    pub fn evidence(&self) -> &EvidenceSet {
        &self.evidence
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Whether a calibrated arena is resident (false before the first
    /// query and after an execution error poisoned the state).
    pub fn has_resident_state(&self) -> bool {
        self.arena.is_some()
    }

    /// Sets hard evidence `var = state`, replacing any previous finding
    /// on `var`. A re-observation of the identical state is a no-op
    /// (the next query stays cache-clean).
    ///
    /// # Errors
    ///
    /// [`EngineError::VariableNotInTree`] if no clique contains `var`;
    /// [`EngineError::InvalidEvidenceState`] if `state` is out of range.
    pub fn observe(&mut self, var: VarId, state: usize) -> Result<()> {
        let shape = self.model.junction_tree().shape();
        let cardinality = (0..shape.num_cliques())
            .find_map(|c| {
                let d = shape.domain(CliqueId(c));
                d.position_of(var).map(|p| d.vars()[p].cardinality())
            })
            .ok_or(EngineError::VariableNotInTree(var))?;
        if state >= cardinality {
            return Err(EngineError::InvalidEvidenceState {
                var,
                state,
                cardinality,
            });
        }
        match self.evidence.state_of(var) {
            Some(s) if s == state => {}
            prior => {
                if prior.is_some() {
                    // Re-observation to a different state can revive
                    // separator zeros.
                    self.revive_pending = true;
                }
                self.evidence.observe(var, state);
                self.mark_changed(var);
            }
        }
        Ok(())
    }

    /// Removes any finding on `var`, returning the previously observed
    /// hard state. Retracting an unobserved variable is a no-op.
    pub fn retract(&mut self, var: VarId) -> Option<usize> {
        let old = self.evidence.retract(var);
        if old.is_some() {
            self.mark_changed(var);
            self.revive_pending = true;
        }
        old
    }

    fn mark_changed(&mut self, var: VarId) {
        if !self.changed.contains(&var) {
            self.changed.push(var);
        }
    }

    /// Computes the posterior of `var` under the session's current
    /// evidence, re-propagating only what the evidence deltas since the
    /// last query invalidated. Returns the normalized marginal and how
    /// it was obtained.
    ///
    /// # Errors
    ///
    /// [`EngineError::VariableNotInTree`] if no clique covers `var`;
    /// [`EngineError::ImpossibleEvidence`] if `P(e) = 0`;
    /// [`EngineError::WorkerPanicked`] if the pool lost a worker (the
    /// resident state is dropped; the next query re-propagates fully).
    pub fn query(&mut self, shard: &ShardState, var: VarId) -> Result<(PotentialTable, QueryMode)> {
        let model = Arc::clone(&self.model);
        let shape = model.junction_tree().shape();
        let target = (0..shape.num_cliques())
            .map(CliqueId)
            .filter(|&c| shape.domain(c).contains(var))
            .min_by_key(|&c| shape.domain(c).size())
            .ok_or(EngineError::VariableNotInTree(var))?;
        let mode = self.bring_current(shard, target)?;
        let table = self.marginal_of(target, var)?;
        self.stats.record(mode);
        Ok((table, mode))
    }

    /// Forces a full two-phase propagation under the current evidence,
    /// leaving every clique calibrated. Useful for pre-warming a
    /// session before [`snapshot`](IncrementalSession::snapshot).
    pub fn calibrate_full(&mut self, shard: &ShardState) -> Result<()> {
        self.full_run(shard)
    }

    /// Snapshots the resident arena, if it is fully calibrated under
    /// the current evidence (no pending deltas, every clique current).
    pub fn snapshot(&mut self) -> Option<CalibratedState> {
        if !self.changed.is_empty() {
            return None;
        }
        let epoch = self.epoch;
        if !self
            .sync
            .iter()
            .all(|s| matches!(s, CliqueSync::Calibrated { epoch: e } if *e == epoch))
        {
            return None;
        }
        let model = Arc::clone(&self.model);
        let arena = self.arena.as_mut()?;
        Some(CalibratedState::capture(
            model.graph(),
            arena,
            self.evidence.clone(),
        ))
    }

    /// Brings `target`'s clique up to date, executing whatever slice of
    /// the graph that requires, and returns how much work it took.
    fn bring_current(&mut self, shard: &ShardState, target: CliqueId) -> Result<QueryMode> {
        if self.arena.is_none() {
            self.full_run(shard)?;
            return Ok(QueryMode::Full {
                reason: FullReason::FirstQuery,
            });
        }
        let model = Arc::clone(&self.model);
        let jt = model.junction_tree();
        let shape = jt.shape();
        let graph = model.graph();
        let n = shape.num_cliques();

        // Dirty set: cliques containing a changed variable, closed
        // upward to the root. Hard evidence is absorbed into *every*
        // containing clique, so re-initializing exactly this set
        // refreshes every indicator copy.
        let mut recollect = vec![false; n];
        let changed = std::mem::take(&mut self.changed);
        if !changed.is_empty() {
            self.epoch += 1;
            if self.revive_pending {
                self.revive_epoch = self.epoch;
                self.revive_pending = false;
            }
            for c in (0..n).map(CliqueId) {
                if changed.iter().any(|&v| shape.domain(c).contains(v)) {
                    recollect[c.index()] = true;
                }
            }
            for &c in &shape.postorder() {
                if recollect[c.index()] {
                    if let Some(p) = shape.parent(c) {
                        recollect[p.index()] = true;
                    }
                }
            }
        }
        let dirty_any = recollect.iter().any(|&d| d);

        if !dirty_any && self.is_current(target) {
            return Ok(QueryMode::Cached);
        }

        // Classify the root-to-target distribute path. A child outside
        // the recollect set has an unchanged subtree, so its cached
        // collect message is valid (Fresh for post-collect children,
        // division update for beliefs calibrated at an older epoch).
        let path_cliques = shape.path_from_root(target);
        let mut path = Vec::with_capacity(path_cliques.len().saturating_sub(1));
        for &c in path_cliques.iter().skip(1) {
            let update = if recollect[c.index()] {
                EdgeUpdate::Fresh
            } else {
                match self.sync[c.index()] {
                    CliqueSync::Collected => EdgeUpdate::Fresh,
                    CliqueSync::Calibrated { epoch } if epoch == self.epoch => EdgeUpdate::Skip,
                    CliqueSync::Calibrated { epoch } => {
                        if epoch < self.revive_epoch && self.stored_separator_has_zero(c) {
                            // A zero entry may have been revived by a
                            // retraction since this belief was written;
                            // the division update would silently pin it
                            // at zero. Abandon the slice.
                            self.full_run(shard)?;
                            return Ok(QueryMode::Full {
                                reason: FullReason::ZeroSeparator,
                            });
                        }
                        EdgeUpdate::Stale
                    }
                }
            };
            path.push((c, update));
        }

        let dirty: Vec<CliqueId> = (0..n)
            .map(CliqueId)
            .filter(|c| recollect[c.index()])
            .collect();
        if dirty_any {
            self.arena.as_mut().expect("checked above").reset_cliques(
                graph,
                jt.potentials(),
                &self.evidence,
                &dirty,
            );
        }
        let plan = SlicePlan { recollect, path };
        let dirty_cliques = plan.dirty_cliques();
        let stale_edges = plan.stale_edges();
        let slice = self
            .slice_scratch
            .get_or_insert_with(|| graph.slice_scaffold());
        graph.slice_into(slice, shape, &plan);
        if slice.num_tasks() > 0 {
            if let Err(e) = shard.run_slice(slice, self.arena.as_ref().expect("checked above")) {
                // The arena may hold partially-written buffers; drop it
                // so the next query rebuilds from scratch.
                self.arena = None;
                return Err(e);
            }
        }

        for &c in &dirty {
            self.sync[c.index()] = CliqueSync::Collected;
        }
        if dirty_any {
            // The root's post-collect value *is* its calibrated belief.
            self.sync[shape.root().index()] = CliqueSync::Calibrated { epoch: self.epoch };
        }
        for &(c, _) in &plan.path {
            self.sync[c.index()] = CliqueSync::Calibrated { epoch: self.epoch };
        }
        Ok(QueryMode::Incremental {
            dirty_cliques,
            stale_edges,
        })
    }

    fn is_current(&self, c: CliqueId) -> bool {
        matches!(self.sync[c.index()], CliqueSync::Calibrated { epoch } if epoch == self.epoch)
    }

    /// Scans the stored distribute separator of the edge above `c` for
    /// zero entries (which would make the division update undefined).
    fn stored_separator_has_zero(&mut self, c: CliqueId) -> bool {
        let model = Arc::clone(&self.model);
        let down = model
            .graph()
            .edge_buffers(c)
            .expect("non-root cliques have edge buffers")
            .down
            .expect("two-phase graphs have distribute buffers");
        let arena = self.arena.as_mut().expect("caller checked residency");
        arena.tables_mut()[down.sep_down.index()]
            .data()
            .contains(&0.0)
    }

    fn full_run(&mut self, shard: &ShardState) -> Result<()> {
        let model = Arc::clone(&self.model);
        let jt = model.junction_tree();
        let graph = model.graph();
        self.changed.clear();
        self.epoch += 1;
        self.revive_epoch = self.epoch;
        self.revive_pending = false;
        match self.arena.as_mut() {
            Some(a) => a.reset(graph, jt.potentials(), &self.evidence),
            None => {
                self.arena = Some(TableArena::initialize(
                    graph,
                    jt.potentials(),
                    &self.evidence,
                ));
            }
        }
        if let Err(e) = shard.run_job(graph, self.arena.as_ref().expect("just set")) {
            self.arena = None;
            return Err(e);
        }
        self.sync = vec![CliqueSync::Calibrated { epoch: self.epoch }; jt.num_cliques()];
        Ok(())
    }

    fn marginal_of(&mut self, target: CliqueId, var: VarId) -> Result<PotentialTable> {
        let model = Arc::clone(&self.model);
        let graph = model.graph();
        let arena = self.arena.as_mut().expect("bring_current left an arena");
        let table = &arena.tables_mut()[graph.clique_buffer(target).index()];
        let sub = table.domain().project(&[var]);
        let mut m = table.marginalize(&sub)?;
        if m.sum() <= 0.0 {
            return Err(EngineError::ImpossibleEvidence);
        }
        m.normalize();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use evprop_core::{Engine, SequentialEngine};
    use evprop_jtree::JunctionTree;
    use evprop_potential::Domain;
    use evprop_sched::SchedulerConfig;

    fn asia_fixture() -> (Arc<CompiledModel>, ShardState) {
        let model = Arc::new(CompiledModel::from_network(&networks::asia()).unwrap());
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        (model, shard)
    }

    /// A random tree with strictly-positive potentials: no separator
    /// can contain a zero, so stale edges always take the division
    /// update (asia's deterministic "either" CPT would instead force
    /// the zero-separator fallback).
    fn positive_fixture() -> (Arc<CompiledModel>, ShardState) {
        let shape = evprop_workloads::random_tree(
            &evprop_workloads::TreeParams::new(16, 4, 2, 2).with_seed(11),
        );
        let jt = evprop_workloads::materialize(&shape, 11);
        let model = Arc::new(CompiledModel::from_junction_tree(jt));
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());
        (model, shard)
    }

    /// Fresh sequential propagation under `ev`, the ground truth.
    fn oracle(model: &CompiledModel, var: VarId, ev: &EvidenceSet) -> Vec<f64> {
        let cal = SequentialEngine
            .propagate_graph(model.junction_tree(), model.graph(), ev)
            .unwrap();
        cal.marginal(var).unwrap().data().to_vec()
    }

    fn assert_close(got: &PotentialTable, want: &[f64]) {
        for (g, w) in got.data().iter().zip(want) {
            assert!(
                (g - w).abs() < 1e-12,
                "posterior mismatch: got {:?}, want {:?}",
                got.data(),
                want
            );
        }
    }

    #[test]
    fn first_query_full_then_cached() {
        let (model, shard) = asia_fixture();
        let mut s = IncrementalSession::new(Arc::clone(&model));
        assert!(!s.has_resident_state());
        let (t, mode) = s.query(&shard, VarId(0)).unwrap();
        assert_eq!(
            mode,
            QueryMode::Full {
                reason: FullReason::FirstQuery
            }
        );
        assert_close(&t, &oracle(&model, VarId(0), &EvidenceSet::new()));
        // Everything is calibrated now: any further query is cached.
        for v in 0..8 {
            let (t, mode) = s.query(&shard, VarId(v)).unwrap();
            assert_eq!(mode, QueryMode::Cached, "var {v}");
            assert_close(&t, &oracle(&model, VarId(v), &EvidenceSet::new()));
        }
        assert_eq!(s.stats().full, 1);
        assert_eq!(s.stats().cached, 8);
    }

    #[test]
    fn observe_delta_runs_incremental_and_matches_oracle() {
        let (model, shard) = asia_fixture();
        let mut s = IncrementalSession::new(Arc::clone(&model));
        s.query(&shard, VarId(0)).unwrap();

        let mut ev = EvidenceSet::new();
        for (var, state) in [(VarId(7), 1), (VarId(2), 0), (VarId(5), 1)] {
            s.observe(var, state).unwrap();
            ev.observe(var, state);
            for v in 0..8 {
                let (t, mode) = s.query(&shard, VarId(v)).unwrap();
                assert_ne!(
                    mode,
                    QueryMode::Full {
                        reason: FullReason::FirstQuery
                    }
                );
                assert_close(&t, &oracle(&model, VarId(v), &ev));
            }
        }
        assert!(s.stats().incremental > 0);
    }

    #[test]
    fn retract_matches_oracle() {
        let (model, shard) = asia_fixture();
        let mut s = IncrementalSession::new(Arc::clone(&model));
        s.observe(VarId(7), 1).unwrap();
        s.observe(VarId(1), 0).unwrap();
        s.query(&shard, VarId(3)).unwrap();

        assert_eq!(s.retract(VarId(7)), Some(1));
        assert_eq!(s.retract(VarId(7)), None);
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(1), 0);
        for v in 0..8 {
            let (t, _) = s.query(&shard, VarId(v)).unwrap();
            assert_close(&t, &oracle(&model, VarId(v), &ev));
        }
    }

    #[test]
    fn division_update_refreshes_stale_cliques() {
        let (model, shard) = positive_fixture();
        let shape = model.junction_tree().shape().clone();
        let mut s = IncrementalSession::new(Arc::clone(&model));
        // Calibrate everything, then change evidence and query one
        // variable: only its path is distributed. Querying variables on
        // *other* branches afterwards (no new deltas) must use division
        // updates on their paths' stale cliques.
        let leaves = shape.leaves();
        let obs_var = shape.domain(leaves[0]).var_ids()[0];
        s.query(&shard, obs_var).unwrap();
        s.observe(obs_var, 1).unwrap();
        s.query(&shard, obs_var).unwrap();

        let mut ev = EvidenceSet::new();
        ev.observe(obs_var, 1);
        let mut saw_stale = false;
        for &leaf in &leaves {
            for v in shape.domain(leaf).var_ids() {
                let (t, mode) = s.query(&shard, v).unwrap();
                if let QueryMode::Incremental { stale_edges, .. } = mode {
                    saw_stale |= stale_edges > 0;
                }
                assert_close(&t, &oracle(&model, v, &ev));
            }
        }
        assert!(saw_stale, "expected at least one division update");
        assert_eq!(s.stats().full_zero_separator, 0);
        assert!(s.stats().stale_edges > 0);
    }

    #[test]
    fn reobserving_same_state_stays_cached() {
        let (model, shard) = asia_fixture();
        let mut s = IncrementalSession::new(model);
        s.observe(VarId(4), 1).unwrap();
        s.query(&shard, VarId(4)).unwrap();
        s.observe(VarId(4), 1).unwrap();
        let (_, mode) = s.query(&shard, VarId(4)).unwrap();
        assert_eq!(mode, QueryMode::Cached);
    }

    #[test]
    fn observe_validates_var_and_state() {
        let (model, _) = asia_fixture();
        let mut s = IncrementalSession::new(model);
        assert!(matches!(
            s.observe(VarId(99), 0),
            Err(EngineError::VariableNotInTree(VarId(99)))
        ));
        assert!(matches!(
            s.observe(VarId(0), 5),
            Err(EngineError::InvalidEvidenceState { state: 5, .. })
        ));
        // neither invalid call dirtied the session
        assert!(s.evidence().is_empty());
    }

    #[test]
    fn zero_separator_falls_back_to_full() {
        // A deterministic edge potential puts a hard zero into the
        // stored distribute separator; the later division update must
        // detect it and re-propagate fully.
        let d01 = Domain::new(vec![
            evprop_potential::Variable::binary(VarId(0)),
            evprop_potential::Variable::binary(VarId(1)),
        ])
        .unwrap();
        let d12 = Domain::new(vec![
            evprop_potential::Variable::binary(VarId(1)),
            evprop_potential::Variable::binary(VarId(2)),
        ])
        .unwrap();
        // P(v1 = 0) = 0 after marginalizing C0 (built via unflatten so
        // the zero pattern is independent of the table's axis layout).
        let v1_pos = d01.position_of(VarId(1)).unwrap();
        let p0_data: Vec<f64> = (0..d01.size())
            .map(|i| {
                if d01.unflatten(i)[v1_pos] == 1 {
                    0.5
                } else {
                    0.0
                }
            })
            .collect();
        let p0 = PotentialTable::from_data(d01.clone(), p0_data).unwrap();
        let p1 = PotentialTable::from_data(d12.clone(), vec![0.25; 4]).unwrap();
        let shape = evprop_jtree::TreeShape::new(vec![d01, d12], &[(0, 1)], 0).unwrap();
        let jt = JunctionTree::from_parts(shape, vec![p0, p1]).unwrap();
        let model = Arc::new(CompiledModel::from_junction_tree_unrerooted(jt));
        let shard = ShardState::new(SchedulerConfig::with_threads(2).without_partitioning());

        let mut s = IncrementalSession::new(Arc::clone(&model));
        s.query(&shard, VarId(2)).unwrap();
        // Adding evidence only grows the zero set: the division update
        // stays exact under the 0/0 → 0 convention, no fallback.
        s.observe(VarId(0), 1).unwrap();
        let (t, mode) = s.query(&shard, VarId(2)).unwrap();
        assert!(matches!(mode, QueryMode::Incremental { .. }), "{mode:?}");
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        assert_close(&t, &oracle(&model, VarId(2), &ev));
        // A retraction can revive zeros, and the stored separator on
        // the path holds the structural zero: must re-propagate fully.
        s.retract(VarId(0)).unwrap();
        // make the root dirty-free path stale again via a fresh query
        let (t, mode) = s.query(&shard, VarId(2)).unwrap();
        assert_eq!(
            mode,
            QueryMode::Full {
                reason: FullReason::ZeroSeparator
            }
        );
        assert_close(&t, &oracle(&model, VarId(2), &EvidenceSet::new()));
        assert_eq!(s.stats().full_zero_separator, 1);
    }

    #[test]
    fn snapshot_roundtrip_seeds_a_session() {
        let (model, shard) = positive_fixture();
        let shape = model.junction_tree().shape().clone();
        let leaves = shape.leaves();
        let obs_var = shape.domain(leaves[0]).var_ids()[0];
        let query_var = *shape
            .domain(*leaves.last().unwrap())
            .var_ids()
            .iter()
            .find(|v| !shape.domain(leaves[0]).contains(**v))
            .unwrap();

        let mut base = IncrementalSession::new(Arc::clone(&model));
        assert!(base.snapshot().is_none(), "no resident state yet");
        base.calibrate_full(&shard).unwrap();
        let snap = base.snapshot().expect("calibrated session snapshots");

        let mut s = IncrementalSession::from_snapshot(Arc::clone(&model), &snap);
        let (t, mode) = s.query(&shard, query_var).unwrap();
        assert_eq!(mode, QueryMode::Cached, "seeded session answers cold");
        assert_close(&t, &oracle(&model, query_var, &EvidenceSet::new()));
        // and it stays incremental from there
        s.observe(obs_var, 1).unwrap();
        let (_, mode) = s.query(&shard, query_var).unwrap();
        assert!(matches!(mode, QueryMode::Incremental { .. }));
    }

    #[test]
    fn impossible_evidence_is_reported_not_cached() {
        let (model, shard) = asia_fixture();
        let mut s = IncrementalSession::new(model);
        // asia var 0 ("visit to Asia") — observing both states of a
        // parent/child pair that contradict is hard to construct here,
        // so use a likelihood-free contradiction: none exists in asia's
        // strictly-positive CPTs, so just verify a normal query works
        // and stats only count successes.
        s.query(&shard, VarId(1)).unwrap();
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn dirty_histogram_buckets_by_power_of_two() {
        let mut st = SessionStats::default();
        st.record(QueryMode::Incremental {
            dirty_cliques: 0,
            stale_edges: 0,
        });
        st.record(QueryMode::Incremental {
            dirty_cliques: 1,
            stale_edges: 2,
        });
        st.record(QueryMode::Incremental {
            dirty_cliques: 3,
            stale_edges: 0,
        });
        assert_eq!(st.dirty_hist[0], 1);
        assert_eq!(st.dirty_hist[1], 1);
        assert_eq!(st.dirty_hist[2], 1);
        assert_eq!(st.stale_edges, 2);
        let mut other = SessionStats::default();
        other.merge(&st);
        assert_eq!(other.dirty_hist, st.dirty_hist);
    }
}
