//! Incremental evidence propagation sessions.
//!
//! A classical serving stack treats every query as independent: reset
//! the arena, absorb the full evidence set, run both propagation
//! phases. Interactive diagnosis does not look like that — a client
//! holds a *case*, toggles one finding at a time, and re-reads a
//! handful of posteriors after each toggle. Between consecutive
//! queries almost all of the junction tree's state is still valid.
//!
//! [`IncrementalSession`] exploits that. It keeps the calibrated
//! clique **and** separator tables resident in a [`TableArena`] after
//! the first propagation, accepts evidence *deltas*
//! ([`IncrementalSession::observe`] / [`IncrementalSession::retract`]),
//! and on the next query re-executes only the slice of the task graph
//! that the deltas invalidated:
//!
//! * **collect** re-runs along the paths from changed-evidence cliques
//!   up to the root, re-multiplying unchanged subtrees' messages from
//!   their cached `ext_up` buffers;
//! * **distribute** runs only along the root-to-target path, using the
//!   Hugin division update against the stored distribute separators
//!   (`ψ**_S`) to refresh cliques calibrated under older evidence in
//!   O(separator) work.
//!
//! The division update is exact only when the stored separator has no
//! zero entry; the session detects that case before running and falls
//! back to a full re-propagation
//! ([`FullReason::ZeroSeparator`]). Execution — full or sliced — goes
//! through an [`evprop_core::ShardState`]'s collaborative pool, so
//! sessions compose with the sharded serving runtime.
//!
//! [`TableArena`]: evprop_sched::TableArena

mod session;

pub use session::{FullReason, IncrementalSession, QueryMode, SessionStats, DIRTY_HIST_BUCKETS};
