//! Opt-in stress suite (`--features stress`): long evidence-churn
//! sequences on wider random trees, high thread counts, every answer
//! checked against a fresh sequential propagation.

#![cfg(feature = "stress")]

use evprop_core::{CompiledModel, Engine, SequentialEngine, ShardState};
use evprop_incremental::IncrementalSession;
use evprop_potential::{EvidenceSet, VarId};
use evprop_sched::SchedulerConfig;
use evprop_workloads::{materialize, random_tree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

fn churn(seed: u64, n: usize, w: usize, k: usize, threads: usize, steps: usize) {
    let shape = random_tree(&TreeParams::new(n, w, 2, k).with_seed(seed));
    let jt = materialize(&shape, seed);
    let model = Arc::new(CompiledModel::from_junction_tree(jt));
    let shard = ShardState::new(SchedulerConfig::with_threads(threads));
    let mut session = IncrementalSession::new(Arc::clone(&model));
    let vars: Vec<VarId> = shape
        .domains()
        .iter()
        .flat_map(|d| d.var_ids())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = EvidenceSet::new();
    for step in 0..steps {
        let var = vars[rng.gen_range(0..vars.len())];
        if rng.gen_bool(0.25) {
            assert_eq!(session.retract(var), ev.retract(var), "step {step}");
        } else {
            let state = rng.gen_range(0..2usize);
            session.observe(var, state).unwrap();
            ev.observe(var, state);
        }
        let cal = SequentialEngine
            .propagate_graph(model.junction_tree(), model.graph(), &ev)
            .unwrap();
        let q = vars[rng.gen_range(0..vars.len())];
        if ev.state_of(q).is_some() {
            continue;
        }
        let (got, mode) = session.query(&shard, q).unwrap();
        let want = cal.marginal(q).unwrap();
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!(
                (g - w).abs() < 1e-9,
                "step {step} var {q:?} mode {mode:?}: {:?} vs {:?}",
                got.data(),
                want.data()
            );
        }
    }
    assert!(session.stats().incremental > 0, "{:?}", session.stats());
}

#[test]
fn long_churn_small_tree_many_threads() {
    churn(0xC0FFEE, 12, 4, 2, 8, 300);
}

#[test]
fn long_churn_wide_tree() {
    churn(0xBEEF, 48, 6, 3, 4, 150);
}

#[test]
fn long_churn_deep_chain() {
    churn(0xFACADE, 32, 3, 1, 2, 200);
}
