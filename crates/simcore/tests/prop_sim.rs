//! Property tests for the discrete-event simulator.

use evprop_jtree::TreeShape;
use evprop_potential::{Domain, VarId, Variable};
use evprop_simcore::{simulate, simulate_collaborative_traced, CostModel, Policy};
use evprop_taskgraph::TaskGraph;
use proptest::prelude::*;

/// Random tree shapes: parent of clique i is a random earlier clique;
/// clique widths 2..=8 binary variables (weights 4..256).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..usize::MAX, n - 1),
            proptest::collection::vec(2usize..=8, n),
        )
            .prop_map(move |(parents, widths)| {
                let mut edges = Vec::with_capacity(n - 1);
                for i in 1..n {
                    edges.push((parents[i - 1] % i, i));
                }
                let mut next = 0u32;
                let domains: Vec<Domain> = widths
                    .iter()
                    .map(|&w| {
                        let vars: Vec<Variable> = (0..w)
                            .map(|_| {
                                let v = Variable::binary(VarId(next));
                                next += 1;
                                v
                            })
                            .collect();
                        Domain::new(vars).unwrap()
                    })
                    .collect();
                TaskGraph::from_shape(&TreeShape::new(domains, &edges, 0).unwrap())
            })
    })
}

fn policies() -> Vec<Policy> {
    vec![
        Policy::collaborative(),
        Policy::collaborative_unpartitioned(),
        Policy::Collaborative {
            delta: Some(16),
            work_stealing: true,
        },
        Policy::OpenMpStyle,
        Policy::DataParallel,
        Policy::PnlStyle,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinism: every policy yields identical reports on reruns.
    #[test]
    fn all_policies_deterministic(g in arb_graph(), cores in 1usize..9) {
        let m = CostModel::default();
        for p in policies() {
            prop_assert_eq!(simulate(&g, p, cores, &m), simulate(&g, p, cores, &m));
        }
    }

    /// The makespan respects the trivial bounds: at least the critical
    /// work over one core's ability, at most fully serial execution.
    #[test]
    fn collaborative_makespan_bounds(g in arb_graph(), cores in 1usize..9) {
        let m = CostModel::default();
        let r = simulate(&g, Policy::collaborative_unpartitioned(), cores, &m);
        let work: u64 = g
            .tasks()
            .iter()
            .map(|t| m.exec_cost(t.kind.primitive(), t.weight))
            .sum();
        let per_task = (m.sigma_sched + m.lambda_lock).round() as u64;
        prop_assert!(r.makespan >= work / cores as u64);
        prop_assert!(r.makespan <= work + per_task * g.num_tasks() as u64);
        // every task executed exactly once (no partitioning)
        let total: usize = r.cores.iter().map(|c| c.tasks).sum();
        prop_assert_eq!(total, g.num_tasks());
    }

    /// Work conservation: total busy time is invariant to core count and
    /// stealing (same primitives execute).
    #[test]
    fn busy_time_conserved(g in arb_graph(), cores in 2usize..9) {
        let m = CostModel::default();
        let p = Policy::collaborative_unpartitioned();
        let one = simulate(&g, p, 1, &m).total_busy();
        let many = simulate(&g, p, cores, &m).total_busy();
        prop_assert_eq!(one, many);
        let steal = Policy::Collaborative { delta: None, work_stealing: true };
        prop_assert_eq!(simulate(&g, steal, cores, &m).total_busy(), one);
    }

    /// Multicore runs never lose to the single-core schedule. (Strict
    /// monotonicity in P does NOT hold — greedy list scheduling admits
    /// Graham anomalies, and lock contention grows with P — so the
    /// invariant is anchored at P = 1.)
    #[test]
    fn collaborative_never_worse_than_serial(g in arb_graph()) {
        let m = CostModel::default();
        let serial = simulate(&g, Policy::collaborative(), 1, &m).makespan;
        for cores in [2usize, 4, 8] {
            let r = simulate(&g, Policy::collaborative(), cores, &m);
            prop_assert!(r.makespan <= serial, "cores={cores}");
        }
    }

    /// Traces tile the schedule: per-core events are disjoint, within the
    /// makespan, and their busy time sums to the report's.
    #[test]
    fn traces_tile_schedule(g in arb_graph(), cores in 1usize..6, delta in 2u64..64) {
        let m = CostModel::default();
        let (report, trace) =
            simulate_collaborative_traced(&g, cores, Some(delta), false, &m);
        let total_tasks: usize = report.cores.iter().map(|c| c.tasks).sum();
        prop_assert_eq!(trace.len(), total_tasks);
        for core in 0..cores {
            let mut evs: Vec<_> = trace.iter().filter(|e| e.core == core).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            let busy: u64 = evs.iter().map(|e| e.end - e.start).sum();
            prop_assert_eq!(busy, report.cores[core].busy);
        }
    }

    /// Partitioning never increases total busy work by more than the
    /// combiner rounding, and subtask counts are consistent.
    #[test]
    fn partition_accounting(g in arb_graph(), delta in 2u64..64) {
        let m = CostModel::default();
        let p = Policy::Collaborative { delta: Some(delta), work_stealing: false };
        let r = simulate(&g, p, 4, &m);
        let expected_subtasks: usize = g
            .tasks()
            .iter()
            .filter(|t| t.weight > delta)
            .map(|t| (t.weight as usize).div_ceil(delta as usize))
            .sum();
        prop_assert_eq!(r.subtasks_spawned, expected_subtasks);
        let expected_partitioned =
            g.tasks().iter().filter(|t| t.weight > delta).count();
        prop_assert_eq!(r.partitioned_tasks, expected_partitioned);
        // busy conserved vs unpartitioned up to per-subtask rounding of
        // the fractional per-entry costs (≤ 0.5 units per subtask)
        let base = simulate(&g, Policy::collaborative_unpartitioned(), 4, &m);
        let diff = r.total_busy().abs_diff(base.total_busy());
        prop_assert!(
            diff as usize <= r.subtasks_spawned + g.num_tasks(),
            "busy drift {diff} over {} subtasks",
            r.subtasks_spawned
        );
    }
}
