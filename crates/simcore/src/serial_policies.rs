//! The three baseline policies: OpenMP-style, data-parallel, PNL-style.
//!
//! All three keep the paper's *sequential* outer structure — primitives
//! execute one after another in a valid topological order — and only
//! parallelize inside each primitive. Their makespan is therefore the sum
//! of per-primitive times under the respective intra-primitive model (see
//! [`CostModel`]), and per-core statistics charge each core `1/P` of the
//! parallelizable work.

use crate::{CoreStats, CostModel, SimReport};
use evprop_potential::PrimitiveKind;
use evprop_taskgraph::TaskGraph;

fn simulate_serial_outer(
    graph: &TaskGraph,
    cores: usize,
    model: &CostModel,
    task_time: impl Fn(PrimitiveKind, u64, usize) -> u64,
) -> SimReport {
    let mut makespan = 0u64;
    let mut stats = vec![CoreStats::default(); cores];
    for t in graph.tasks() {
        let kind = t.kind.primitive();
        let dt = task_time(kind, t.weight, cores);
        makespan += dt;
        // charge cores: parallel share of the pure work is busy; the rest
        // of dt (serial section seen by others + barrier) is overhead.
        let work = model.exec_cost(kind, t.weight);
        let share = work / cores as u64;
        for (i, s) in stats.iter_mut().enumerate() {
            s.busy += share;
            s.overhead += dt.saturating_sub(share);
            s.weight += t.weight / cores as u64;
            if i == 0 {
                // core 0 carries the integer-division remainders so the
                // per-core sums reconcile with the totals
                s.busy += work % cores as u64;
                s.weight += t.weight % cores as u64;
                s.tasks += 1;
            }
        }
    }
    SimReport {
        makespan,
        cores: stats,
        partitioned_tasks: 0,
        subtasks_spawned: 0,
    }
}

pub(crate) fn simulate_openmp(graph: &TaskGraph, cores: usize, model: &CostModel) -> SimReport {
    simulate_serial_outer(graph, cores, model, |k, w, p| model.omp_task_time(k, w, p))
}

pub(crate) fn simulate_data_parallel(
    graph: &TaskGraph,
    cores: usize,
    model: &CostModel,
) -> SimReport {
    simulate_serial_outer(graph, cores, model, |k, w, p| model.dp_task_time(k, w, p))
}

pub(crate) fn simulate_pnl(graph: &TaskGraph, cores: usize, model: &CostModel) -> SimReport {
    simulate_serial_outer(graph, cores, model, |k, w, p| model.pnl_task_time(k, w, p))
}

#[cfg(test)]
mod tests {
    use crate::{simulate, speedup, CostModel, Policy};
    use evprop_jtree::TreeShape;
    use evprop_potential::{Domain, VarId, Variable};
    use evprop_taskgraph::TaskGraph;

    fn big_tree(width: usize) -> TaskGraph {
        // balanced binary tree, 31 cliques
        let n = 31;
        let mut next = 0u32;
        let domains: Vec<Domain> = (0..n)
            .map(|_| {
                let vars: Vec<Variable> = (0..width)
                    .map(|_| {
                        let v = Variable::binary(VarId(next));
                        next += 1;
                        v
                    })
                    .collect();
                Domain::new(vars).unwrap()
            })
            .collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        TaskGraph::from_shape(&TreeShape::new(domains, &edges, 0).unwrap())
    }

    #[test]
    fn openmp_saturates_below_collaborative() {
        let g = big_tree(18); // tables above δ so the Partition module engages
        let m = CostModel::default();
        let omp = speedup(&g, Policy::OpenMpStyle, 8, &m);
        let collab = speedup(&g, Policy::collaborative(), 8, &m);
        assert!(omp > 2.0 && omp < 4.5, "omp speedup {omp}");
        assert!(collab > omp * 1.5, "collab {collab} vs omp {omp}");
    }

    #[test]
    fn pnl_runtime_rises_after_four_cores() {
        // Fig. 6 shape: time decreases to ~4 cores then increases
        let g = big_tree(16);
        let m = CostModel::default();
        let t4 = simulate(&g, Policy::PnlStyle, 4, &m).makespan;
        let t8 = simulate(&g, Policy::PnlStyle, 8, &m).makespan;
        let t1 = simulate(&g, Policy::PnlStyle, 1, &m).makespan;
        assert!(t4 < t1);
        assert!(t8 > t4, "t8={t8} should exceed t4={t4}");
    }

    #[test]
    fn data_parallel_between_openmp_and_collaborative_on_large_cliques() {
        let g = big_tree(20); // 1M-entry tables, the JT1 regime where the paper
                              // saw data-parallel beat OpenMP
        let m = CostModel::default();
        let dp = speedup(&g, Policy::DataParallel, 8, &m);
        let omp = speedup(&g, Policy::OpenMpStyle, 8, &m);
        let collab = speedup(&g, Policy::collaborative(), 8, &m);
        assert!(dp > omp, "dp {dp} vs omp {omp}");
        assert!(collab > dp, "collab {collab} vs dp {dp}");
    }

    #[test]
    fn data_parallel_collapses_on_small_cliques() {
        let g = big_tree(6); // 64-entry tables: spawn overhead dominates
        let m = CostModel::default();
        let dp = speedup(&g, Policy::DataParallel, 8, &m);
        assert!(dp < 1.5, "dp speedup {dp} should be poor");
    }

    #[test]
    fn serial_policies_are_deterministic() {
        let g = big_tree(10);
        let m = CostModel::default();
        for p in [Policy::OpenMpStyle, Policy::DataParallel, Policy::PnlStyle] {
            assert_eq!(simulate(&g, p, 4, &m), simulate(&g, p, 4, &m));
        }
    }
}
