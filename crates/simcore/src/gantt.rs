//! ASCII Gantt rendering of simulated schedules.

use crate::TraceEvent;
use evprop_potential::PrimitiveKind;
use std::fmt::Write as _;

/// Renders a trace as an ASCII Gantt chart: one row per core, time
/// bucketed into `width` columns. Busy buckets show the initial of the
/// dominant primitive (`m`/`d`/`e`/`x` for marginalize/divide/extend/
/// multiply), idle buckets `·`.
///
/// # Example
///
/// ```
/// use evprop_bayesnet::networks;
/// use evprop_jtree::JunctionTree;
/// use evprop_simcore::{render_gantt, simulate_collaborative_traced, CostModel};
/// use evprop_taskgraph::TaskGraph;
///
/// let jt = JunctionTree::from_network(&networks::asia()).unwrap();
/// let g = TaskGraph::from_shape(jt.shape());
/// let (_, trace) = simulate_collaborative_traced(&g, 2, None, false, &CostModel::default());
/// let chart = render_gantt(&trace, 2, 40);
/// assert!(chart.lines().count() >= 2);
/// ```
pub fn render_gantt(trace: &[TraceEvent], cores: usize, width: usize) -> String {
    let makespan = trace.iter().map(|e| e.end).max().unwrap_or(0);
    let mut out = String::new();
    if makespan == 0 || width == 0 {
        for c in 0..cores {
            let _ = writeln!(out, "core {c:>2} |");
        }
        return out;
    }
    let glyph = |k: PrimitiveKind| match k {
        PrimitiveKind::Marginalize => 'm',
        PrimitiveKind::Divide => 'd',
        PrimitiveKind::Extend => 'e',
        PrimitiveKind::Multiply => 'x',
    };
    for c in 0..cores {
        // per-bucket occupancy, weighted by overlap
        let mut cells = vec![(0u64, ' '); width];
        for e in trace.iter().filter(|e| e.core == c) {
            let b0 = (e.start as u128 * width as u128 / makespan as u128) as usize;
            let b1 = (e.end as u128 * width as u128 / makespan as u128) as usize;
            for cell in cells.iter_mut().take(b1.min(width - 1) + 1).skip(b0) {
                let span = e.end - e.start;
                if span >= cell.0 {
                    *cell = (span, glyph(e.primitive));
                }
            }
        }
        let row: String = cells
            .iter()
            .map(|&(_, g)| if g == ' ' { '·' } else { g })
            .collect();
        let _ = writeln!(out, "core {c:>2} |{row}|");
    }
    let _ = writeln!(
        out,
        "         0{}{makespan} units",
        " ".repeat(width.saturating_sub(1))
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_jtree::CliqueId;

    fn ev(core: usize, start: u64, end: u64, k: PrimitiveKind) -> TraceEvent {
        TraceEvent {
            core,
            start,
            end,
            clique: CliqueId(0),
            primitive: k,
        }
    }

    #[test]
    fn renders_rows_and_glyphs() {
        let trace = vec![
            ev(0, 0, 50, PrimitiveKind::Marginalize),
            ev(0, 50, 100, PrimitiveKind::Multiply),
            ev(1, 25, 75, PrimitiveKind::Divide),
        ];
        let chart = render_gantt(&trace, 2, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('m') && lines[0].contains('x'));
        assert!(lines[1].contains('d'));
        assert!(lines[1].contains('·')); // idle head and tail
    }

    #[test]
    fn empty_trace() {
        let chart = render_gantt(&[], 3, 10);
        assert_eq!(chart.lines().count(), 3);
    }
}
