//! Event-driven virtual-time replay of the collaborative scheduler.

use crate::{CoreStats, CostModel, SimReport};
use evprop_jtree::CliqueId;
use evprop_potential::{EntryRange, PrimitiveKind};
use evprop_taskgraph::{TaskGraph, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One executed (sub)task in a simulated schedule — the raw material for
/// Gantt charts and schedule inspection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual core that ran the task.
    pub core: usize,
    /// Virtual start time (after lock + dispatch overhead).
    pub start: u64,
    /// Virtual completion time.
    pub end: u64,
    /// The clique whose update the task belongs to.
    pub clique: CliqueId,
    /// The primitive executed.
    pub primitive: PrimitiveKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimExec {
    Static(TaskId),
    Part { rec: usize, part: usize },
}

struct SimRecord {
    task: TaskId,
    /// Entry counts of each subtask range (the last is the combiner).
    part_weights: Vec<u64>,
    final_deps: u32,
}

struct Core {
    queue: VecDeque<SimExec>,
    /// Weight counter of the local ready list.
    weight: u64,
    running: Option<SimExec>,
    stats: CoreStats,
}

struct Sim<'g> {
    graph: &'g TaskGraph,
    model: &'g CostModel,
    delta: Option<u64>,
    stealing: bool,
    deps: Vec<u32>,
    cores: Vec<Core>,
    records: Vec<SimRecord>,
    /// Completion events: (time, sequence, core).
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    remaining: usize,
    makespan: u64,
    partitioned: usize,
    subtasks: usize,
    /// Virtual time at which the global-list lock next becomes free;
    /// every dispatch serializes through it for `lambda_lock` units.
    lock_free_at: u64,
    trace: Option<Vec<TraceEvent>>,
}

pub(crate) fn simulate_collaborative(
    graph: &TaskGraph,
    cores: usize,
    delta: Option<u64>,
    stealing: bool,
    model: &CostModel,
) -> SimReport {
    simulate_collaborative_impl(graph, cores, delta, stealing, model, false).0
}

/// Like [`crate::simulate`] with the collaborative policy, but also
/// returning the full execution trace (one event per executed subtask).
pub fn simulate_collaborative_traced(
    graph: &TaskGraph,
    cores: usize,
    delta: Option<u64>,
    stealing: bool,
    model: &CostModel,
) -> (SimReport, Vec<TraceEvent>) {
    let (report, trace) = simulate_collaborative_impl(graph, cores, delta, stealing, model, true);
    (report, trace.expect("tracing was requested"))
}

fn simulate_collaborative_impl(
    graph: &TaskGraph,
    cores: usize,
    delta: Option<u64>,
    stealing: bool,
    model: &CostModel,
    traced: bool,
) -> (SimReport, Option<Vec<TraceEvent>>) {
    let mut sim = Sim {
        graph,
        model,
        delta,
        stealing,
        deps: (0..graph.num_tasks())
            .map(|t| graph.dependency_degree(TaskId(t)))
            .collect(),
        cores: (0..cores)
            .map(|_| Core {
                queue: VecDeque::new(),
                weight: 0,
                running: None,
                stats: CoreStats::default(),
            })
            .collect(),
        records: Vec::new(),
        events: BinaryHeap::new(),
        seq: 0,
        remaining: graph.num_tasks(),
        makespan: 0,
        partitioned: 0,
        subtasks: 0,
        lock_free_at: 0,
        trace: traced.then(Vec::new),
    };

    if graph.num_tasks() == 0 {
        let trace = sim.trace.take();
        return (sim.into_report(), trace);
    }

    // Line 1: evenly distribute the initially-ready tasks.
    for (i, t) in graph.initial_ready().into_iter().enumerate() {
        let c = i % cores;
        sim.cores[c].weight += graph.task(t).weight;
        sim.cores[c].queue.push_back(SimExec::Static(t));
    }
    for c in 0..cores {
        sim.try_start(c, 0);
    }

    // main event loop
    while let Some(Reverse((t, _, c))) = sim.events.pop() {
        sim.complete(c, t);
    }
    debug_assert_eq!(sim.remaining, 0, "simulation drained all tasks");
    let trace = sim.trace.take();
    (sim.into_report(), trace)
}

impl<'g> Sim<'g> {
    fn exec_weight(&self, e: SimExec) -> u64 {
        match e {
            SimExec::Static(t) => self.graph.task(t).weight,
            SimExec::Part { rec, part } => self.records[rec].part_weights[part],
        }
    }

    /// Allocate module: ready unit goes to the least-loaded core; ties
    /// prefer an idle core (a busy core with an empty queue still has a
    /// task in flight).
    fn allocate(&mut self, e: SimExec, now: u64) {
        let j = (0..self.cores.len())
            .min_by_key(|&j| (self.cores[j].weight, self.cores[j].running.is_some(), j))
            .expect("at least one core");
        self.cores[j].weight += self.exec_weight(e);
        self.cores[j].queue.push_back(e);
        self.try_start(j, now);
    }

    /// If core `c` is idle, fetch (head of own queue, else steal) and
    /// begin executing.
    fn try_start(&mut self, c: usize, now: u64) {
        if self.cores[c].running.is_some() {
            return;
        }
        let e = if let Some(e) = self.cores[c].queue.pop_front() {
            self.cores[c].weight -= self.exec_weight(e);
            Some(e)
        } else if self.stealing {
            self.steal(c)
        } else {
            None
        };
        let Some(e) = e else { return };
        self.begin(c, e, now);
    }

    fn steal(&mut self, thief: usize) -> Option<SimExec> {
        let victim = (0..self.cores.len())
            .filter(|&j| j != thief)
            .max_by_key(|&j| self.cores[j].weight)?;
        let e = self.cores[victim].queue.pop_back()?;
        self.cores[victim].weight -= self.exec_weight(e);
        Some(e)
    }

    /// Partition check + execution start.
    fn begin(&mut self, c: usize, e: SimExec, now: u64) {
        // Mark the core busy *before* any partition allocation: allocate()
        // may otherwise try_start() this very core and double-book it.
        self.cores[c].running = Some(e);
        let e = match e {
            SimExec::Static(t) => {
                let w = self.graph.task(t).weight;
                match self.delta {
                    Some(delta) if w > delta => {
                        // Partition module (virtual): split into ranges.
                        let ranges = EntryRange::split(w as usize, delta as usize);
                        let n = ranges.len();
                        let rec = self.records.len();
                        self.records.push(SimRecord {
                            task: t,
                            part_weights: ranges.iter().map(|r| r.len() as u64).collect(),
                            final_deps: (n - 1) as u32,
                        });
                        self.partitioned += 1;
                        self.subtasks += n;
                        for part in 1..n - 1 {
                            self.allocate(SimExec::Part { rec, part }, now);
                        }
                        SimExec::Part { rec, part: 0 }
                    }
                    _ => SimExec::Static(t),
                }
            }
            part => part,
        };

        let (kind, w) = match e {
            SimExec::Static(t) => {
                let task = self.graph.task(t);
                (task.kind.primitive(), task.weight)
            }
            SimExec::Part { rec, part } => {
                let task = self.graph.task(self.records[rec].task);
                (task.kind.primitive(), self.records[rec].part_weights[part])
            }
        };
        let sigma = self.model.sigma_sched.round() as u64;
        let lambda = self.model.lambda_lock.round() as u64;
        let exec = self.model.exec_cost(kind, w);
        // serialize the dispatch through the global-list lock
        let acquired = self.lock_free_at.max(now);
        self.lock_free_at = acquired + lambda;
        let stall = acquired - now;
        let core = &mut self.cores[c];
        core.running = Some(e);
        core.stats.busy += exec;
        core.stats.overhead += stall + lambda + sigma;
        core.stats.weight += w;
        core.stats.tasks += 1;
        let done = acquired + lambda + sigma + exec;
        if let Some(trace) = &mut self.trace {
            let clique = match e {
                SimExec::Static(t) => self.graph.task(t).clique,
                SimExec::Part { rec, .. } => self.graph.task(self.records[rec].task).clique,
            };
            trace.push(TraceEvent {
                core: c,
                start: acquired + lambda + sigma,
                end: done,
                clique,
                primitive: kind,
            });
        }
        self.seq += 1;
        self.events.push(Reverse((done, self.seq, c)));
    }

    /// Handle the completion event of whatever ran on core `c`.
    fn complete(&mut self, c: usize, now: u64) {
        self.makespan = self.makespan.max(now);
        let e = self.cores[c]
            .running
            .take()
            .expect("completion events match running tasks");
        match e {
            SimExec::Static(t) => self.complete_static(t, now),
            SimExec::Part { rec, part } => {
                let n = self.records[rec].part_weights.len();
                if part == n - 1 {
                    let t = self.records[rec].task;
                    self.complete_static(t, now);
                } else {
                    self.records[rec].final_deps -= 1;
                    if self.records[rec].final_deps == 0 {
                        self.allocate(SimExec::Part { rec, part: n - 1 }, now);
                    }
                }
            }
        }
        self.try_start(c, now);
    }

    fn complete_static(&mut self, t: TaskId, now: u64) {
        // collect first to avoid aliasing self
        let succs: Vec<TaskId> = self.graph.successors(t).to_vec();
        for s in succs {
            self.deps[s.index()] -= 1;
            if self.deps[s.index()] == 0 {
                self.allocate(SimExec::Static(s), now);
            }
        }
        self.remaining -= 1;
    }

    fn into_report(self) -> SimReport {
        SimReport {
            makespan: self.makespan,
            cores: self.cores.into_iter().map(|c| c.stats).collect(),
            partitioned_tasks: self.partitioned,
            subtasks_spawned: self.subtasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{simulate, speedup, CostModel, Policy};
    use evprop_jtree::TreeShape;
    use evprop_potential::{Domain, VarId, Variable};
    use evprop_taskgraph::TaskGraph;

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    fn path(n: usize, width: usize) -> TaskGraph {
        let domains: Vec<Domain> = (0..n)
            .map(|i| {
                let base = (i * (width - 1)) as u32;
                dom(&(0..width as u32).map(|j| base + j).collect::<Vec<_>>())
            })
            .collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        TaskGraph::from_shape(&TreeShape::new(domains, &edges, 0).unwrap())
    }

    fn balanced(depth: usize, width: usize) -> TaskGraph {
        // binary tree of cliques
        let n = (1 << depth) - 1;
        let mut next_var = 0u32;
        let domains: Vec<Domain> = (0..n)
            .map(|_| {
                let vars: Vec<u32> = (0..width as u32).map(|j| next_var + j).collect();
                next_var += width as u32;
                dom(&vars)
            })
            .collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        TaskGraph::from_shape(&TreeShape::new(domains, &edges, 0).unwrap())
    }

    #[test]
    fn deterministic() {
        let g = balanced(5, 6);
        let m = CostModel::default();
        let a = simulate(&g, Policy::collaborative(), 4, &m);
        let b = simulate(&g, Policy::collaborative(), 4, &m);
        assert_eq!(a, b);
    }

    #[test]
    fn single_core_makespan_is_total_time() {
        let g = path(5, 4);
        let m = CostModel::default();
        let r = simulate(&g, Policy::collaborative_unpartitioned(), 1, &m);
        let expected: u64 = g
            .tasks()
            .iter()
            .map(|t| {
                m.exec_cost(t.kind.primitive(), t.weight)
                    + m.sigma_sched as u64
                    + m.lambda_lock as u64
            })
            .sum();
        assert_eq!(r.makespan, expected);
        assert_eq!(r.cores[0].tasks, g.num_tasks());
    }

    #[test]
    fn more_cores_never_slower() {
        let g = balanced(6, 8);
        let m = CostModel::default();
        let mut prev = u64::MAX;
        for p in [1, 2, 4, 8] {
            let r = simulate(&g, Policy::collaborative(), p, &m);
            assert!(r.makespan <= prev, "p={p}");
            prev = r.makespan;
        }
    }

    #[test]
    fn wide_trees_scale_nearly_linearly() {
        // large balanced tree with big cliques: plenty of structural and
        // data parallelism
        let g = balanced(7, 12);
        let m = CostModel::default();
        let s8 = speedup(&g, Policy::collaborative(), 8, &m);
        assert!(s8 > 6.0, "speedup {s8}");
    }

    #[test]
    fn partitioning_helps_serial_chains() {
        // a path gives almost no structural parallelism: only the
        // Partition module can help
        let g = path(16, 14);
        let m = CostModel::default();
        let without = speedup(&g, Policy::collaborative_unpartitioned(), 8, &m);
        let with = speedup(
            &g,
            Policy::Collaborative {
                delta: Some(1024),
                work_stealing: false,
            },
            8,
            &m,
        );
        assert!(with > without + 0.5, "with={with} without={without}");
    }

    #[test]
    fn stealing_does_not_break_anything() {
        let g = balanced(5, 8);
        let m = CostModel::default();
        let r = simulate(
            &g,
            Policy::Collaborative {
                delta: Some(4096),
                work_stealing: true,
            },
            4,
            &m,
        );
        let total: usize = r.cores.iter().map(|c| c.tasks).sum();
        assert!(total >= g.num_tasks());
        assert!(r.makespan > 0);
    }

    #[test]
    fn empty_graph() {
        let g = path(1, 3);
        let r = simulate(&g, Policy::collaborative(), 4, &CostModel::default());
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn trace_is_consistent() {
        use crate::simulate_collaborative_traced;
        let g = balanced(5, 8);
        let m = CostModel::default();
        let (report, trace) = simulate_collaborative_traced(&g, 4, Some(64), false, &m);
        let total_tasks: usize = report.cores.iter().map(|c| c.tasks).sum();
        assert_eq!(trace.len(), total_tasks);
        // per-core events do not overlap and end within the makespan
        for core in 0..4 {
            let mut events: Vec<_> = trace.iter().filter(|e| e.core == core).collect();
            events.sort_by_key(|e| e.start);
            for w in events.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap on core {core}");
            }
            for e in &events {
                assert!(e.end <= report.makespan);
                assert!(e.start <= e.end);
            }
        }
    }

    #[test]
    fn busy_conservation() {
        // total busy time is independent of core count (same work)
        let g = balanced(5, 8);
        let m = CostModel::default();
        let b1 = simulate(&g, Policy::collaborative_unpartitioned(), 1, &m).total_busy();
        let b8 = simulate(&g, Policy::collaborative_unpartitioned(), 8, &m).total_busy();
        assert_eq!(b1, b8);
    }

    #[test]
    fn overhead_small_for_large_tables() {
        // Fig. 8(b): scheduling overhead below 1% for JT1-like sizes
        let g = balanced(6, 20); // 1Mi-entry cliques, the JT1 regime
        let m = CostModel::default();
        let r = simulate(&g, Policy::collaborative(), 8, &m);
        let ratio = r.total_overhead() as f64 / (r.total_busy() + r.total_overhead()) as f64;
        assert!(ratio < 0.01, "overhead ratio {ratio}");
    }
}
