//! Simulation results.

/// What one virtual core did during a simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Virtual time spent executing primitives.
    pub busy: u64,
    /// Virtual time spent on scheduling overhead (dispatch, fork/join).
    pub overhead: u64,
    /// Table entries processed.
    pub weight: u64,
    /// Number of (sub)tasks executed.
    pub tasks: usize,
}

impl CoreStats {
    /// `busy / (busy + overhead + idle)` given the run's makespan — the
    /// Fig. 8(b) computation-time ratio for this core.
    pub fn compute_ratio(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            return 1.0;
        }
        self.busy as f64 / makespan as f64
    }
}

/// Outcome of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Virtual completion time of the whole propagation.
    pub makespan: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Tasks split by the Partition module (collaborative policy only).
    pub partitioned_tasks: usize,
    /// Dynamic subtasks spawned by partitioning.
    pub subtasks_spawned: usize,
}

impl SimReport {
    /// Total busy time across cores.
    pub fn total_busy(&self) -> u64 {
        self.cores.iter().map(|c| c.busy).sum()
    }

    /// Total scheduling overhead across cores.
    pub fn total_overhead(&self) -> u64 {
        self.cores.iter().map(|c| c.overhead).sum()
    }

    /// Load imbalance: max core weight over mean core weight.
    pub fn imbalance(&self) -> f64 {
        if self.cores.is_empty() {
            return 1.0;
        }
        let max = self.cores.iter().map(|c| c.weight).max().unwrap() as f64;
        let mean =
            self.cores.iter().map(|c| c.weight).sum::<u64>() as f64 / self.cores.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_totals() {
        let r = SimReport {
            makespan: 100,
            cores: vec![
                CoreStats {
                    busy: 90,
                    overhead: 5,
                    weight: 90,
                    tasks: 3,
                },
                CoreStats {
                    busy: 80,
                    overhead: 2,
                    weight: 80,
                    tasks: 2,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.total_busy(), 170);
        assert_eq!(r.total_overhead(), 7);
        assert!((r.cores[0].compute_ratio(r.makespan) - 0.9).abs() < 1e-12);
        assert!((r.imbalance() - 90.0 / 85.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let r = SimReport::default();
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.total_busy(), 0);
    }
}
