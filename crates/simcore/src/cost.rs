//! The global cost model (DESIGN.md §7).
//!
//! One set of constants drives every figure — there is no per-figure
//! tuning. The unit of virtual time is one table-entry touch by a
//! marginalization loop.

use evprop_potential::PrimitiveKind;

/// Cost constants shared by all policies.
///
/// * `c_*` — per-entry execution cost of each primitive, set to the
///   ratios measured on real tables by the `calibrate` binary
///   (marginalization is the most expensive per entry — it walks the
///   source with a mixed-radix index map and accumulates — while
///   same-domain division is a plain elementwise loop);
/// * `sigma_sched` — collaborative scheduler's per-dispatch overhead
///   (dependency decrements, list push/pop under a lock);
/// * `omp_*` — OpenMP-style baseline: a serial fraction of each
///   primitive that mechanical `parallel for` annotation does not cover,
///   plus an affine fork/join barrier cost;
/// * `dp_*` — data-parallel baseline: small serial fraction (it
///   partitions tables like the Partition module) but a large
///   per-primitive thread spawn/join cost;
/// * `pnl_*` — PNL-like reference: serialized shared-state section plus
///   coordination growing with `P²`.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Per-entry cost of marginalization.
    pub c_marg: f64,
    /// Per-entry cost of division.
    pub c_div: f64,
    /// Per-entry cost of extension.
    pub c_ext: f64,
    /// Per-entry cost of multiplication.
    pub c_mul: f64,
    /// Collaborative per-task dispatch overhead (units).
    pub sigma_sched: f64,
    /// Critical-section length of the global-list lock per dispatch
    /// (units). Dispatches serialize through it, so `tasks × λ` is a
    /// *serial* floor on the makespan — the mechanism that caps speedup
    /// for trees with small potential tables (the paper's `w=10, r=2`
    /// outlier in Fig. 9).
    pub lambda_lock: f64,
    /// OpenMP-style serial fraction of each primitive.
    pub omp_serial: f64,
    /// OpenMP-style fork/join cost: `omp_fork_a + omp_fork_b · P`.
    pub omp_fork_a: f64,
    /// See `omp_fork_a`.
    pub omp_fork_b: f64,
    /// Data-parallel serial fraction.
    pub dp_serial: f64,
    /// Data-parallel spawn/join cost: `dp_fork_a + dp_fork_b · P`.
    pub dp_fork_a: f64,
    /// See `dp_fork_a`.
    pub dp_fork_b: f64,
    /// PNL-style serial fraction.
    pub pnl_serial: f64,
    /// PNL-style coordination overhead per primitive, as a fraction of
    /// the primitive's work *per core*: cost `pnl_coord_frac · P · w`.
    /// Coordination proportional to both table size (fine-grained
    /// locking) and core count makes runtime rise past ~4 cores for
    /// every tree size, the Fig. 6 shape.
    pub pnl_coord_frac: f64,
}

impl CostModel {
    /// Default partition threshold δ (entries) used by
    /// [`crate::Policy::collaborative`].
    pub const DEFAULT_DELTA: u64 = 131_072;

    /// Execution cost (units) of processing `weight` entries with the
    /// given primitive.
    pub fn exec_cost(&self, kind: PrimitiveKind, weight: u64) -> u64 {
        let c = match kind {
            PrimitiveKind::Marginalize => self.c_marg,
            PrimitiveKind::Divide => self.c_div,
            PrimitiveKind::Extend => self.c_ext,
            PrimitiveKind::Multiply => self.c_mul,
        };
        (weight as f64 * c).round() as u64
    }

    /// OpenMP-style time for one primitive of `weight` entries on `p`
    /// cores.
    pub fn omp_task_time(&self, kind: PrimitiveKind, weight: u64, p: usize) -> u64 {
        self.fractioned(kind, weight, p, self.omp_serial)
            + (self.omp_fork_a + self.omp_fork_b * p as f64).round() as u64
    }

    /// Data-parallel time for one primitive of `weight` entries on `p`
    /// cores.
    pub fn dp_task_time(&self, kind: PrimitiveKind, weight: u64, p: usize) -> u64 {
        self.fractioned(kind, weight, p, self.dp_serial)
            + (self.dp_fork_a + self.dp_fork_b * p as f64).round() as u64
    }

    /// PNL-style time for one primitive of `weight` entries on `p` cores.
    pub fn pnl_task_time(&self, kind: PrimitiveKind, weight: u64, p: usize) -> u64 {
        let w = self.exec_cost(kind, weight) as f64;
        self.fractioned(kind, weight, p, self.pnl_serial)
            + (self.pnl_coord_frac * p as f64 * w).round() as u64
    }

    fn fractioned(&self, kind: PrimitiveKind, weight: u64, p: usize, serial: f64) -> u64 {
        let w = self.exec_cost(kind, weight) as f64;
        if p <= 1 {
            return w.round() as u64;
        }
        (w * serial + w * (1.0 - serial) / p as f64).round() as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            c_marg: 1.0,
            c_div: 0.5,
            c_ext: 0.65,
            c_mul: 0.7,
            sigma_sched: 280.0,
            lambda_lock: 210.0,
            omp_serial: 0.18,
            omp_fork_a: 1_050.0,
            omp_fork_b: 175.0,
            dp_serial: 0.02,
            dp_fork_a: 21_000.0,
            dp_fork_b: 5_600.0,
            pnl_serial: 0.06,
            pnl_coord_frac: 0.04,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_cost_scales_with_weight() {
        let m = CostModel::default();
        assert_eq!(m.exec_cost(PrimitiveKind::Marginalize, 1000), 1000);
        assert_eq!(m.exec_cost(PrimitiveKind::Divide, 1000), 500);
        assert_eq!(m.exec_cost(PrimitiveKind::Extend, 1000), 650);
        assert_eq!(m.exec_cost(PrimitiveKind::Multiply, 1000), 700);
    }

    #[test]
    fn single_core_has_no_parallel_gain() {
        let m = CostModel::default();
        let w = 100_000;
        let t1 = m.omp_task_time(PrimitiveKind::Multiply, w, 1);
        // full per-entry cost plus fork overhead, no division by P
        assert!(t1 >= m.exec_cost(PrimitiveKind::Multiply, w));
    }

    #[test]
    fn omp_is_amdahl_limited() {
        let m = CostModel::default();
        let w = 1_000_000;
        let t1 = m.omp_task_time(PrimitiveKind::Multiply, w, 1) as f64;
        let t8 = m.omp_task_time(PrimitiveKind::Multiply, w, 8) as f64;
        let speedup = t1 / t8;
        // 18% serial fraction caps speedup near 1/(0.18+0.82/8) ≈ 3.5
        assert!(speedup > 3.0 && speedup < 4.2, "speedup {speedup}");
    }

    #[test]
    fn pnl_degrades_past_four_cores_on_large_tables() {
        let m = CostModel::default();
        let w = 1 << 20;
        let t4 = m.pnl_task_time(PrimitiveKind::Multiply, w, 4);
        let t8 = m.pnl_task_time(PrimitiveKind::Multiply, w, 8);
        assert!(t8 > t4, "t8={t8} t4={t4}");
    }

    #[test]
    fn dp_beats_omp_on_large_tables_at_8_cores() {
        // The paper: data-parallel ≈ 4.1×, OpenMP ≈ 3.5× at 8 cores on
        // the large-clique tree.
        let m = CostModel::default();
        let w = 1 << 20;
        let dp = m.dp_task_time(PrimitiveKind::Multiply, w, 8);
        let omp = m.omp_task_time(PrimitiveKind::Multiply, w, 8);
        assert!(dp < omp);
    }

    #[test]
    fn dp_loses_on_small_tables() {
        // spawn overhead dominates small primitives
        let m = CostModel::default();
        let w = 1 << 10;
        let dp = m.dp_task_time(PrimitiveKind::Multiply, w, 8);
        let omp = m.omp_task_time(PrimitiveKind::Multiply, w, 8);
        assert!(dp > omp);
    }
}
