//! A deterministic discrete-event **multicore simulator** for DAG
//! scheduling policies.
//!
//! # Why this exists
//!
//! The paper's evaluation ran on two 8-core machines (2× Xeon E5335,
//! 2× Opteron 2347). This reproduction targets arbitrary hosts — including
//! single-core containers — so wall-clock speedup at `P > 1` may be
//! physically unobservable. The simulator executes the *same task DAGs*
//! built by `evprop-taskgraph` under the *same scheduling policies* as
//! the real engines, but in virtual time, with task costs derived from
//! actual potential-table sizes and a single global overhead model
//! ([`CostModel`]). Every speedup figure of the paper (Figs. 5–9) is
//! regenerated from it deterministically; the real threaded engines are
//! separately validated for *correctness* against the sequential oracle.
//!
//! # Policies
//!
//! * [`Policy::Collaborative`] — event-driven replay of the paper's
//!   scheduler: per-core ready queues with weight counters,
//!   allocate-to-least-loaded, optional δ-partitioning of large tasks;
//! * [`Policy::OpenMpStyle`] — the paper's first baseline: the clique
//!   order stays sequential, each primitive's entry loop is split over
//!   `P` cores behind a fork/join barrier;
//! * [`Policy::DataParallel`] — the second baseline: per-primitive
//!   parallelization with thread creation/join per primitive (higher
//!   fork cost, lower serial fraction);
//! * [`Policy::PnlStyle`] — the Fig. 6 reference: per-primitive
//!   parallelism with a serialized section and coordination cost growing
//!   quadratically in `P`, which makes runtime *rise* past ~4 cores.
//!
//! ```
//! use evprop_bayesnet::networks;
//! use evprop_jtree::JunctionTree;
//! use evprop_simcore::{simulate, CostModel, Policy};
//! use evprop_taskgraph::TaskGraph;
//!
//! let jt = JunctionTree::from_network(&networks::asia()).unwrap();
//! let g = TaskGraph::from_shape(jt.shape());
//! let model = CostModel::default();
//! let s1 = simulate(&g, Policy::collaborative(), 1, &model);
//! let s4 = simulate(&g, Policy::collaborative(), 4, &model);
//! assert!(s4.makespan <= s1.makespan);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collab_sim;
mod cost;
mod gantt;
mod report;
mod serial_policies;

pub use collab_sim::{simulate_collaborative_traced, TraceEvent};
pub use cost::CostModel;
pub use gantt::render_gantt;
pub use report::{CoreStats, SimReport};

use evprop_taskgraph::TaskGraph;

/// A scheduling policy the simulator can replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// The paper's collaborative scheduler (§6).
    Collaborative {
        /// Partition threshold δ in table entries (`None` disables the
        /// Partition module, as Fig. 5 does).
        delta: Option<u64>,
        /// Work-stealing ablation: idle cores take from the heaviest
        /// queue's tail.
        work_stealing: bool,
    },
    /// OpenMP-style loop parallelism inside each primitive; sequential
    /// task order.
    OpenMpStyle,
    /// Per-primitive data parallelism with thread spawn/join per
    /// primitive; sequential task order.
    DataParallel,
    /// PNL-like parallelization whose coordination cost grows with `P²`.
    PnlStyle,
}

impl Policy {
    /// Collaborative scheduling with the default δ and no stealing.
    pub fn collaborative() -> Policy {
        Policy::Collaborative {
            delta: Some(CostModel::DEFAULT_DELTA),
            work_stealing: false,
        }
    }

    /// Collaborative scheduling with the Partition module disabled.
    pub fn collaborative_unpartitioned() -> Policy {
        Policy::Collaborative {
            delta: None,
            work_stealing: false,
        }
    }
}

/// Simulates one evidence-propagation run of `graph` on `cores` virtual
/// cores under `policy`, returning makespan and per-core statistics in
/// abstract time units (1 unit ≈ one table-entry touch).
///
/// Deterministic: equal inputs give equal outputs, bit for bit.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn simulate(graph: &TaskGraph, policy: Policy, cores: usize, model: &CostModel) -> SimReport {
    assert!(cores > 0, "need at least one core");
    match policy {
        Policy::Collaborative {
            delta,
            work_stealing,
        } => collab_sim::simulate_collaborative(graph, cores, delta, work_stealing, model),
        Policy::OpenMpStyle => serial_policies::simulate_openmp(graph, cores, model),
        Policy::DataParallel => serial_policies::simulate_data_parallel(graph, cores, model),
        Policy::PnlStyle => serial_policies::simulate_pnl(graph, cores, model),
    }
}

/// Convenience: speedup of `policy` at `cores` relative to the same
/// policy at 1 core.
pub fn speedup(graph: &TaskGraph, policy: Policy, cores: usize, model: &CostModel) -> f64 {
    let t1 = simulate(graph, policy, 1, model).makespan;
    let tp = simulate(graph, policy, cores, model).makespan;
    if tp == 0 {
        1.0
    } else {
        t1 as f64 / tp as f64
    }
}
