//! Max-marginalization: the primitive that turns sum-product evidence
//! propagation into max-product (Viterbi / MPE) propagation.
//!
//! Dawid's max-propagation runs the same two-phase schedule with the
//! same division, extension and multiplication primitives; only
//! marginalization changes — `Σ` becomes `max` — and partitioned
//! partial results combine by elementwise `max` instead of addition.

use crate::{EntryRange, PotentialError, PotentialTable, Result};

impl PotentialTable {
    /// **Max-marginalization**: `dst[s] = max over clique states
    /// projecting to s` — the max-product counterpart of
    /// [`PotentialTable::marginalize`].
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `target` ⊄ this domain.
    pub fn max_marginalize(&self, target: &crate::Domain) -> Result<PotentialTable> {
        let mut out = PotentialTable::zeros(target.clone());
        self.max_marginalize_range_into(EntryRange::full(self.len()), &mut out)?;
        Ok(out)
    }

    /// Range-partitioned max-marginalization: folds the source entries in
    /// `range` into `out` with elementwise `max`. Partials from disjoint
    /// ranges combine with [`PotentialTable::max_assign`]. `out` should
    /// start at zero (the identity for non-negative potentials).
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `out`'s domain ⊄ this domain;
    /// [`PotentialError::BadRange`] for an out-of-bounds range.
    pub fn max_marginalize_range_into(
        &self,
        range: EntryRange,
        out: &mut PotentialTable,
    ) -> Result<()> {
        let (dst_domain, dst) = out.parts_mut();
        crate::raw::max_marginalize_range_into_raw(
            self.domain(),
            self.data(),
            range,
            dst_domain,
            dst,
        )
    }

    /// Elementwise maximum over identical domains; the combining step for
    /// partitioned max-marginalization subtasks.
    ///
    /// # Errors
    ///
    /// [`PotentialError::DataSizeMismatch`] if lengths differ.
    pub fn max_assign(&mut self, other: &PotentialTable) -> Result<()> {
        if self.len() != other.len() {
            return Err(PotentialError::DataSizeMismatch {
                expected: self.len(),
                found: other.len(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            if b > *a {
                *a = b;
            }
        }
        Ok(())
    }

    /// The flat index and value of the largest entry (first one on ties).
    pub fn argmax(&self) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, &v) in self.data().iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, VarId, Variable};

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn max_marginalize_small() {
        let t = PotentialTable::from_data(dom(&[(0, 2), (1, 3)]), vec![1., 7., 3., 4., 5., 6.])
            .unwrap();
        let onto_b = t.max_marginalize(&dom(&[(1, 3)])).unwrap();
        assert_eq!(onto_b.data(), &[4., 7., 6.]);
        let onto_a = t.max_marginalize(&dom(&[(0, 2)])).unwrap();
        assert_eq!(onto_a.data(), &[7., 6.]);
        let scalar = t.max_marginalize(&Domain::empty()).unwrap();
        assert_eq!(scalar.data(), &[7.]);
    }

    #[test]
    fn partitioned_max_matches_whole() {
        let t = PotentialTable::from_data(
            dom(&[(0, 2), (1, 2), (2, 2)]),
            vec![8., 1., 6., 2., 7., 3., 5., 4.],
        )
        .unwrap();
        let target = dom(&[(1, 2)]);
        let whole = t.max_marginalize(&target).unwrap();
        for chunk in 1..=5 {
            let mut acc = PotentialTable::zeros(target.clone());
            for r in EntryRange::split(t.len(), chunk) {
                let mut part = PotentialTable::zeros(target.clone());
                t.max_marginalize_range_into(r, &mut part).unwrap();
                acc.max_assign(&part).unwrap();
            }
            assert_eq!(acc.data(), whole.data(), "chunk {chunk}");
        }
    }

    #[test]
    fn argmax_finds_peak() {
        let t =
            PotentialTable::from_data(dom(&[(0, 2), (1, 2)]), vec![0.1, 0.9, 0.3, 0.2]).unwrap();
        assert_eq!(t.argmax(), (1, 0.9));
    }

    #[test]
    fn max_assign_requires_same_length() {
        let mut a = PotentialTable::ones(dom(&[(0, 2)]));
        let b = PotentialTable::ones(dom(&[(0, 3)]));
        assert!(a.max_assign(&b).is_err());
    }

    #[test]
    fn max_marginalize_bad_target_errors() {
        let t = PotentialTable::ones(dom(&[(0, 2)]));
        assert!(matches!(
            t.max_marginalize(&dom(&[(5, 2)])),
            Err(PotentialError::NotSubdomain { .. })
        ));
    }
}
