//! Raw-slice forms of the node-level primitives.
//!
//! The collaborative scheduler's Partition module (§6 of the paper) lets
//! several threads work on *disjoint entry ranges of the same
//! destination buffer* at once. Sound Rust for that pattern must never
//! materialize a `&mut PotentialTable` (or even a `&PotentialTable`) for
//! a buffer that another thread partially owns — a reference claims the
//! whole object. The functions here therefore operate on **domains plus
//! plain `f64` slices**: the scheduler derives each subtask's window
//! (`&mut [f64]` over exactly its [`EntryRange`]) from a raw base
//! pointer, and hands the *shape* of the buffer separately, straight
//! from the task graph's buffer specs.
//!
//! Conventions shared by every function:
//!
//! * `range` is an **absolute** half-open entry range of the partitioned
//!   buffer (the destination for divide/extend/multiply, the source for
//!   marginalization);
//! * `out` is a window of exactly `range.len()` entries, aliasing the
//!   partitioned buffer's `range.start..range.end` (or, for
//!   marginalization, the whole private/destination table);
//! * full source buffers are passed as complete slices — sources are
//!   never written concurrently (the task DAG orders writers), so shared
//!   slices over them are sound.
//!
//! The `PotentialTable` `*_range` methods are thin wrappers over these
//! functions, so the sequential engines and the partitioned scheduler
//! execute literally the same arithmetic.
//!
//! # Two interchangeable backends
//!
//! Each cross-domain kernel exists in two forms that compute
//! bit-identical results:
//!
//! * the **walker** form (`*_walker`), which derives the index mapping
//!   on the fly with an [`AxisWalker`] — always compiled, used as the
//!   differential-testing oracle; and
//! * the **planned** form, which compiles a [`KernelPlan`]
//!   (crate::plan::KernelPlan) and interprets it with slice-wise inner
//!   loops.
//!
//! The public entry points (`extend_range_into_raw`, …) interpret a
//! freshly compiled plan by default; building with the `plan-off`
//! feature routes them back through the walker so both paths can be
//! exercised by the full test suite. Hot paths (the scheduler) skip
//! these entry points entirely and interpret *cached* plans.
//!
//! # Canonical reduction order
//!
//! Both backends execute their inner loops through the runtime-
//! dispatched kernels in [`simd`](crate::simd), and every broadcast
//! reduction (a block of scan entries collapsing onto one separator
//! slot) follows **one fixed reduction-tree order**, defined by
//! [`sum_canonical`] and [`fold_max_canonical`] below. This is the
//! determinism contract that lets scalar, SSE2, AVX2 and
//! `portable-simd` kernels — and the walker and planned paths — produce
//! bit-identical tables; see the [`simd`](crate::simd) module docs for
//! the exact lane layout each backend uses to realize it.

use crate::index::AxisWalker;
#[cfg(not(feature = "plan-off"))]
use crate::plan::KernelPlan;
use crate::plan::PlanKind;
use crate::simd::{self, KernelBackend};
use crate::{Domain, EntryRange, PotentialError, Result};

fn check_range(range: EntryRange, len: usize) -> Result<()> {
    if range.start > range.end || range.end > len {
        return Err(PotentialError::BadRange {
            start: range.start,
            end: range.end,
            len,
        });
    }
    Ok(())
}

fn check_window(out: &[f64], range: EntryRange) -> Result<()> {
    if out.len() != range.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: range.len(),
            found: out.len(),
        });
    }
    Ok(())
}

fn check_subdomain(sub: &Domain, sup: &Domain) -> Result<()> {
    for v in sub.vars() {
        if !sup.contains(v.id()) {
            return Err(PotentialError::NotSubdomain { missing: v.id() });
        }
    }
    Ok(())
}

/// The **canonical sum order**: the scalar reference every kernel
/// backend must reproduce bit-for-bit.
///
/// With `chunks = xs.len() / 4`, lane `j ∈ 0..4` accumulates
/// `xs[4k + j]` for `k = 0..chunks` left to right; the lanes combine as
/// `(l0 + l2) + (l1 + l3)`; the `len % 4` tail entries then add in
/// sequentially. The total starts from `0.0` — callers fold it into
/// their own accumulator (see [`reduce_add_into`]).
pub fn sum_canonical(xs: &[f64]) -> f64 {
    let mut it = xs.chunks_exact(4);
    let mut total = 0.0;
    if it.len() > 0 {
        let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0, 0.0, 0.0);
        for c in it.by_ref() {
            l0 += c[0];
            l1 += c[1];
            l2 += c[2];
            l3 += c[3];
        }
        total = (l0 + l2) + (l1 + l3);
    }
    for &x in it.remainder() {
        total += x;
    }
    total
}

/// The **canonical max order**: folds `xs` into `init` with the same
/// 4-lane tree as [`sum_canonical`], using the select
/// `if x > m { m = x }` everywhere — on ties (`+0.0` vs `-0.0`) and
/// NaNs the accumulator is kept, exactly the `maxpd` second-operand
/// rule the intrinsic backends inherit.
pub fn fold_max_canonical(init: f64, xs: &[f64]) -> f64 {
    let mut it = xs.chunks_exact(4);
    let mut acc = init;
    if it.len() > 0 {
        let first = it.next().expect("non-empty chunks");
        let (mut m0, mut m1, mut m2, mut m3) = (first[0], first[1], first[2], first[3]);
        for c in it.by_ref() {
            if c[0] > m0 {
                m0 = c[0];
            }
            if c[1] > m1 {
                m1 = c[1];
            }
            if c[2] > m2 {
                m2 = c[2];
            }
            if c[3] > m3 {
                m3 = c[3];
            }
        }
        let t0 = if m0 > m2 { m0 } else { m2 };
        let t1 = if m1 > m3 { m1 } else { m3 };
        let block = if t0 > t1 { t0 } else { t1 };
        if block > acc {
            acc = block;
        }
    }
    for &x in it.remainder() {
        if x > acc {
            acc = x;
        }
    }
    acc
}

/// Folds one broadcast block into its destination slot with the
/// canonical sum order on the given backend. The single-entry fast
/// path (`δ = 1` plans) is shared here so every backend performs the
/// identical `+=` (not `+= (0.0 + x)`, which differs for `-0.0`).
#[inline]
pub fn reduce_add_into(be: KernelBackend, slot: &mut f64, xs: &[f64]) {
    if let [x] = xs {
        *slot += *x;
    } else {
        *slot += be.sum(xs);
    }
}

/// Folds one broadcast block into its destination slot with the
/// canonical max order on the given backend.
#[inline]
pub fn reduce_max_into(be: KernelBackend, slot: &mut f64, xs: &[f64]) {
    *slot = be.fold_max(*slot, xs);
}

/// **Division** over a destination window: `out[i] =
/// num[range.start + i] / den[range.start + i]` with the Hugin
/// convention `0/0 = 0`. `num` and `den` are full same-domain buffers
/// (domains are checked upstream by the task-graph builder; here only
/// lengths can be validated).
///
/// # Errors
///
/// [`PotentialError::BadRange`] if `range` exceeds `num`;
/// [`PotentialError::DataSizeMismatch`] if `den` and `num` disagree on
/// length or `out` is not exactly `range.len()` entries.
pub fn divide_range_into(
    num: &[f64],
    den: &[f64],
    range: EntryRange,
    out: &mut [f64],
) -> Result<()> {
    check_range(range, num.len())?;
    if den.len() != num.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: num.len(),
            found: den.len(),
        });
    }
    check_window(out, range)?;
    let nm = &num[range.start..range.end];
    let dn = &den[range.start..range.end];
    simd::active().div_into(nm, dn, out);
    Ok(())
}

/// **Extension** into a destination window: fills `out` (aliasing
/// `range` of a buffer over `dst_domain`) with the replicated source
/// table (`src` over `src_domain`, a subdomain of `dst_domain`).
///
/// # Errors
///
/// [`PotentialError::NotSubdomain`] if `src_domain` ⊄ `dst_domain`;
/// [`PotentialError::BadRange`] if `range` exceeds `dst_domain.size()`;
/// [`PotentialError::DataSizeMismatch`] on a wrong-length slice.
pub fn extend_range_into_raw(
    src_domain: &Domain,
    src: &[f64],
    dst_domain: &Domain,
    range: EntryRange,
    out: &mut [f64],
) -> Result<()> {
    #[cfg(not(feature = "plan-off"))]
    {
        let plan = KernelPlan::compile(dst_domain, src_domain, range)?;
        plan.extend_into(src, out)
    }
    #[cfg(feature = "plan-off")]
    extend_range_into_walker(src_domain, src, dst_domain, range, out)
}

/// Walker form of [`extend_range_into_raw`]: same contract, index map
/// derived per call with an [`AxisWalker`].
///
/// # Errors
///
/// Same conditions as [`extend_range_into_raw`].
pub fn extend_range_into_walker(
    src_domain: &Domain,
    src: &[f64],
    dst_domain: &Domain,
    range: EntryRange,
    out: &mut [f64],
) -> Result<()> {
    check_subdomain(src_domain, dst_domain)?;
    check_range(range, dst_domain.size())?;
    check_window(out, range)?;
    if src.len() != src_domain.size() {
        return Err(PotentialError::DataSizeMismatch {
            expected: src_domain.size(),
            found: src.len(),
        });
    }
    let mut w = AxisWalker::new(dst_domain, dst_domain.strides_in(src_domain));
    w.seek(dst_domain, range.start);
    for slot in out.iter_mut() {
        *slot = src[w.target_index()];
        w.advance();
    }
    Ok(())
}

/// **Multiplication** over a destination window: `out[i] *=
/// src[project(range.start + i)]`, where `src` (over `src_domain`, a
/// subdomain of `dst_domain`) is projected onto each destination entry.
///
/// # Errors
///
/// Same conditions as [`extend_range_into_raw`].
pub fn multiply_range_into(
    src_domain: &Domain,
    src: &[f64],
    dst_domain: &Domain,
    range: EntryRange,
    out: &mut [f64],
) -> Result<()> {
    #[cfg(not(feature = "plan-off"))]
    {
        let plan = KernelPlan::compile(dst_domain, src_domain, range)?;
        plan.multiply_into(src, out)
    }
    #[cfg(feature = "plan-off")]
    multiply_range_into_walker(src_domain, src, dst_domain, range, out)
}

/// Walker form of [`multiply_range_into`]: same contract, index map
/// derived per call with an [`AxisWalker`].
///
/// # Errors
///
/// Same conditions as [`multiply_range_into`].
pub fn multiply_range_into_walker(
    src_domain: &Domain,
    src: &[f64],
    dst_domain: &Domain,
    range: EntryRange,
    out: &mut [f64],
) -> Result<()> {
    check_subdomain(src_domain, dst_domain)?;
    check_range(range, dst_domain.size())?;
    check_window(out, range)?;
    if src.len() != src_domain.size() {
        return Err(PotentialError::DataSizeMismatch {
            expected: src_domain.size(),
            found: src.len(),
        });
    }
    let mut w = AxisWalker::new(dst_domain, dst_domain.strides_in(src_domain));
    w.seek(dst_domain, range.start);
    for slot in out.iter_mut() {
        *slot *= src[w.target_index()];
        w.advance();
    }
    Ok(())
}

/// **Marginalization** of a source range: accumulates (`+=`) the source
/// entries in `range` of `src` (over `src_domain`) into the full
/// destination table `dst` (over `dst_domain` ⊆ `src_domain`). The
/// caller zeroes `dst` beforehand; partials from disjoint ranges add to
/// the complete marginal.
///
/// # Errors
///
/// [`PotentialError::NotSubdomain`] if `dst_domain` ⊄ `src_domain`;
/// [`PotentialError::BadRange`] if `range` exceeds `src`;
/// [`PotentialError::DataSizeMismatch`] on a wrong-length slice.
pub fn marginalize_range_into_raw(
    src_domain: &Domain,
    src: &[f64],
    range: EntryRange,
    dst_domain: &Domain,
    dst: &mut [f64],
) -> Result<()> {
    #[cfg(not(feature = "plan-off"))]
    {
        let plan = KernelPlan::compile(src_domain, dst_domain, range)?;
        plan.marginalize_sum_into(src, dst)
    }
    #[cfg(feature = "plan-off")]
    marginalize_range_into_walker(src_domain, src, range, dst_domain, dst)
}

/// Walker form of [`marginalize_range_into_raw`]: same contract, index
/// map derived per call with an [`AxisWalker`].
///
/// The walker decomposes the range into the same maximal uniform-suffix
/// blocks [`KernelPlan`](crate::KernelPlan) compiles to (seeking the
/// walker once per block instead of advancing per entry), so that its
/// broadcast reductions run the identical canonical-order kernels and
/// stay a bitwise oracle for the planned path.
///
/// # Errors
///
/// Same conditions as [`marginalize_range_into_raw`].
pub fn marginalize_range_into_walker(
    src_domain: &Domain,
    src: &[f64],
    range: EntryRange,
    dst_domain: &Domain,
    dst: &mut [f64],
) -> Result<()> {
    check_subdomain(dst_domain, src_domain)?;
    check_range(range, src.len())?;
    if src.len() != src_domain.size() || dst.len() != dst_domain.size() {
        return Err(PotentialError::DataSizeMismatch {
            expected: src_domain.size(),
            found: src.len(),
        });
    }
    let tstrides = src_domain.strides_in(dst_domain);
    let (block, kind) = crate::plan::uniform_suffix_block(src_domain, &tstrides);
    let be = simd::active();
    let mut w = AxisWalker::new(src_domain, tstrides);
    let mut pos = range.start;
    while pos < range.end {
        let len = (pos - pos % block + block).min(range.end) - pos;
        w.seek(src_domain, pos);
        let base = w.target_index();
        match kind {
            PlanKind::Contig => be.add_assign(&mut dst[base..base + len], &src[pos..pos + len]),
            PlanKind::Broadcast => reduce_add_into(be, &mut dst[base], &src[pos..pos + len]),
        }
        pos += len;
    }
    Ok(())
}

/// Max-marginalization of a source range: like
/// [`marginalize_range_into_raw`] but folding with elementwise `max`
/// instead of `+` (the max-product algebra of MPE propagation). `dst`
/// should start at zero, the identity for non-negative potentials.
///
/// # Errors
///
/// Same conditions as [`marginalize_range_into_raw`].
pub fn max_marginalize_range_into_raw(
    src_domain: &Domain,
    src: &[f64],
    range: EntryRange,
    dst_domain: &Domain,
    dst: &mut [f64],
) -> Result<()> {
    #[cfg(not(feature = "plan-off"))]
    {
        let plan = KernelPlan::compile(src_domain, dst_domain, range)?;
        plan.marginalize_max_into(src, dst)
    }
    #[cfg(feature = "plan-off")]
    max_marginalize_range_into_walker(src_domain, src, range, dst_domain, dst)
}

/// Walker form of [`max_marginalize_range_into_raw`]: same contract,
/// index map derived per call with an [`AxisWalker`]. Decomposes into
/// canonical blocks like [`marginalize_range_into_walker`].
///
/// # Errors
///
/// Same conditions as [`max_marginalize_range_into_raw`].
pub fn max_marginalize_range_into_walker(
    src_domain: &Domain,
    src: &[f64],
    range: EntryRange,
    dst_domain: &Domain,
    dst: &mut [f64],
) -> Result<()> {
    check_subdomain(dst_domain, src_domain)?;
    check_range(range, src.len())?;
    if src.len() != src_domain.size() || dst.len() != dst_domain.size() {
        return Err(PotentialError::DataSizeMismatch {
            expected: src_domain.size(),
            found: src.len(),
        });
    }
    let tstrides = src_domain.strides_in(dst_domain);
    let (block, kind) = crate::plan::uniform_suffix_block(src_domain, &tstrides);
    let be = simd::active();
    let mut w = AxisWalker::new(src_domain, tstrides);
    let mut pos = range.start;
    while pos < range.end {
        let len = (pos - pos % block + block).min(range.end) - pos;
        w.seek(src_domain, pos);
        let base = w.target_index();
        match kind {
            PlanKind::Contig => be.max_assign(&mut dst[base..base + len], &src[pos..pos + len]),
            PlanKind::Broadcast => reduce_max_into(be, &mut dst[base], &src[pos..pos + len]),
        }
        pos += len;
    }
    Ok(())
}

/// Entrywise `dst[i] += src[i]` — the sum-product combining step for
/// partitioned marginalization partials, on raw slices.
///
/// # Errors
///
/// [`PotentialError::DataSizeMismatch`] if lengths differ.
pub fn add_assign_raw(dst: &mut [f64], src: &[f64]) -> Result<()> {
    if dst.len() != src.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: dst.len(),
            found: src.len(),
        });
    }
    simd::active().add_assign(dst, src);
    Ok(())
}

/// Entrywise `dst[i] = max(dst[i], src[i])` — the max-product combining
/// step for partitioned max-marginalization partials, on raw slices.
///
/// # Errors
///
/// [`PotentialError::DataSizeMismatch`] if lengths differ.
pub fn max_assign_raw(dst: &mut [f64], src: &[f64]) -> Result<()> {
    if dst.len() != src.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: dst.len(),
            found: src.len(),
        });
    }
    simd::active().max_assign(dst, src);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PotentialTable, VarId, Variable};

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    fn table(spec: &[(u32, usize)], data: Vec<f64>) -> PotentialTable {
        PotentialTable::from_data(dom(spec), data).unwrap()
    }

    #[test]
    fn divide_windows_match_whole() {
        let num = table(&[(0, 2), (1, 2)], vec![1., 4., 0., 9.]);
        let den = table(&[(0, 2), (1, 2)], vec![2., 2., 0., 3.]);
        let mut whole = num.clone();
        whole.divide_assign(&den).unwrap();
        let mut pieced = vec![0.0; num.len()];
        for r in EntryRange::split(num.len(), 3) {
            divide_range_into(num.data(), den.data(), r, &mut pieced[r.start..r.end]).unwrap();
        }
        assert_eq!(pieced, whole.data());
    }

    #[test]
    fn extend_windows_match_whole() {
        let sep = table(&[(2, 2)], vec![7., 9.]);
        let target = dom(&[(0, 2), (2, 2)]);
        let whole = sep.extend(&target).unwrap();
        let mut pieced = vec![0.0; target.size()];
        for r in EntryRange::split(target.size(), 3) {
            extend_range_into_raw(
                sep.domain(),
                sep.data(),
                &target,
                r,
                &mut pieced[r.start..r.end],
            )
            .unwrap();
        }
        assert_eq!(pieced, whole.data());
    }

    #[test]
    fn multiply_windows_match_whole() {
        let base = table(&[(0, 2), (1, 2), (2, 2)], (1..=8).map(f64::from).collect());
        let factor = table(&[(0, 2), (2, 2)], vec![2., 3., 5., 7.]);
        let mut whole = base.clone();
        whole.multiply_assign(&factor).unwrap();
        let mut pieced = base.data().to_vec();
        for r in EntryRange::split(base.len(), 3) {
            multiply_range_into(
                factor.domain(),
                factor.data(),
                base.domain(),
                r,
                &mut pieced[r.start..r.end],
            )
            .unwrap();
        }
        assert_eq!(pieced, whole.data());
    }

    #[test]
    fn marginalize_raw_partials_add_to_whole() {
        let t = table(&[(0, 2), (1, 2), (2, 2)], (1..=8).map(f64::from).collect());
        let target = dom(&[(1, 2)]);
        let whole = t.marginalize(&target).unwrap();
        let mut acc = vec![0.0; target.size()];
        for r in EntryRange::split(t.len(), 3) {
            let mut part = vec![0.0; target.size()];
            marginalize_range_into_raw(t.domain(), t.data(), r, &target, &mut part).unwrap();
            add_assign_raw(&mut acc, &part).unwrap();
        }
        assert_eq!(acc, whole.data());
    }

    #[test]
    fn max_marginalize_raw_partials_max_to_whole() {
        let t = table(
            &[(0, 2), (1, 2), (2, 2)],
            vec![8., 1., 6., 2., 7., 3., 5., 4.],
        );
        let target = dom(&[(1, 2)]);
        let whole = t.max_marginalize(&target).unwrap();
        let mut acc = vec![0.0; target.size()];
        for r in EntryRange::split(t.len(), 3) {
            let mut part = vec![0.0; target.size()];
            max_marginalize_range_into_raw(t.domain(), t.data(), r, &target, &mut part).unwrap();
            max_assign_raw(&mut acc, &part).unwrap();
        }
        assert_eq!(acc, whole.data());
    }

    #[test]
    fn window_length_is_validated() {
        let num = [1.0, 2.0];
        let den = [1.0, 1.0];
        let mut out = [0.0; 3]; // wrong: range covers 2 entries
        let err = divide_range_into(&num, &den, EntryRange { start: 0, end: 2 }, &mut out);
        assert!(matches!(err, Err(PotentialError::DataSizeMismatch { .. })));
    }

    #[test]
    fn bad_ranges_are_rejected() {
        let d = dom(&[(0, 2)]);
        let src = [1.0, 2.0];
        let mut out = [0.0; 3];
        let err = extend_range_into_raw(&d, &src, &d, EntryRange { start: 0, end: 3 }, &mut out);
        assert!(matches!(err, Err(PotentialError::BadRange { .. })));
        let err =
            marginalize_range_into_raw(&d, &src, EntryRange { start: 1, end: 0 }, &d, &mut out);
        assert!(matches!(err, Err(PotentialError::BadRange { .. })));
    }

    #[test]
    fn not_subdomain_is_rejected() {
        let big = dom(&[(0, 2)]);
        let other = dom(&[(5, 2)]);
        let src = [1.0, 2.0];
        let mut out = [0.0, 0.0];
        let err = multiply_range_into(&other, &src, &big, EntryRange::full(2), &mut out);
        assert!(matches!(err, Err(PotentialError::NotSubdomain { .. })));
    }
}
