//! Compiled kernel plans: precomputed index-map programs for the
//! cross-domain primitives.
//!
//! The walker kernels in [`raw`](crate::raw) re-derive the mixed-radix
//! mapping between a clique domain and a separator domain on **every
//! call** via [`AxisWalker`](crate::AxisWalker), even though the
//! domains — and, for the partitioned scheduler, the δ-ranges — are
//! fixed once the junction tree is compiled. A [`KernelPlan`] hoists
//! that address computation out of the hot loop: it is compiled once
//! per (scan-domain, target-domain, entry-range) triple and then
//! interpreted with plain slice arithmetic.
//!
//! # Shape of a plan
//!
//! Every cross-domain primitive walks one table linearly (the **scan**
//! side: the source for marginalization, the destination for extension
//! and multiplication) while projecting each entry onto a subdomain
//! table (the **target** side). Because domains are sorted by
//! [`VarId`](crate::VarId) and the target is a subdomain of the scan
//! domain, the maximal suffix of scan axes is either
//!
//! * entirely **inside** the target — then it is exactly the target's
//!   own trailing axes, its innermost stride is 1, and consecutive scan
//!   entries map to *consecutive* target entries
//!   ([`PlanKind::Contig`]); or
//! * entirely **absent** from the target — then the target index is
//!   *constant* across the whole block ([`PlanKind::Broadcast`]).
//!
//! Either way the scan side decomposes into fixed-size blocks, and a
//! plan is just the flattened run-length list of `(target_base, len)`
//! segments covering its entry range, with partial head/tail segments
//! where the range cuts a block. The interpreter's inner loop is
//! `for i in 0..len { dst[d + i] op= src[s + i] }` (or a `fill`/
//! reduction for broadcast blocks) — no per-entry odometer, and a shape
//! the compiler autovectorizes.
//!
//! # Determinism
//!
//! Plan interpretation performs bit-for-bit the same floating-point
//! operations in the same order as the walker kernels: both execute
//! their inner loops through the runtime-dispatched kernels in
//! [`simd`](crate::simd), and every broadcast reduction follows the
//! **canonical reduction-tree order** defined by
//! [`raw::sum_canonical`](crate::raw::sum_canonical) /
//! [`raw::fold_max_canonical`](crate::raw::fold_max_canonical) — a
//! fixed 4-lane tree plus sequential tail, realized identically by the
//! scalar, SSE2, AVX2 and `portable-simd` backends. The block sum is
//! accumulated from `0.0` and then added onto the destination slot, so
//! results are a function of the plan's segment geometry (hence of δ)
//! but of *nothing else*: not the thread count, not the schedule, not
//! the chosen backend. The property tests in `tests/prop_plans.rs` and
//! the unit suite below assert bitwise equality against the walker path
//! and across kernel backends.

use crate::simd::{self, KernelBackend};
use crate::{AxisWalker, Domain, EntryRange, PotentialError, Result};

/// How consecutive scan entries within a block map onto the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// The scan domain's trailing axes are inside the target: a block
    /// of consecutive scan entries maps to consecutive target entries.
    Contig,
    /// The scan domain's trailing axes are absent from the target: a
    /// block of consecutive scan entries maps to one target entry.
    Broadcast,
}

/// One run-length segment of a plan: `len` consecutive scan entries
/// whose target indices start at `target_base` (and either advance by
/// one per entry or stay fixed, per [`PlanKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Target index of the segment's first scan entry.
    pub target_base: usize,
    /// Number of scan entries the segment covers.
    pub len: usize,
}

/// A compiled index-map program for one (scan-domain, target-domain,
/// entry-range) triple. See the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlan {
    kind: PlanKind,
    range: EntryRange,
    scan_len: usize,
    target_len: usize,
    segs: Vec<Segment>,
}

/// Computes the canonical block decomposition of `scan` relative to
/// `tstrides` (its per-axis strides in the target domain, zero for
/// absent axes): the maximal uniform suffix — all-present (contiguous
/// target) or all-absent (constant target) — as a block length plus
/// the [`PlanKind`]. An empty scan domain (size 1) degenerates to a
/// single contiguous block.
///
/// Shared by [`KernelPlan::compile`] and the walker kernels in
/// [`raw`](crate::raw), so both paths cut ranges into *identical*
/// blocks and hand identical slices to the reduction kernels — a
/// precondition of the bitwise walker-vs-plan oracle tests.
pub(crate) fn uniform_suffix_block(scan: &Domain, tstrides: &[usize]) -> (usize, PlanKind) {
    let width = scan.width();
    let last_present = width > 0 && tstrides[width - 1] != 0;
    let kind = if width == 0 || last_present {
        PlanKind::Contig
    } else {
        PlanKind::Broadcast
    };
    let mut block = 1usize;
    for pos in (0..width).rev() {
        let present = tstrides[pos] != 0;
        if present != last_present {
            break;
        }
        block *= scan.vars()[pos].cardinality();
    }
    (block, kind)
}

impl KernelPlan {
    /// Compiles the plan mapping `range` of a table over `scan` onto a
    /// table over `target`.
    ///
    /// `scan` is the linearly-walked superdomain (marginalization
    /// source; extension/multiplication destination) and `target` the
    /// projected subdomain. Compilation is `O(width · range.len() /
    /// block)` — segments, not entries.
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `target` ⊄ `scan`;
    /// [`PotentialError::BadRange`] if `range` exceeds `scan.size()`.
    pub fn compile(scan: &Domain, target: &Domain, range: EntryRange) -> Result<Self> {
        for v in target.vars() {
            if !scan.contains(v.id()) {
                return Err(PotentialError::NotSubdomain { missing: v.id() });
            }
        }
        if range.start > range.end || range.end > scan.size() {
            return Err(PotentialError::BadRange {
                start: range.start,
                end: range.end,
                len: scan.size(),
            });
        }

        let tstrides = scan.strides_in(target);
        let (block, kind) = uniform_suffix_block(scan, &tstrides);

        let mut segs: Vec<Segment> = Vec::new();
        if !range.is_empty() {
            let mut w = AxisWalker::new(scan, tstrides);
            let mut pos = range.start;
            while pos < range.end {
                let boundary = pos - pos % block + block;
                let len = boundary.min(range.end) - pos;
                w.seek(scan, pos);
                let base = w.target_index();
                match segs.last_mut() {
                    // Contiguous runs that continue across a block
                    // boundary fuse into one longer segment.
                    Some(prev)
                        if kind == PlanKind::Contig && prev.target_base + prev.len == base =>
                    {
                        prev.len += len;
                    }
                    _ => segs.push(Segment {
                        target_base: base,
                        len,
                    }),
                }
                pos += len;
            }
        }

        Ok(Self {
            kind,
            range,
            scan_len: scan.size(),
            target_len: target.size(),
            segs,
        })
    }

    /// The block mapping kind.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// The scan-side entry range this plan covers.
    pub fn range(&self) -> EntryRange {
        self.range
    }

    /// The run-length segments, in scan order.
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Inner-loop operation count: one op per scan entry in the range.
    ///
    /// This is what the scheduler uses as a subtask's weight — derived
    /// from the plan rather than re-proxied from table sizes, and equal
    /// to the partitionable table's range length so that cost-model
    /// calibrations (and the simulator's figures) are unchanged.
    pub fn ops(&self) -> u64 {
        self.range.len() as u64
    }

    /// Memory footprint of this compiled program in bytes: the struct
    /// itself plus its heap-allocated segment list. Backs the model
    /// registry's resident-byte accounting.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.segs.len() * std::mem::size_of::<Segment>()
    }

    fn check_scan(&self, len: usize) -> Result<()> {
        if len != self.scan_len {
            return Err(PotentialError::DataSizeMismatch {
                expected: self.scan_len,
                found: len,
            });
        }
        Ok(())
    }

    fn check_target(&self, len: usize) -> Result<()> {
        if len != self.target_len {
            return Err(PotentialError::DataSizeMismatch {
                expected: self.target_len,
                found: len,
            });
        }
        Ok(())
    }

    fn check_window(&self, len: usize) -> Result<()> {
        if len != self.range.len() {
            return Err(PotentialError::DataSizeMismatch {
                expected: self.range.len(),
                found: len,
            });
        }
        Ok(())
    }

    /// Sum-marginalization: accumulates `src[range]` (full scan-domain
    /// slice) into the full target table `dst` (the caller zeroes `dst`
    /// before the first partial). Contiguous segments do one `+=` per
    /// entry; broadcast segments reduce in the canonical order (see the
    /// [module docs](self)) and add the block sum onto the slot. Runs
    /// on the process-wide [`simd::active`] backend.
    ///
    /// # Errors
    ///
    /// [`PotentialError::DataSizeMismatch`] if `src` is not the scan
    /// table or `dst` not the target table.
    pub fn marginalize_sum_into(&self, src: &[f64], dst: &mut [f64]) -> Result<()> {
        self.marginalize_sum_into_on(simd::active(), src, dst)
    }

    /// [`marginalize_sum_into`](Self::marginalize_sum_into) on an
    /// explicit kernel backend — the differential-testing hook behind
    /// the cross-backend bit-identity suite. All backends produce
    /// identical bits, so this is never needed for correctness.
    pub fn marginalize_sum_into_on(
        &self,
        be: KernelBackend,
        src: &[f64],
        dst: &mut [f64],
    ) -> Result<()> {
        self.check_scan(src.len())?;
        self.check_target(dst.len())?;
        // One fused backend call per plan execution: the segment loop
        // runs inside the feature-enabled kernel (see `simd`).
        let win = &src[self.range.start..self.range.end];
        match self.kind {
            PlanKind::Contig => be.marg_sum_contig(&self.segs, win, dst),
            PlanKind::Broadcast => be.marg_sum_broadcast(&self.segs, win, dst),
        }
        Ok(())
    }

    /// Max-marginalization: like [`marginalize_sum_into`]
    /// (Self::marginalize_sum_into) but folding with elementwise `max`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::marginalize_sum_into`].
    pub fn marginalize_max_into(&self, src: &[f64], dst: &mut [f64]) -> Result<()> {
        self.marginalize_max_into_on(simd::active(), src, dst)
    }

    /// [`marginalize_max_into`](Self::marginalize_max_into) on an
    /// explicit kernel backend (differential-testing hook).
    pub fn marginalize_max_into_on(
        &self,
        be: KernelBackend,
        src: &[f64],
        dst: &mut [f64],
    ) -> Result<()> {
        self.check_scan(src.len())?;
        self.check_target(dst.len())?;
        let win = &src[self.range.start..self.range.end];
        match self.kind {
            PlanKind::Contig => be.marg_max_contig(&self.segs, win, dst),
            PlanKind::Broadcast => be.marg_max_broadcast(&self.segs, win, dst),
        }
        Ok(())
    }

    /// Extension: fills `out` (window aliasing `range` of the
    /// scan-domain destination) with the replicated target-domain
    /// source `src`.
    ///
    /// # Errors
    ///
    /// [`PotentialError::DataSizeMismatch`] if `src` is not the target
    /// table or `out` is not exactly `range.len()` entries.
    pub fn extend_into(&self, src: &[f64], out: &mut [f64]) -> Result<()> {
        self.check_target(src.len())?;
        self.check_window(out.len())?;
        let mut pos = 0usize;
        match self.kind {
            PlanKind::Contig => {
                for seg in &self.segs {
                    out[pos..pos + seg.len]
                        .copy_from_slice(&src[seg.target_base..seg.target_base + seg.len]);
                    pos += seg.len;
                }
            }
            PlanKind::Broadcast => {
                for seg in &self.segs {
                    out[pos..pos + seg.len].fill(src[seg.target_base]);
                    pos += seg.len;
                }
            }
        }
        Ok(())
    }

    /// Multiplication: `out[i] *= src[project(range.start + i)]` where
    /// `out` aliases `range` of the scan-domain destination and `src`
    /// is the full target-domain factor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::extend_into`].
    pub fn multiply_into(&self, src: &[f64], out: &mut [f64]) -> Result<()> {
        self.check_target(src.len())?;
        self.check_window(out.len())?;
        let be = simd::active();
        match self.kind {
            PlanKind::Contig => be.mul_contig(&self.segs, src, out),
            PlanKind::Broadcast => be.mul_broadcast(&self.segs, src, out),
        }
        Ok(())
    }
}

/// Division over a destination window. Division never crosses domains
/// (numerator, denominator and destination share one separator domain),
/// so its "plan" is the identity map and it stays a free function:
/// `out[i] = num[range.start + i] / den[range.start + i]` with the
/// Hugin convention `0/0 = 0`.
///
/// # Errors
///
/// Same conditions as [`raw::divide_range_into`]
/// (crate::raw::divide_range_into), which is its walker twin.
pub fn divide_planned(num: &[f64], den: &[f64], range: EntryRange, out: &mut [f64]) -> Result<()> {
    if range.start > range.end || range.end > num.len() {
        return Err(PotentialError::BadRange {
            start: range.start,
            end: range.end,
            len: num.len(),
        });
    }
    if den.len() != num.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: num.len(),
            found: den.len(),
        });
    }
    if out.len() != range.len() {
        return Err(PotentialError::DataSizeMismatch {
            expected: range.len(),
            found: out.len(),
        });
    }
    let nm = &num[range.start..range.end];
    let dn = &den[range.start..range.end];
    simd::active().div_into(nm, dn, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw;
    use crate::{VarId, Variable};

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    /// Deterministic pseudo-random fill (no RNG dep in the lib tests).
    fn fill(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                ((x >> 33) % 997) as f64 / 31.0
            })
            .collect()
    }

    /// The (scan, target) pairs the junction-tree builder actually
    /// produces: sorted domains with target ⊆ scan, including the
    /// degenerate all/none/empty projections.
    fn cases() -> Vec<(Domain, Domain)> {
        let scan = dom(&[(0, 2), (1, 3), (2, 2), (3, 4)]);
        let subsets: &[&[u32]] = &[
            &[],
            &[0],
            &[3],
            &[0, 1],
            &[0, 3],
            &[1, 2],
            &[2, 3],
            &[0, 1, 2],
            &[1, 2, 3],
            &[0, 1, 2, 3],
        ];
        let mut out: Vec<(Domain, Domain)> = subsets
            .iter()
            .map(|ids| {
                (
                    scan.clone(),
                    scan.project(ids.iter().map(|&i| VarId(i)).collect::<Vec<_>>().as_slice()),
                )
            })
            .collect();
        let tiny = dom(&[(7, 2)]);
        out.push((tiny.clone(), tiny.clone()));
        out.push((tiny.clone(), dom(&[])));
        out.push((dom(&[]), dom(&[])));
        out
    }

    fn ranges(len: usize) -> Vec<EntryRange> {
        let mut rs = vec![EntryRange::full(len)];
        for chunk in [1usize, 3, 7] {
            rs.extend(EntryRange::split(len, chunk));
        }
        if len > 2 {
            rs.push(EntryRange {
                start: 1,
                end: len - 1,
            });
        }
        rs.push(EntryRange { start: 0, end: 0 });
        rs
    }

    #[test]
    fn whole_domain_projection_is_one_contig_segment() {
        let d = dom(&[(0, 2), (1, 3)]);
        let p = KernelPlan::compile(&d, &d, EntryRange::full(6)).unwrap();
        assert_eq!(p.kind(), PlanKind::Contig);
        assert_eq!(
            p.segments(),
            &[Segment {
                target_base: 0,
                len: 6
            }]
        );
        assert_eq!(p.ops(), 6);
    }

    #[test]
    fn empty_target_is_one_broadcast_block() {
        let d = dom(&[(0, 2), (1, 3)]);
        let p = KernelPlan::compile(&d, &dom(&[]), EntryRange::full(6)).unwrap();
        assert_eq!(p.kind(), PlanKind::Broadcast);
        assert_eq!(
            p.segments(),
            &[Segment {
                target_base: 0,
                len: 6
            }]
        );
    }

    #[test]
    fn trailing_axis_present_gives_contig_blocks() {
        // scan [a, b], target [b]: every a-slice is one contiguous run
        // over the whole target, so the runs fuse per a-value but reset
        // at each (they all start at base 0 — no fusing across).
        let scan = dom(&[(0, 2), (1, 3)]);
        let target = dom(&[(1, 3)]);
        let p = KernelPlan::compile(&scan, &target, EntryRange::full(6)).unwrap();
        assert_eq!(p.kind(), PlanKind::Contig);
        assert_eq!(
            p.segments(),
            &[
                Segment {
                    target_base: 0,
                    len: 3
                },
                Segment {
                    target_base: 0,
                    len: 3
                }
            ]
        );
    }

    #[test]
    fn trailing_axis_absent_gives_broadcast_blocks() {
        // scan [a, b], target [a]: each a-value's b-run collapses onto
        // one target slot.
        let scan = dom(&[(0, 2), (1, 3)]);
        let target = dom(&[(0, 2)]);
        let p = KernelPlan::compile(&scan, &target, EntryRange::full(6)).unwrap();
        assert_eq!(p.kind(), PlanKind::Broadcast);
        assert_eq!(
            p.segments(),
            &[
                Segment {
                    target_base: 0,
                    len: 3
                },
                Segment {
                    target_base: 1,
                    len: 3
                }
            ]
        );
    }

    #[test]
    fn partial_ranges_cut_blocks() {
        let scan = dom(&[(0, 2), (1, 3)]);
        let target = dom(&[(0, 2)]);
        let p = KernelPlan::compile(&scan, &target, EntryRange { start: 2, end: 4 }).unwrap();
        assert_eq!(
            p.segments(),
            &[
                Segment {
                    target_base: 0,
                    len: 1
                },
                Segment {
                    target_base: 1,
                    len: 1
                }
            ]
        );
        assert_eq!(p.ops(), 2);
    }

    #[test]
    fn compile_rejects_bad_inputs() {
        let scan = dom(&[(0, 2)]);
        let err = KernelPlan::compile(&scan, &dom(&[(9, 2)]), EntryRange::full(2));
        assert!(matches!(err, Err(PotentialError::NotSubdomain { .. })));
        let err = KernelPlan::compile(&scan, &scan, EntryRange { start: 0, end: 3 });
        assert!(matches!(err, Err(PotentialError::BadRange { .. })));
    }

    #[test]
    fn apply_rejects_wrong_lengths() {
        let scan = dom(&[(0, 2), (1, 2)]);
        let target = dom(&[(1, 2)]);
        let p = KernelPlan::compile(&scan, &target, EntryRange::full(4)).unwrap();
        let src = fill(4, 1);
        let mut short = vec![0.0; 1];
        assert!(matches!(
            p.marginalize_sum_into(&src, &mut short),
            Err(PotentialError::DataSizeMismatch { .. })
        ));
        let mut out = vec![0.0; 3]; // window must be exactly range.len()
        assert!(matches!(
            p.extend_into(&fill(2, 2), &mut out),
            Err(PotentialError::DataSizeMismatch { .. })
        ));
    }

    #[test]
    fn marginalize_matches_walker_bitwise() {
        for (scan, target) in cases() {
            let src = fill(scan.size(), 0xA5);
            for range in ranges(scan.size()) {
                let plan = KernelPlan::compile(&scan, &target, range).unwrap();
                for max in [false, true] {
                    let mut want = fill(target.size(), 0x17);
                    let mut got = want.clone();
                    if max {
                        raw::max_marginalize_range_into_walker(
                            &scan, &src, range, &target, &mut want,
                        )
                        .unwrap();
                        plan.marginalize_max_into(&src, &mut got).unwrap();
                    } else {
                        raw::marginalize_range_into_walker(&scan, &src, range, &target, &mut want)
                            .unwrap();
                        plan.marginalize_sum_into(&src, &mut got).unwrap();
                    }
                    assert_eq!(
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "scan {:?} target {:?} range {:?} max {}",
                        scan.var_ids(),
                        target.var_ids(),
                        range,
                        max
                    );
                }
            }
        }
    }

    #[test]
    fn extend_and_multiply_match_walker_bitwise() {
        for (scan, target) in cases() {
            let src = fill(target.size(), 0xB7);
            for range in ranges(scan.size()) {
                let plan = KernelPlan::compile(&scan, &target, range).unwrap();
                let mut want = fill(range.len(), 0x29);
                let mut got = want.clone();
                raw::extend_range_into_walker(&target, &src, &scan, range, &mut want).unwrap();
                plan.extend_into(&src, &mut got).unwrap();
                assert_eq!(want, got, "extend mismatch");

                let mut want = fill(range.len(), 0x31);
                let mut got = want.clone();
                raw::multiply_range_into_walker(&target, &src, &scan, range, &mut want).unwrap();
                plan.multiply_into(&src, &mut got).unwrap();
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "multiply mismatch"
                );
            }
        }
    }

    #[test]
    fn partials_over_split_ranges_compose() {
        // δ-partitioned plans over disjoint subranges must compose to
        // the full-range result — the invariant the scheduler leans on.
        // Since the canonical reduction order groups each plan's blocks
        // through a 4-lane tree, different δ cuts round differently in
        // the last ulps: sums compose to within tight tolerance (and
        // the engines only ever mix partials at one fixed δ, where
        // determinism is bitwise — asserted by tests/prop_plans.rs);
        // max is order-insensitive on this data, so it composes
        // exactly.
        let scan = dom(&[(0, 2), (1, 3), (2, 2)]);
        let target = dom(&[(1, 3)]);
        let src = fill(scan.size(), 0xC3);
        let full = KernelPlan::compile(&scan, &target, EntryRange::full(scan.size())).unwrap();
        let mut want_sum = vec![0.0; target.size()];
        full.marginalize_sum_into(&src, &mut want_sum).unwrap();
        let mut want_max = vec![0.0; target.size()];
        full.marginalize_max_into(&src, &mut want_max).unwrap();
        for chunk in [1usize, 2, 5] {
            let mut acc = vec![0.0; target.size()];
            let mut acc_max = vec![0.0; target.size()];
            for r in EntryRange::split(scan.size(), chunk) {
                let p = KernelPlan::compile(&scan, &target, r).unwrap();
                p.marginalize_sum_into(&src, &mut acc).unwrap();
                p.marginalize_max_into(&src, &mut acc_max).unwrap();
            }
            for (w, a) in want_sum.iter().zip(&acc) {
                assert!((w - a).abs() <= 1e-12 * w.abs().max(1.0), "chunk {chunk}");
            }
            assert_eq!(want_max, acc_max, "chunk {chunk}");
        }
    }

    #[test]
    fn backends_interpret_plans_bit_identically() {
        use crate::simd::KernelBackend;
        for (scan, target) in cases() {
            let src = fill(scan.size(), 0xE7);
            for range in ranges(scan.size()) {
                let plan = KernelPlan::compile(&scan, &target, range).unwrap();
                let init = fill(target.size(), 0x53);
                let mut want_sum = init.clone();
                let mut want_max = init.clone();
                plan.marginalize_sum_into_on(KernelBackend::Scalar, &src, &mut want_sum)
                    .unwrap();
                plan.marginalize_max_into_on(KernelBackend::Scalar, &src, &mut want_max)
                    .unwrap();
                for be in KernelBackend::available() {
                    let mut got = init.clone();
                    plan.marginalize_sum_into_on(be, &src, &mut got).unwrap();
                    assert_eq!(
                        want_sum.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{be:?} sum range {range:?}"
                    );
                    let mut got = init.clone();
                    plan.marginalize_max_into_on(be, &src, &mut got).unwrap();
                    assert_eq!(
                        want_max.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{be:?} max range {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn divide_planned_matches_walker() {
        let num = fill(12, 3);
        let mut den = fill(12, 9);
        den[4] = 0.0;
        for r in ranges(12) {
            let mut want = vec![0.0; r.len()];
            let mut got = vec![0.0; r.len()];
            raw::divide_range_into(&num, &den, r, &mut want).unwrap();
            divide_planned(&num, &den, r, &mut got).unwrap();
            assert_eq!(want, got);
        }
    }
}
