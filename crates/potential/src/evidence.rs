//! Evidence: instantiated variables to be absorbed before propagation.

use crate::{PotentialTable, Result, VarId};
use std::fmt;

/// One piece of evidence: variable `var` observed in state `state`
/// (the `A_e = a_e` of §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Evidence {
    /// The observed variable.
    pub var: VarId,
    /// Its observed state.
    pub state: usize,
}

impl Evidence {
    /// Creates a piece of evidence.
    #[inline]
    pub fn new(var: VarId, state: usize) -> Self {
        Evidence { var, state }
    }
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.var, self.state)
    }
}

/// **Soft (likelihood) evidence**: instead of pinning a variable to one
/// state, each state is weighted by the likelihood of some unmodeled
/// observation — e.g. a noisy sensor that is 80 % reliable. Hard
/// evidence is the special case of a one-hot likelihood.
///
/// Unlike hard evidence, a likelihood must be multiplied into the model
/// **exactly once** (squaring it would double-count the observation), so
/// engines absorb each likelihood into a single clique.
#[derive(Clone, Debug, PartialEq)]
pub struct Likelihood {
    /// The observed variable.
    pub var: VarId,
    /// One non-negative weight per state of `var`.
    pub weights: Vec<f64>,
}

impl Likelihood {
    /// Multiplies this likelihood into `table` along the `var` axis.
    ///
    /// # Errors
    ///
    /// [`crate::PotentialError::UnknownVariable`] if `var` is not in the
    /// table's domain; [`crate::PotentialError::CardinalityMismatch`] if
    /// the weight count differs from the variable's cardinality.
    pub fn apply_to(&self, table: &mut PotentialTable) -> Result<()> {
        let pos = table
            .domain()
            .position_of(self.var)
            .ok_or(crate::PotentialError::UnknownVariable(self.var))?;
        let card = table.domain().vars()[pos].cardinality();
        if self.weights.len() != card {
            return Err(crate::PotentialError::CardinalityMismatch {
                var: self.var,
                expected: card,
                found: self.weights.len(),
            });
        }
        let stride = table.domain().stride(pos);
        let block = stride * card;
        let data = table.data_mut();
        for base in (0..data.len()).step_by(block) {
            for (s, &w) in self.weights.iter().enumerate() {
                let lo = base + s * stride;
                for v in &mut data[lo..lo + stride] {
                    *v *= w;
                }
            }
        }
        Ok(())
    }
}

/// A set of evidence items: hard observations (at most one per variable;
/// later insertions replace earlier ones) plus soft likelihoods.
///
/// # Example
///
/// ```
/// use evprop_potential::{Evidence, EvidenceSet, VarId};
/// let mut ev = EvidenceSet::new();
/// ev.observe(VarId(3), 1);
/// ev.observe(VarId(3), 0); // replaces
/// ev.observe_likelihood(VarId(1), vec![0.8, 0.2]); // noisy sensor
/// assert_eq!(ev.state_of(VarId(3)), Some(0));
/// assert_eq!(ev.len(), 1);
/// assert_eq!(ev.soft().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvidenceSet {
    items: Vec<Evidence>,
    soft: Vec<Likelihood>,
}

impl EvidenceSet {
    /// An empty evidence set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `var = state`, replacing any earlier observation of `var`.
    pub fn observe(&mut self, var: VarId, state: usize) -> &mut Self {
        if let Some(e) = self.items.iter_mut().find(|e| e.var == var) {
            e.state = state;
        } else {
            self.items.push(Evidence::new(var, state));
        }
        self
    }

    /// Removes the hard observation of `var`, returning the state it
    /// was pinned to, or `None` when `var` was not observed. Soft
    /// likelihoods on `var` are removed too (retracting a finding
    /// withdraws everything asserted about the variable).
    pub fn retract(&mut self, var: VarId) -> Option<usize> {
        self.soft.retain(|l| l.var != var);
        let pos = self.items.iter().position(|e| e.var == var)?;
        Some(self.items.remove(pos).state)
    }

    /// Merges `delta` into this set: every hard item and soft
    /// likelihood of `delta` is observed here, replacing (never
    /// duplicating) earlier entries for the same variable.
    pub fn merge_delta(&mut self, delta: &EvidenceSet) -> &mut Self {
        for e in &delta.items {
            self.observe(e.var, e.state);
        }
        for l in &delta.soft {
            self.observe_likelihood(l.var, l.weights.clone());
        }
        self
    }

    /// The observed state of `var`, if any.
    pub fn state_of(&self, var: VarId) -> Option<usize> {
        self.items.iter().find(|e| e.var == var).map(|e| e.state)
    }

    /// Number of observed variables.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is observed, hard or soft.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.soft.is_empty()
    }

    /// Iterates over the hard evidence items.
    pub fn iter(&self) -> std::slice::Iter<'_, Evidence> {
        self.items.iter()
    }

    /// Records soft evidence: `weights[s]` is the likelihood of the
    /// unmodeled observation given `var = s`. A later likelihood for the
    /// same variable replaces the earlier one.
    pub fn observe_likelihood(&mut self, var: VarId, weights: Vec<f64>) -> &mut Self {
        if let Some(l) = self.soft.iter_mut().find(|l| l.var == var) {
            l.weights = weights;
        } else {
            self.soft.push(Likelihood { var, weights });
        }
        self
    }

    /// The soft (likelihood) evidence items.
    pub fn soft(&self) -> &[Likelihood] {
        &self.soft
    }

    /// Absorbs into `table` every **hard** evidence item whose variable
    /// lies in the table's domain (zeroing inconsistent entries). Returns
    /// how many items were absorbed.
    ///
    /// Hard evidence is idempotent under repetition (an indicator squared
    /// is itself), so absorbing into *every* containing clique is safe;
    /// soft evidence is not, which is why it is excluded here — see
    /// [`EvidenceSet::soft`] and [`Likelihood::apply_to`], which engines
    /// apply to exactly one clique per variable.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PotentialError::StateOutOfRange`] when an
    /// observed state exceeds the variable's cardinality.
    pub fn absorb_into(&self, table: &mut PotentialTable) -> Result<usize> {
        let mut n = 0;
        for e in &self.items {
            if table.domain().contains(e.var) {
                table.restrict(e.var, e.state)?;
                n += 1;
            }
        }
        Ok(n)
    }
}

impl FromIterator<Evidence> for EvidenceSet {
    fn from_iter<I: IntoIterator<Item = Evidence>>(iter: I) -> Self {
        let mut set = EvidenceSet::new();
        for e in iter {
            set.observe(e.var, e.state);
        }
        set
    }
}

impl Extend<Evidence> for EvidenceSet {
    fn extend<I: IntoIterator<Item = Evidence>>(&mut self, iter: I) {
        for e in iter {
            self.observe(e.var, e.state);
        }
    }
}

impl<'a> IntoIterator for &'a EvidenceSet {
    type Item = &'a Evidence;
    type IntoIter = std::slice::Iter<'a, Evidence>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Variable};

    #[test]
    fn observe_and_replace() {
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(1), 2).observe(VarId(2), 0);
        assert_eq!(ev.len(), 2);
        ev.observe(VarId(1), 1);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev.state_of(VarId(1)), Some(1));
        assert_eq!(ev.state_of(VarId(9)), None);
        assert!(!ev.is_empty());
    }

    #[test]
    fn absorb_into_table() {
        let d = Domain::new(vec![Variable::new(VarId(0), 2), Variable::new(VarId(1), 2)]).unwrap();
        let mut t = PotentialTable::ones(d);
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(1), 0);
        ev.observe(VarId(7), 1); // not in domain: ignored
        let n = ev.absorb_into(&mut t).unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn absorb_bad_state_errors() {
        let d = Domain::new(vec![Variable::binary(VarId(0))]).unwrap();
        let mut t = PotentialTable::ones(d);
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 5);
        assert!(ev.absorb_into(&mut t).is_err());
    }

    #[test]
    fn collect_from_iterator() {
        let ev: EvidenceSet = vec![Evidence::new(VarId(0), 1), Evidence::new(VarId(0), 0)]
            .into_iter()
            .collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev.state_of(VarId(0)), Some(0));
    }

    #[test]
    fn likelihood_applies_along_axis() {
        let d = Domain::new(vec![Variable::new(VarId(0), 2), Variable::new(VarId(1), 2)]).unwrap();
        let mut t = PotentialTable::from_data(d, vec![1., 2., 3., 4.]).unwrap();
        Likelihood {
            var: VarId(1),
            weights: vec![0.5, 2.0],
        }
        .apply_to(&mut t)
        .unwrap();
        assert_eq!(t.data(), &[0.5, 4., 1.5, 8.]);
    }

    #[test]
    fn likelihood_validates() {
        let d = Domain::new(vec![Variable::binary(VarId(0))]).unwrap();
        let mut t = PotentialTable::ones(d);
        assert!(Likelihood {
            var: VarId(9),
            weights: vec![1., 1.],
        }
        .apply_to(&mut t)
        .is_err());
        assert!(Likelihood {
            var: VarId(0),
            weights: vec![1., 1., 1.],
        }
        .apply_to(&mut t)
        .is_err());
    }

    #[test]
    fn soft_evidence_replaces() {
        let mut ev = EvidenceSet::new();
        ev.observe_likelihood(VarId(0), vec![0.9, 0.1]);
        ev.observe_likelihood(VarId(0), vec![0.2, 0.8]);
        assert_eq!(ev.soft().len(), 1);
        assert_eq!(ev.soft()[0].weights, vec![0.2, 0.8]);
        assert!(!ev.is_empty());
        assert_eq!(ev.len(), 0); // len counts hard evidence only
    }

    #[test]
    fn retract_removes_hard_and_soft() {
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(1), 2);
        ev.observe_likelihood(VarId(1), vec![0.5, 0.5, 1.0]);
        ev.observe(VarId(2), 0);
        assert_eq!(ev.retract(VarId(1)), Some(2));
        assert_eq!(ev.len(), 1);
        assert!(ev.soft().is_empty());
        assert_eq!(ev.retract(VarId(1)), None);
        assert_eq!(ev.retract(VarId(9)), None);
        assert_eq!(ev.state_of(VarId(2)), Some(0));
    }

    #[test]
    fn merge_delta_replaces_never_duplicates() {
        let mut base = EvidenceSet::new();
        base.observe(VarId(0), 0).observe(VarId(1), 1);
        base.observe_likelihood(VarId(2), vec![0.9, 0.1]);
        let mut delta = EvidenceSet::new();
        delta.observe(VarId(1), 0).observe(VarId(3), 1);
        delta.observe_likelihood(VarId(2), vec![0.2, 0.8]);
        base.merge_delta(&delta);
        assert_eq!(base.len(), 3); // V0, V1, V3 — V1 replaced, not duplicated
        assert_eq!(base.state_of(VarId(1)), Some(0));
        assert_eq!(base.state_of(VarId(3)), Some(1));
        assert_eq!(base.soft().len(), 1);
        assert_eq!(base.soft()[0].weights, vec![0.2, 0.8]);
    }

    /// Audit of the duplicate-variable contract: `observe` and
    /// `observe_likelihood` REPLACE earlier entries for the same
    /// variable — absorbing a set with a re-observed variable must
    /// therefore restrict to the latest state only.
    #[test]
    fn duplicate_observation_audit_absorbs_latest_only() {
        let d = Domain::new(vec![Variable::new(VarId(0), 3)]).unwrap();
        let mut t = PotentialTable::ones(d);
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 0);
        ev.observe(VarId(0), 2); // replaces: only state 2 survives
        assert_eq!(ev.iter().count(), 1);
        ev.absorb_into(&mut t).unwrap();
        assert_eq!(t.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn display_form() {
        assert_eq!(format!("{}", Evidence::new(VarId(2), 1)), "V2=1");
    }
}
