//! Discrete random variables.

use std::fmt;

/// Identifier of a discrete random variable.
///
/// Variable identities are plain integers; a [`VarId`] newtype keeps them
/// from being confused with states, clique ids or task ids elsewhere in
/// the workspace.
///
/// # Example
///
/// ```
/// use evprop_potential::VarId;
/// let v = VarId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the identifier as a `usize`, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(v: u32) -> Self {
        VarId(v)
    }
}

/// A discrete random variable: an identifier plus its number of states.
///
/// The number of states (`cardinality`) is the `r` of the paper; the
/// potential table of a clique with `w` variables each of `r` states has
/// `r^w` entries.
///
/// # Example
///
/// ```
/// use evprop_potential::{Variable, VarId};
/// let v = Variable::new(VarId(0), 3);
/// assert_eq!(v.cardinality(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Variable {
    id: VarId,
    cardinality: usize,
}

impl Variable {
    /// Creates a variable with the given identifier and state count.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero — a variable must have at least one
    /// state.
    #[inline]
    pub fn new(id: VarId, cardinality: usize) -> Self {
        assert!(cardinality > 0, "variable cardinality must be positive");
        Variable { id, cardinality }
    }

    /// A binary variable, the most common case in the paper's workloads.
    #[inline]
    pub fn binary(id: VarId) -> Self {
        Variable::new(id, 2)
    }

    /// The variable's identifier.
    #[inline]
    pub fn id(&self) -> VarId {
        self.id
    }

    /// The number of states of this variable.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id, self.cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip() {
        assert_eq!(VarId::from(7u32), VarId(7));
        assert_eq!(VarId(7).index(), 7);
    }

    #[test]
    fn var_id_ordering_matches_numeric() {
        assert!(VarId(1) < VarId(2));
        assert!(VarId(10) > VarId(2));
    }

    #[test]
    fn variable_accessors() {
        let v = Variable::new(VarId(4), 5);
        assert_eq!(v.id(), VarId(4));
        assert_eq!(v.cardinality(), 5);
    }

    #[test]
    fn binary_constructor() {
        assert_eq!(Variable::binary(VarId(0)).cardinality(), 2);
    }

    #[test]
    #[should_panic(expected = "cardinality")]
    fn zero_cardinality_rejected() {
        let _ = Variable::new(VarId(0), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", VarId(3)), "V3");
        assert_eq!(format!("{:?}", VarId(3)), "V3");
        assert_eq!(format!("{}", Variable::new(VarId(3), 2)), "V3(2)");
    }
}
