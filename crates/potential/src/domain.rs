//! Ordered sets of variables with mixed-radix index arithmetic.

use crate::{PotentialError, Result, VarId, Variable};
use std::fmt;

/// An ordered set of discrete variables — the scope of a potential table.
///
/// Domains are canonicalized: variables are stored sorted by [`VarId`],
/// with no duplicates. Two tables over the same variable set therefore
/// always agree on entry layout, which lets the node-level primitives walk
/// tables with precomputed strides instead of per-entry hash lookups.
///
/// Entries of a table over this domain are laid out row-major with the
/// **last** variable fastest: the stride of variable `i` is the product of
/// the cardinalities of variables `i+1..`.
///
/// # Example
///
/// ```
/// use evprop_potential::{Domain, Variable, VarId};
/// let d = Domain::new(vec![
///     Variable::new(VarId(2), 3),
///     Variable::new(VarId(0), 2),
/// ]).unwrap();
/// // Canonical order is by VarId regardless of construction order.
/// assert_eq!(d.vars()[0].id(), VarId(0));
/// assert_eq!(d.size(), 6);
/// assert_eq!(d.stride(0), 3); // V0 strides over V2's 3 states
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Domain {
    vars: Vec<Variable>,
    /// Stride of each variable position; `strides[i]` = product of
    /// cardinalities of positions `i+1..`.
    strides: Vec<usize>,
    size: usize,
}

impl Domain {
    /// Builds a domain from a collection of variables.
    ///
    /// The variables are sorted by id; order of the input is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::DuplicateVariable`] if a variable id
    /// appears twice with the same cardinality, and
    /// [`PotentialError::CardinalityMismatch`] if it appears twice with
    /// different cardinalities.
    pub fn new(mut vars: Vec<Variable>) -> Result<Self> {
        vars.sort_by_key(|v| v.id());
        for w in vars.windows(2) {
            if w[0].id() == w[1].id() {
                if w[0].cardinality() != w[1].cardinality() {
                    return Err(PotentialError::CardinalityMismatch {
                        var: w[0].id(),
                        expected: w[0].cardinality(),
                        found: w[1].cardinality(),
                    });
                }
                return Err(PotentialError::DuplicateVariable(w[0].id()));
            }
        }
        Ok(Self::from_sorted(vars))
    }

    /// Builds a domain from variables already sorted by id with no
    /// duplicates. Internal fast path.
    fn from_sorted(vars: Vec<Variable>) -> Self {
        let mut strides = vec![0usize; vars.len()];
        let mut acc = 1usize;
        for (i, v) in vars.iter().enumerate().rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(v.cardinality())
                .expect("domain size overflows usize");
        }
        Domain {
            vars,
            strides,
            size: acc,
        }
    }

    /// The empty domain; its (single-entry) table is a scalar.
    pub fn empty() -> Self {
        Domain {
            vars: Vec::new(),
            strides: Vec::new(),
            size: 1,
        }
    }

    /// The variables of this domain, sorted by id.
    #[inline]
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Number of variables (the clique width `w` in the paper).
    #[inline]
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Total number of joint states — the length of a table over this
    /// domain (`r^w` for uniform cardinality `r`).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// `true` when the domain has no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The stride of the variable at `position`: how far the flat index
    /// moves when that variable's state increments by one.
    #[inline]
    pub fn stride(&self, position: usize) -> usize {
        self.strides[position]
    }

    /// Position of `var` within the domain, if present.
    pub fn position_of(&self, var: VarId) -> Option<usize> {
        self.vars.binary_search_by_key(&var, |v| v.id()).ok()
    }

    /// Whether `var` is in the domain.
    #[inline]
    pub fn contains(&self, var: VarId) -> bool {
        self.position_of(var).is_some()
    }

    /// Whether every variable of `other` is also in `self`.
    pub fn is_superset_of(&self, other: &Domain) -> bool {
        other.vars.iter().all(|v| self.contains(v.id()))
    }

    /// The intersection of two domains — the **separator** of two adjacent
    /// cliques in a junction tree.
    pub fn intersect(&self, other: &Domain) -> Domain {
        let vars: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| other.contains(v.id()))
            .copied()
            .collect();
        Domain::from_sorted(vars)
    }

    /// The union of two domains.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::CardinalityMismatch`] if a shared variable
    /// has different cardinalities in the two domains.
    pub fn union(&self, other: &Domain) -> Result<Domain> {
        let mut vars = Vec::with_capacity(self.width() + other.width());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            let (a, b) = (self.vars[i], other.vars[j]);
            if a.id() < b.id() {
                vars.push(a);
                i += 1;
            } else if b.id() < a.id() {
                vars.push(b);
                j += 1;
            } else {
                if a.cardinality() != b.cardinality() {
                    return Err(PotentialError::CardinalityMismatch {
                        var: a.id(),
                        expected: a.cardinality(),
                        found: b.cardinality(),
                    });
                }
                vars.push(a);
                i += 1;
                j += 1;
            }
        }
        vars.extend_from_slice(&self.vars[i..]);
        vars.extend_from_slice(&other.vars[j..]);
        Ok(Domain::from_sorted(vars))
    }

    /// The set difference `self \ other`.
    pub fn minus(&self, other: &Domain) -> Domain {
        let vars: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| !other.contains(v.id()))
            .copied()
            .collect();
        Domain::from_sorted(vars)
    }

    /// Projects the domain onto the given variable ids (keeping those that
    /// are present); order of `keep` is irrelevant.
    pub fn project(&self, keep: &[VarId]) -> Domain {
        let vars: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| keep.contains(&v.id()))
            .copied()
            .collect();
        Domain::from_sorted(vars)
    }

    /// Converts a full assignment (one state per domain variable, in
    /// domain order) into a flat table index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the assignment length differs from the
    /// domain width or a state is out of range.
    #[inline]
    pub fn flat_index(&self, states: &[usize]) -> usize {
        debug_assert_eq!(states.len(), self.vars.len());
        let mut idx = 0usize;
        for (i, &s) in states.iter().enumerate() {
            debug_assert!(s < self.vars[i].cardinality());
            idx += s * self.strides[i];
        }
        idx
    }

    /// Converts a flat table index back to a full assignment.
    pub fn unflatten(&self, mut idx: usize) -> Vec<usize> {
        let mut states = vec![0usize; self.vars.len()];
        for (state, &stride) in states.iter_mut().zip(&self.strides) {
            *state = idx / stride;
            idx %= stride;
        }
        states
    }

    /// For each variable position of `self`, the stride of that variable
    /// inside a table over `target` (0 if `target` does not contain it).
    ///
    /// This is the bridge used by every primitive: scanning a table over
    /// `self` linearly while maintaining the corresponding index into a
    /// table over `target` costs O(1) amortized per entry.
    pub fn strides_in(&self, target: &Domain) -> Vec<usize> {
        self.vars
            .iter()
            .map(|v| {
                target
                    .position_of(v.id())
                    .map(|p| target.stride(p))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The cardinalities of the domain's variables, in domain order.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.vars.iter().map(|v| v.cardinality()).collect()
    }

    /// The ids of the domain's variables, in domain order.
    pub fn var_ids(&self) -> Vec<VarId> {
        self.vars.iter().map(|v| v.id()).collect()
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::empty()
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Domain{{")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn canonical_sort_and_strides() {
        let d = dom(&[(2, 3), (0, 2), (1, 4)]);
        assert_eq!(d.var_ids(), vec![VarId(0), VarId(1), VarId(2)]);
        assert_eq!(d.size(), 24);
        // last variable fastest
        assert_eq!(d.stride(2), 1);
        assert_eq!(d.stride(1), 3);
        assert_eq!(d.stride(0), 12);
    }

    #[test]
    fn duplicate_rejected() {
        let err =
            Domain::new(vec![Variable::new(VarId(1), 2), Variable::new(VarId(1), 2)]).unwrap_err();
        assert_eq!(err, PotentialError::DuplicateVariable(VarId(1)));
    }

    #[test]
    fn cardinality_conflict_rejected() {
        let err =
            Domain::new(vec![Variable::new(VarId(1), 2), Variable::new(VarId(1), 3)]).unwrap_err();
        assert!(matches!(err, PotentialError::CardinalityMismatch { .. }));
    }

    #[test]
    fn empty_domain_is_scalar() {
        let d = Domain::empty();
        assert_eq!(d.size(), 1);
        assert!(d.is_empty());
        assert_eq!(d.flat_index(&[]), 0);
    }

    #[test]
    fn flat_roundtrip_exhaustive() {
        let d = dom(&[(0, 2), (1, 3), (2, 2)]);
        for idx in 0..d.size() {
            let states = d.unflatten(idx);
            assert_eq!(d.flat_index(&states), idx);
        }
    }

    #[test]
    fn intersect_union_minus() {
        let a = dom(&[(0, 2), (1, 3), (2, 2)]);
        let b = dom(&[(1, 3), (2, 2), (5, 4)]);
        let s = a.intersect(&b);
        assert_eq!(s.var_ids(), vec![VarId(1), VarId(2)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.var_ids(), vec![VarId(0), VarId(1), VarId(2), VarId(5)]);
        let m = a.minus(&b);
        assert_eq!(m.var_ids(), vec![VarId(0)]);
        assert!(u.is_superset_of(&a));
        assert!(u.is_superset_of(&b));
        assert!(!a.is_superset_of(&b));
    }

    #[test]
    fn union_detects_conflicting_cardinalities() {
        let a = dom(&[(0, 2)]);
        let b = Domain::new(vec![Variable::new(VarId(0), 3)]).unwrap();
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn strides_in_superdomain() {
        let sub = dom(&[(0, 2), (2, 2)]);
        let sup = dom(&[(0, 2), (1, 3), (2, 2)]);
        // In sup: strides are [6, 2, 1]; sub vars V0,V2 -> [6, 1].
        assert_eq!(sub.strides_in(&sup), vec![6, 1]);
        // Reverse direction: V1 missing from sub gets stride 0.
        assert_eq!(sup.strides_in(&sub), vec![2, 0, 1]);
    }

    #[test]
    fn project_keeps_order() {
        let d = dom(&[(0, 2), (1, 3), (2, 2)]);
        let p = d.project(&[VarId(2), VarId(0)]);
        assert_eq!(p.var_ids(), vec![VarId(0), VarId(2)]);
    }

    #[test]
    fn position_and_contains() {
        let d = dom(&[(3, 2), (7, 3)]);
        assert_eq!(d.position_of(VarId(7)), Some(1));
        assert!(d.contains(VarId(3)));
        assert!(!d.contains(VarId(4)));
    }

    #[test]
    fn debug_is_informative() {
        let d = dom(&[(0, 2), (1, 3)]);
        let s = format!("{d:?}");
        assert!(s.contains("V0(2)"));
        assert!(s.contains("V1(3)"));
    }
}
