//! Runtime-dispatched SIMD kernel backends for the potential-table
//! inner loops.
//!
//! The [`KernelPlan`](crate::KernelPlan) interpreter and the walker
//! kernels in [`raw`](crate::raw) spend essentially all of their time in
//! a handful of slice loops: elementwise add/max/multiply/divide over
//! contiguous segments, and the broadcast sum/max reductions that
//! collapse a block of scan entries onto one separator slot. This module
//! provides those loops in several implementations — portable scalar,
//! SSE2, AVX2, and (behind the nightly-only `portable-simd` feature)
//! `std::simd` — selected **once per process** and cached.
//!
//! # Determinism contract
//!
//! The repo asserts bitwise-identical marginals across thread counts,
//! δ-grains at a fixed δ, shard layouts, and in golden serve smoke
//! files. Floating-point addition and `max`-with-tie-breaking are not
//! associative at the bit level, so SIMD kernels are only admissible if
//! **every backend performs the same IEEE-754 operations in the same
//! order**. The contract, defined by
//! [`raw::sum_canonical`](crate::raw::sum_canonical) and
//! [`raw::fold_max_canonical`](crate::raw::fold_max_canonical) and
//! restated here:
//!
//! * **Reductions** use a fixed 4-lane reduction tree. With
//!   `chunks = len / 4`, lane `j` accumulates `xs[4k + j]` for
//!   `k = 0..chunks` in increasing `k`; the four lanes combine as
//!   `(l0 + l2) + (l1 + l3)` for sum and
//!   `sel(sel(m0 > m2) > sel(m1 > m3))` for max; the `len % 4` tail
//!   entries then fold in sequentially, left to right. SSE2 realizes
//!   the four lanes as two `__m128d` accumulators, AVX2 as one
//!   `__m256d` split 128/128 at the end, and the scalar path as four
//!   named locals — the identical operation DAG, so identical bits.
//! * **Max** is everywhere the select `if x > acc { acc = x }`, which
//!   is exactly `_mm_max_pd(x, acc)` / `_mm256_max_pd(x, acc)`
//!   semantics: on ties (including `+0.0` vs `-0.0`) and NaNs the
//!   *second* operand (the accumulator) is kept.
//! * **Elementwise** kernels (add/max/mul/div) perform one independent
//!   IEEE operation per entry, so any vector width yields the same
//!   bits by construction. Division keeps the Hugin `x/0 = 0`
//!   convention via a compare-and-mask
//!   (`andnot(den == 0, num / den)`), which matches
//!   `safe_div`'s branch bit-for-bit (the mask result is `+0.0`, as is
//!   the scalar literal).
//!
//! `tests/prop_plans.rs` and the unit suite below assert cross-backend
//! bit-identity on random shapes; the CI serve-smoke job diffs the
//! golden response file once per available backend.
//!
//! # Selection
//!
//! [`active`] resolves the backend on first use, in order:
//!
//! 1. an explicit [`set_active`] call (the CLI's `--kernel-backend`
//!    flag), which validates availability;
//! 2. the `EVPROP_KERNEL_BACKEND` environment variable (`scalar`,
//!    `sse2`, `avx2`, `portable`) — unknown or unavailable values fall
//!    back to detection so a typo degrades gracefully rather than
//!    aborting a library call (the active backend is observable via
//!    STATS/trace);
//! 3. `is_x86_feature_detected!` probing, best-first: AVX2, then SSE2,
//!    then scalar. The `portable-simd` backend is never auto-selected.
//!
//! Under Miri and on non-x86 targets the intrinsic backends are
//! compiled out and everything resolves to the scalar path. Calling an
//! op on a [`KernelBackend`] value whose hardware support is absent is
//! safe: each dispatch arm re-guards on the (cached) feature test and
//! falls back to scalar, so no intrinsic is ever executed undetected.

use crate::plan::Segment;
use crate::{PotentialError, Result};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation executes the potential-table inner
/// loops. All variants exist on every target; availability is a
/// runtime property (see [`KernelBackend::is_available`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar loops (the canonical reference order).
    Scalar,
    /// SSE2 intrinsics, 2 lanes × 2 accumulators.
    Sse2,
    /// AVX2 intrinsics, one 4-lane accumulator.
    Avx2,
    /// Nightly `std::simd` (`portable-simd` feature), 4-lane vectors.
    Portable,
}

/// Every backend, detection order last-to-first.
pub const ALL_BACKENDS: [KernelBackend; 4] = [
    KernelBackend::Scalar,
    KernelBackend::Sse2,
    KernelBackend::Avx2,
    KernelBackend::Portable,
];

#[inline]
fn sse2_ok() -> bool {
    #[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
    {
        is_x86_feature_detected!("sse2")
    }
    #[cfg(not(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri))))]
    {
        false
    }
}

#[inline]
fn avx2_ok() -> bool {
    #[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri))))]
    {
        false
    }
}

/// Dispatches `$fn($args…)` to the backend's implementation module.
///
/// Each intrinsic arm re-guards on the cached CPUID probe, so the
/// `unsafe` target-feature call is sound even if a caller conjures an
/// unavailable `KernelBackend` value — it silently degrades to the
/// scalar path, which computes the same bits anyway.
macro_rules! dispatch {
    ($be:expr, $fn:ident, ( $($arg:expr),* )) => {
        match $be {
            #[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
            KernelBackend::Sse2 if sse2_ok() =>
                // SAFETY: the guard just confirmed SSE2 support.
                unsafe { sse2::$fn($($arg),*) },
            #[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
            KernelBackend::Avx2 if avx2_ok() =>
                // SAFETY: the guard just confirmed AVX2 support.
                unsafe { avx2::$fn($($arg),*) },
            #[cfg(feature = "portable-simd")]
            KernelBackend::Portable => portable::$fn($($arg),*),
            _ => scalar::$fn($($arg),*),
        }
    };
}

/// Work sizes below this take the always-inlined scalar path even on a
/// SIMD backend: the intrinsic implementations live behind a
/// non-inlinable `#[target_feature]` call, which on a handful of
/// entries costs more than the vector lanes save (δ = 1 plans dispatch
/// once per *entry*). The shortcut is unobservable in the output —
/// every backend computes identical bits by contract — so only timing
/// changes. 32 entries is 8 AVX2 iterations, comfortably past
/// break-even.
const SMALL_N: usize = 32;

/// [`dispatch!`], except work sizes under [`SMALL_N`] short-circuit to
/// the scalar implementation.
macro_rules! dispatch_n {
    ($be:expr, $n:expr, $fn:ident, ( $($arg:expr),* )) => {
        if $n < SMALL_N {
            scalar::$fn($($arg),*)
        } else {
            dispatch!($be, $fn, ( $($arg),* ))
        }
    };
}

impl KernelBackend {
    /// Stable lower-case name (`scalar`, `sse2`, `avx2`, `portable`)
    /// used by the CLI flag, the env var, STATS and trace instants.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Portable => "portable",
        }
    }

    /// Parses a backend name as accepted by `--kernel-backend` and
    /// `EVPROP_KERNEL_BACKEND`. Returns `None` for unknown names
    /// (`auto` is resolved by callers via [`KernelBackend::detect`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "sse2" => Some(KernelBackend::Sse2),
            "avx2" => Some(KernelBackend::Avx2),
            "portable" => Some(KernelBackend::Portable),
            _ => None,
        }
    }

    /// Whether this process can actually run the backend: compiled in
    /// (arch / feature gates) *and* supported by the host CPU.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Sse2 => sse2_ok(),
            KernelBackend::Avx2 => avx2_ok(),
            KernelBackend::Portable => cfg!(feature = "portable-simd"),
        }
    }

    /// The best auto-detected backend: AVX2, else SSE2, else scalar.
    /// `portable` is opt-in only.
    pub fn detect() -> Self {
        if avx2_ok() {
            KernelBackend::Avx2
        } else if sse2_ok() {
            KernelBackend::Sse2
        } else {
            KernelBackend::Scalar
        }
    }

    /// All backends this process can run, in [`ALL_BACKENDS`] order.
    pub fn available() -> Vec<Self> {
        ALL_BACKENDS
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// Canonical-order sum of `xs` (see the module docs); starts from
    /// `0.0`, so callers fold the result into their accumulator.
    #[inline]
    pub fn sum(self, xs: &[f64]) -> f64 {
        dispatch_n!(self, xs.len(), sum, (xs))
    }

    /// Folds `xs` into `acc` with the canonical-order max reduction.
    #[inline]
    pub fn fold_max(self, acc: f64, xs: &[f64]) -> f64 {
        dispatch_n!(self, xs.len(), fold_max, (acc, xs))
    }

    /// Elementwise `dst[i] += src[i]` over `min(len)` entries.
    #[inline]
    pub fn add_assign(self, dst: &mut [f64], src: &[f64]) {
        debug_assert_eq!(dst.len(), src.len());
        dispatch_n!(self, dst.len(), add_assign, (dst, src))
    }

    /// Elementwise `dst[i] = if src[i] > dst[i] { src[i] } else { dst[i] }`.
    #[inline]
    pub fn max_assign(self, dst: &mut [f64], src: &[f64]) {
        debug_assert_eq!(dst.len(), src.len());
        dispatch_n!(self, dst.len(), max_assign, (dst, src))
    }

    /// Elementwise `dst[i] *= src[i]`.
    #[inline]
    pub fn mul_assign(self, dst: &mut [f64], src: &[f64]) {
        debug_assert_eq!(dst.len(), src.len());
        dispatch_n!(self, dst.len(), mul_assign, (dst, src))
    }

    /// Broadcast `dst[i] *= m`.
    #[inline]
    pub fn mul_scalar(self, dst: &mut [f64], m: f64) {
        dispatch_n!(self, dst.len(), mul_scalar, (dst, m))
    }

    /// Elementwise `out[i] = safe_div(num[i], den[i])` (`x/0 = 0`).
    #[inline]
    pub fn div_into(self, num: &[f64], den: &[f64], out: &mut [f64]) {
        debug_assert_eq!(num.len(), out.len());
        debug_assert_eq!(den.len(), out.len());
        dispatch_n!(self, out.len(), div_into, (num, den, out))
    }

    /// Elementwise `dst[i] = safe_div(dst[i], den[i])`.
    #[inline]
    pub fn div_assign(self, dst: &mut [f64], den: &[f64]) {
        debug_assert_eq!(dst.len(), den.len());
        dispatch_n!(self, dst.len(), div_assign, (dst, den))
    }

    // Fused plan loops: one dispatch (and, for the intrinsic backends,
    // one non-inlinable `#[target_feature]` call) per plan *execution*
    // instead of per segment. The segment loop runs inside the
    // feature-enabled function, so per-block call overhead — which the
    // inlining scalar path never paid — disappears at small δ. Each
    // fused loop performs the exact per-segment op sequence of its
    // single-block twin, so bits are unchanged.

    /// Contig sum-marginalization: `dst[tb..tb+len] += src[pos..]` per
    /// segment (`src` is the plan's range window).
    #[inline]
    pub fn marg_sum_contig(self, segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        dispatch_n!(self, src.len(), marg_sum_contig, (segs, src, dst))
    }

    /// Broadcast sum-marginalization: `dst[tb] +=` canonical-order sum
    /// of each segment's block (one-entry blocks add directly).
    #[inline]
    pub fn marg_sum_broadcast(self, segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        dispatch_n!(self, src.len(), marg_sum_broadcast, (segs, src, dst))
    }

    /// Contig max-marginalization: elementwise select per segment.
    #[inline]
    pub fn marg_max_contig(self, segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        dispatch_n!(self, src.len(), marg_max_contig, (segs, src, dst))
    }

    /// Broadcast max-marginalization: canonical-order max fold of each
    /// segment's block into its slot.
    #[inline]
    pub fn marg_max_broadcast(self, segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        dispatch_n!(self, src.len(), marg_max_broadcast, (segs, src, dst))
    }

    /// Contig multiplication: `out[pos..] *= src[tb..tb+len]` per
    /// segment (`out` is the plan's range window, `src` the full
    /// target-domain factor).
    #[inline]
    pub fn mul_contig(self, segs: &[Segment], src: &[f64], out: &mut [f64]) {
        dispatch_n!(self, out.len(), mul_contig, (segs, src, out))
    }

    /// Broadcast multiplication: `out[pos..pos+len] *= src[tb]` per
    /// segment.
    #[inline]
    pub fn mul_broadcast(self, segs: &[Segment], src: &[f64], out: &mut [f64]) {
        dispatch_n!(self, out.len(), mul_broadcast, (segs, src, out))
    }
}

/// 0 = unresolved; otherwise `encode(backend)`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(be: KernelBackend) -> u8 {
    match be {
        KernelBackend::Scalar => 1,
        KernelBackend::Sse2 => 2,
        KernelBackend::Avx2 => 3,
        KernelBackend::Portable => 4,
    }
}

fn decode(v: u8) -> Option<KernelBackend> {
    match v {
        1 => Some(KernelBackend::Scalar),
        2 => Some(KernelBackend::Sse2),
        3 => Some(KernelBackend::Avx2),
        4 => Some(KernelBackend::Portable),
        _ => None,
    }
}

/// Resolves the env-var request (if any) against availability; pure so
/// the policy is unit-testable without touching process env.
fn choose(env_request: Option<&str>) -> KernelBackend {
    if let Some(be) = env_request.and_then(KernelBackend::parse) {
        if be.is_available() {
            return be;
        }
    }
    KernelBackend::detect()
}

/// The process-wide active backend, resolved on first call (see the
/// module docs for the precedence) and cached in an atomic thereafter.
#[inline]
pub fn active() -> KernelBackend {
    match decode(ACTIVE.load(Ordering::Relaxed)) {
        Some(be) => be,
        None => resolve_active(),
    }
}

#[cold]
fn resolve_active() -> KernelBackend {
    let be = choose(std::env::var("EVPROP_KERNEL_BACKEND").ok().as_deref());
    // Only install if still unresolved, so a concurrent set_active wins.
    let _ = ACTIVE.compare_exchange(0, encode(be), Ordering::Relaxed, Ordering::Relaxed);
    decode(ACTIVE.load(Ordering::Relaxed)).unwrap_or(KernelBackend::Scalar)
}

/// Overrides the process-wide backend (the CLI's `--kernel-backend`).
///
/// # Errors
///
/// [`PotentialError::BackendUnavailable`] if the backend is not
/// compiled in or not supported by this CPU; the previous selection is
/// left untouched.
pub fn set_active(be: KernelBackend) -> Result<()> {
    if !be.is_available() {
        return Err(PotentialError::BackendUnavailable { backend: be.name() });
    }
    ACTIVE.store(encode(be), Ordering::Relaxed);
    Ok(())
}

/// Scalar reference kernels. Reductions delegate to the canonical-order
/// definitions in [`raw`](crate::raw) — this module *is* the contract
/// the intrinsic backends replicate.
mod scalar {
    use crate::plan::Segment;
    use crate::primitives::safe_div;

    #[inline]
    pub fn sum(xs: &[f64]) -> f64 {
        crate::raw::sum_canonical(xs)
    }

    #[inline]
    pub fn fold_max(acc: f64, xs: &[f64]) -> f64 {
        crate::raw::fold_max_canonical(acc, xs)
    }

    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        for (a, &b) in dst.iter_mut().zip(src) {
            *a += b;
        }
    }

    pub fn max_assign(dst: &mut [f64], src: &[f64]) {
        for (a, &b) in dst.iter_mut().zip(src) {
            if b > *a {
                *a = b;
            }
        }
    }

    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        for (a, &b) in dst.iter_mut().zip(src) {
            *a *= b;
        }
    }

    pub fn mul_scalar(dst: &mut [f64], m: f64) {
        for a in dst {
            *a *= m;
        }
    }

    pub fn div_into(num: &[f64], den: &[f64], out: &mut [f64]) {
        for ((slot, &n), &d) in out.iter_mut().zip(num).zip(den) {
            *slot = safe_div(n, d);
        }
    }

    pub fn div_assign(dst: &mut [f64], den: &[f64]) {
        for (a, &d) in dst.iter_mut().zip(den) {
            *a = safe_div(*a, d);
        }
    }

    pub fn marg_sum_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            add_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn marg_sum_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let xs = &src[pos..pos + seg.len];
            if let [x] = xs {
                dst[seg.target_base] += *x;
            } else {
                dst[seg.target_base] += sum(xs);
            }
            pos += seg.len;
        }
    }

    pub fn marg_max_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            max_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn marg_max_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let slot = &mut dst[seg.target_base];
            *slot = fold_max(*slot, &src[pos..pos + seg.len]);
            pos += seg.len;
        }
    }

    pub fn mul_contig(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_assign(
                &mut out[pos..pos + seg.len],
                &src[seg.target_base..seg.target_base + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn mul_broadcast(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_scalar(&mut out[pos..pos + seg.len], src[seg.target_base]);
            pos += seg.len;
        }
    }
}

/// SSE2 kernels: the canonical 4-lane tree as two 2-lane accumulators.
///
/// # Safety
///
/// Every function is `#[target_feature(enable = "sse2")]` and must only
/// be called after an `is_x86_feature_detected!("sse2")` check (the
/// `dispatch!` macro guards each arm).
#[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
mod sse2 {
    use self::arch::{
        _mm_add_pd, _mm_andnot_pd, _mm_cmpeq_pd, _mm_cvtsd_f64, _mm_div_pd, _mm_loadu_pd,
        _mm_max_pd, _mm_mul_pd, _mm_set1_pd, _mm_setzero_pd, _mm_storeu_pd, _mm_unpackhi_pd,
    };
    use crate::plan::Segment;
    use crate::primitives::safe_div;
    #[cfg(target_arch = "x86")]
    use std::arch::x86 as arch;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64 as arch;

    #[target_feature(enable = "sse2")]
    pub unsafe fn sum(xs: &[f64]) -> f64 {
        let chunks = xs.len() / 4;
        let p = xs.as_ptr();
        let mut total = 0.0;
        if chunks > 0 {
            // accA = [l0, l1], accB = [l2, l3].
            let mut acc_a = _mm_setzero_pd();
            let mut acc_b = _mm_setzero_pd();
            for k in 0..chunks {
                acc_a = _mm_add_pd(acc_a, _mm_loadu_pd(p.add(4 * k)));
                acc_b = _mm_add_pd(acc_b, _mm_loadu_pd(p.add(4 * k + 2)));
            }
            // [l0 + l2, l1 + l3], then (l0 + l2) + (l1 + l3).
            let t = _mm_add_pd(acc_a, acc_b);
            total = _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
        }
        for &x in &xs[chunks * 4..] {
            total += x;
        }
        total
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn fold_max(init: f64, xs: &[f64]) -> f64 {
        let chunks = xs.len() / 4;
        let p = xs.as_ptr();
        let mut acc = init;
        if chunks > 0 {
            // Lanes seeded from the first chunk; maxpd keeps the second
            // operand on ties/NaN, matching `if x > m { m = x }`.
            let mut m_a = _mm_loadu_pd(p);
            let mut m_b = _mm_loadu_pd(p.add(2));
            for k in 1..chunks {
                m_a = _mm_max_pd(_mm_loadu_pd(p.add(4 * k)), m_a);
                m_b = _mm_max_pd(_mm_loadu_pd(p.add(4 * k + 2)), m_b);
            }
            let t = _mm_max_pd(m_a, m_b); // [sel(m0>m2), sel(m1>m3)]
            let lo = _mm_cvtsd_f64(t);
            let hi = _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
            let block = if lo > hi { lo } else { hi };
            if block > acc {
                acc = block;
            }
        }
        for &x in &xs[chunks * 4..] {
            if x > acc {
                acc = x;
            }
        }
        acc
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let chunks = n / 2;
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        for k in 0..chunks {
            let v = _mm_add_pd(_mm_loadu_pd(d.add(2 * k)), _mm_loadu_pd(s.add(2 * k)));
            _mm_storeu_pd(d.add(2 * k), v);
        }
        for i in chunks * 2..n {
            dst[i] += src[i];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn max_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let chunks = n / 2;
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        for k in 0..chunks {
            let v = _mm_max_pd(_mm_loadu_pd(s.add(2 * k)), _mm_loadu_pd(d.add(2 * k)));
            _mm_storeu_pd(d.add(2 * k), v);
        }
        for i in chunks * 2..n {
            if src[i] > dst[i] {
                dst[i] = src[i];
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let chunks = n / 2;
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        for k in 0..chunks {
            let v = _mm_mul_pd(_mm_loadu_pd(d.add(2 * k)), _mm_loadu_pd(s.add(2 * k)));
            _mm_storeu_pd(d.add(2 * k), v);
        }
        for i in chunks * 2..n {
            dst[i] *= src[i];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_scalar(dst: &mut [f64], m: f64) {
        let n = dst.len();
        let chunks = n / 2;
        let d = dst.as_mut_ptr();
        let mv = _mm_set1_pd(m);
        for k in 0..chunks {
            _mm_storeu_pd(d.add(2 * k), _mm_mul_pd(_mm_loadu_pd(d.add(2 * k)), mv));
        }
        for a in &mut dst[chunks * 2..] {
            *a *= m;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn div_into(num: &[f64], den: &[f64], out: &mut [f64]) {
        let n = out.len();
        let chunks = n / 2;
        let zero = _mm_setzero_pd();
        for k in 0..chunks {
            let nv = _mm_loadu_pd(num.as_ptr().add(2 * k));
            let dv = _mm_loadu_pd(den.as_ptr().add(2 * k));
            // safe_div as compare-and-mask: den == 0 lanes become +0.0.
            let q = _mm_div_pd(nv, dv);
            let is_zero = _mm_cmpeq_pd(dv, zero);
            _mm_storeu_pd(out.as_mut_ptr().add(2 * k), _mm_andnot_pd(is_zero, q));
        }
        for i in chunks * 2..n {
            out[i] = safe_div(num[i], den[i]);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn div_assign(dst: &mut [f64], den: &[f64]) {
        let n = dst.len().min(den.len());
        let chunks = n / 2;
        let zero = _mm_setzero_pd();
        let d = dst.as_mut_ptr();
        for k in 0..chunks {
            let nv = _mm_loadu_pd(d.add(2 * k));
            let dv = _mm_loadu_pd(den.as_ptr().add(2 * k));
            let q = _mm_div_pd(nv, dv);
            let is_zero = _mm_cmpeq_pd(dv, zero);
            _mm_storeu_pd(d.add(2 * k), _mm_andnot_pd(is_zero, q));
        }
        for i in chunks * 2..n {
            dst[i] = safe_div(dst[i], den[i]);
        }
    }

    // Fused plan loops: the sibling single-block kernels inline here
    // (same target feature), so one outer call covers the whole plan.

    #[target_feature(enable = "sse2")]
    pub unsafe fn marg_sum_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            add_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn marg_sum_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let xs = &src[pos..pos + seg.len];
            if let [x] = xs {
                dst[seg.target_base] += *x;
            } else {
                dst[seg.target_base] += sum(xs);
            }
            pos += seg.len;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn marg_max_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            max_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn marg_max_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let slot = &mut dst[seg.target_base];
            *slot = fold_max(*slot, &src[pos..pos + seg.len]);
            pos += seg.len;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_contig(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_assign(
                &mut out[pos..pos + seg.len],
                &src[seg.target_base..seg.target_base + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_broadcast(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_scalar(&mut out[pos..pos + seg.len], src[seg.target_base]);
            pos += seg.len;
        }
    }
}

/// AVX2 kernels: the canonical 4-lane tree as one 4-lane accumulator,
/// split 128/128 for the final combine (same op DAG as SSE2/scalar).
///
/// # Safety
///
/// Every function is `#[target_feature(enable = "avx2")]` and must only
/// be called after an `is_x86_feature_detected!("avx2")` check.
#[cfg(all(any(target_arch = "x86", target_arch = "x86_64"), not(miri)))]
mod avx2 {
    use self::arch::{
        _mm256_add_pd, _mm256_andnot_pd, _mm256_castpd256_pd128, _mm256_cmp_pd, _mm256_div_pd,
        _mm256_extractf128_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm_add_pd, _mm_cvtsd_f64, _mm_max_pd,
        _mm_unpackhi_pd, _CMP_EQ_OQ,
    };
    use crate::plan::Segment;
    use crate::primitives::safe_div;
    #[cfg(target_arch = "x86")]
    use std::arch::x86 as arch;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64 as arch;

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(xs: &[f64]) -> f64 {
        let chunks = xs.len() / 4;
        let p = xs.as_ptr();
        let mut total = 0.0;
        if chunks > 0 {
            let mut acc = _mm256_setzero_pd(); // [l0, l1, l2, l3]
            for k in 0..chunks {
                acc = _mm256_add_pd(acc, _mm256_loadu_pd(p.add(4 * k)));
            }
            let lo = _mm256_castpd256_pd128(acc); // [l0, l1]
            let hi = _mm256_extractf128_pd::<1>(acc); // [l2, l3]
            let t = _mm_add_pd(lo, hi); // [l0 + l2, l1 + l3]
            total = _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
        }
        for &x in &xs[chunks * 4..] {
            total += x;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_max(init: f64, xs: &[f64]) -> f64 {
        let chunks = xs.len() / 4;
        let p = xs.as_ptr();
        let mut acc = init;
        if chunks > 0 {
            let mut m = _mm256_loadu_pd(p);
            for k in 1..chunks {
                m = _mm256_max_pd(_mm256_loadu_pd(p.add(4 * k)), m);
            }
            let lo = _mm256_castpd256_pd128(m); // [m0, m1]
            let hi = _mm256_extractf128_pd::<1>(m); // [m2, m3]
            let t = _mm_max_pd(lo, hi); // [sel(m0>m2), sel(m1>m3)]
            let a = _mm_cvtsd_f64(t);
            let b = _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
            let block = if a > b { a } else { b };
            if block > acc {
                acc = block;
            }
        }
        for &x in &xs[chunks * 4..] {
            if x > acc {
                acc = x;
            }
        }
        acc
    }

    /// Entries to process ahead of the vector loop so `p` reaches
    /// 32-byte alignment (an `f64`-aligned pointer is 0..=3 entries
    /// away). The elementwise kernels peel this head so the 256-bit
    /// loop's *destination* accesses never split a cache line —
    /// `Vec<f64>` is only guaranteed 16-byte alignment. Peeling
    /// regroups which entries share a vector op, which is bit-identical
    /// for per-entry-independent kernels (and is therefore never done
    /// in the order-fixed reductions above).
    #[inline]
    fn peel(p: *const f64, len: usize) -> usize {
        let mis = p as usize & 31;
        if mis == 0 {
            0
        } else {
            ((32 - mis) / 8).min(len)
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let head = peel(dst.as_ptr(), n);
        for i in 0..head {
            dst[i] += src[i];
        }
        let chunks = (n - head) / 4;
        let d = dst.as_mut_ptr().add(head);
        let s = src.as_ptr().add(head);
        for k in 0..chunks {
            let v = _mm256_add_pd(_mm256_loadu_pd(d.add(4 * k)), _mm256_loadu_pd(s.add(4 * k)));
            _mm256_storeu_pd(d.add(4 * k), v);
        }
        for i in head + chunks * 4..n {
            dst[i] += src[i];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let head = peel(dst.as_ptr(), n);
        for i in 0..head {
            if src[i] > dst[i] {
                dst[i] = src[i];
            }
        }
        let chunks = (n - head) / 4;
        let d = dst.as_mut_ptr().add(head);
        let s = src.as_ptr().add(head);
        for k in 0..chunks {
            let v = _mm256_max_pd(_mm256_loadu_pd(s.add(4 * k)), _mm256_loadu_pd(d.add(4 * k)));
            _mm256_storeu_pd(d.add(4 * k), v);
        }
        for i in head + chunks * 4..n {
            if src[i] > dst[i] {
                dst[i] = src[i];
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let head = peel(dst.as_ptr(), n);
        for i in 0..head {
            dst[i] *= src[i];
        }
        let chunks = (n - head) / 4;
        let d = dst.as_mut_ptr().add(head);
        let s = src.as_ptr().add(head);
        for k in 0..chunks {
            let v = _mm256_mul_pd(_mm256_loadu_pd(d.add(4 * k)), _mm256_loadu_pd(s.add(4 * k)));
            _mm256_storeu_pd(d.add(4 * k), v);
        }
        for i in head + chunks * 4..n {
            dst[i] *= src[i];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_scalar(dst: &mut [f64], m: f64) {
        let n = dst.len();
        let head = peel(dst.as_ptr(), n);
        for a in &mut dst[..head] {
            *a *= m;
        }
        let chunks = (n - head) / 4;
        let d = dst.as_mut_ptr().add(head);
        let mv = _mm256_set1_pd(m);
        for k in 0..chunks {
            _mm256_storeu_pd(
                d.add(4 * k),
                _mm256_mul_pd(_mm256_loadu_pd(d.add(4 * k)), mv),
            );
        }
        for a in &mut dst[head + chunks * 4..] {
            *a *= m;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn div_into(num: &[f64], den: &[f64], out: &mut [f64]) {
        let n = out.len();
        let head = peel(out.as_ptr(), n);
        for i in 0..head {
            out[i] = safe_div(num[i], den[i]);
        }
        let chunks = (n - head) / 4;
        let zero = _mm256_setzero_pd();
        let o = out.as_mut_ptr().add(head);
        let nm = num.as_ptr().add(head);
        let dn = den.as_ptr().add(head);
        for k in 0..chunks {
            let nv = _mm256_loadu_pd(nm.add(4 * k));
            let dv = _mm256_loadu_pd(dn.add(4 * k));
            let q = _mm256_div_pd(nv, dv);
            let is_zero = _mm256_cmp_pd::<_CMP_EQ_OQ>(dv, zero);
            _mm256_storeu_pd(o.add(4 * k), _mm256_andnot_pd(is_zero, q));
        }
        for i in head + chunks * 4..n {
            out[i] = safe_div(num[i], den[i]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn div_assign(dst: &mut [f64], den: &[f64]) {
        let n = dst.len().min(den.len());
        let head = peel(dst.as_ptr(), n);
        for i in 0..head {
            dst[i] = safe_div(dst[i], den[i]);
        }
        let chunks = (n - head) / 4;
        let zero = _mm256_setzero_pd();
        let d = dst.as_mut_ptr().add(head);
        let dn = den.as_ptr().add(head);
        for k in 0..chunks {
            let nv = _mm256_loadu_pd(d.add(4 * k));
            let dv = _mm256_loadu_pd(dn.add(4 * k));
            let q = _mm256_div_pd(nv, dv);
            let is_zero = _mm256_cmp_pd::<_CMP_EQ_OQ>(dv, zero);
            _mm256_storeu_pd(d.add(4 * k), _mm256_andnot_pd(is_zero, q));
        }
        for i in head + chunks * 4..n {
            dst[i] = safe_div(dst[i], den[i]);
        }
    }

    // Fused plan loops: the sibling single-block kernels inline here
    // (same target feature), so one outer call covers the whole plan.

    #[target_feature(enable = "avx2")]
    pub unsafe fn marg_sum_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            add_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn marg_sum_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let xs = &src[pos..pos + seg.len];
            if let [x] = xs {
                dst[seg.target_base] += *x;
            } else {
                dst[seg.target_base] += sum(xs);
            }
            pos += seg.len;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn marg_max_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            max_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn marg_max_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let slot = &mut dst[seg.target_base];
            *slot = fold_max(*slot, &src[pos..pos + seg.len]);
            pos += seg.len;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_contig(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_assign(
                &mut out[pos..pos + seg.len],
                &src[seg.target_base..seg.target_base + seg.len],
            );
            pos += seg.len;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_broadcast(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_scalar(&mut out[pos..pos + seg.len], src[seg.target_base]);
            pos += seg.len;
        }
    }
}

/// `std::simd` kernels (nightly, `portable-simd` feature): the
/// canonical tree on one `f64x4`, lanes combined through `to_array`
/// with the scalar op sequence.
#[cfg(feature = "portable-simd")]
mod portable {
    use crate::plan::Segment;
    use crate::primitives::safe_div;
    use std::simd::cmp::{SimdPartialEq, SimdPartialOrd};
    // `Select` hosts `Mask::select` on current nightlies (previously an
    // inherent method).
    use std::simd::{f64x4, Select};

    pub fn sum(xs: &[f64]) -> f64 {
        let mut it = xs.chunks_exact(4);
        let mut total = 0.0;
        if it.len() > 0 {
            let mut acc = f64x4::splat(0.0);
            for c in it.by_ref() {
                acc += f64x4::from_slice(c);
            }
            let l = acc.to_array();
            total = (l[0] + l[2]) + (l[1] + l[3]);
        }
        for &x in it.remainder() {
            total += x;
        }
        total
    }

    pub fn fold_max(init: f64, xs: &[f64]) -> f64 {
        let mut it = xs.chunks_exact(4);
        let mut acc = init;
        if it.len() > 0 {
            let mut m = f64x4::from_slice(it.next().unwrap());
            for c in it.by_ref() {
                let x = f64x4::from_slice(c);
                m = x.simd_gt(m).select(x, m);
            }
            let l = m.to_array();
            let t0 = if l[0] > l[2] { l[0] } else { l[2] };
            let t1 = if l[1] > l[3] { l[1] } else { l[3] };
            let block = if t0 > t1 { t0 } else { t1 };
            if block > acc {
                acc = block;
            }
        }
        for &x in it.remainder() {
            if x > acc {
                acc = x;
            }
        }
        acc
    }

    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (dv, dt) = dst[..n].split_at_mut(n - n % 4);
        for (d, s) in dv.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
            (f64x4::from_slice(d) + f64x4::from_slice(s)).copy_to_slice(d);
        }
        for (a, &b) in dt.iter_mut().zip(&src[n - n % 4..]) {
            *a += b;
        }
    }

    pub fn max_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (dv, dt) = dst[..n].split_at_mut(n - n % 4);
        for (d, s) in dv.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
            let a = f64x4::from_slice(d);
            let b = f64x4::from_slice(s);
            b.simd_gt(a).select(b, a).copy_to_slice(d);
        }
        for (a, &b) in dt.iter_mut().zip(&src[n - n % 4..]) {
            if b > *a {
                *a = b;
            }
        }
    }

    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (dv, dt) = dst[..n].split_at_mut(n - n % 4);
        for (d, s) in dv.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
            (f64x4::from_slice(d) * f64x4::from_slice(s)).copy_to_slice(d);
        }
        for (a, &b) in dt.iter_mut().zip(&src[n - n % 4..]) {
            *a *= b;
        }
    }

    pub fn mul_scalar(dst: &mut [f64], m: f64) {
        let mv = f64x4::splat(m);
        let n = dst.len();
        let (dv, dt) = dst.split_at_mut(n - n % 4);
        for d in dv.chunks_exact_mut(4) {
            (f64x4::from_slice(d) * mv).copy_to_slice(d);
        }
        for a in dt {
            *a *= m;
        }
    }

    pub fn div_into(num: &[f64], den: &[f64], out: &mut [f64]) {
        let n = out.len();
        let zero = f64x4::splat(0.0);
        let (ov, ot) = out.split_at_mut(n - n % 4);
        for ((o, s), d) in ov
            .chunks_exact_mut(4)
            .zip(num.chunks_exact(4))
            .zip(den.chunks_exact(4))
        {
            let nv = f64x4::from_slice(s);
            let dv = f64x4::from_slice(d);
            dv.simd_eq(zero).select(zero, nv / dv).copy_to_slice(o);
        }
        for ((slot, &s), &d) in ot.iter_mut().zip(&num[n - n % 4..]).zip(&den[n - n % 4..]) {
            *slot = safe_div(s, d);
        }
    }

    pub fn div_assign(dst: &mut [f64], den: &[f64]) {
        let n = dst.len().min(den.len());
        let zero = f64x4::splat(0.0);
        let (dv_s, dt) = dst[..n].split_at_mut(n - n % 4);
        for (o, d) in dv_s.chunks_exact_mut(4).zip(den.chunks_exact(4)) {
            let nv = f64x4::from_slice(o);
            let dv = f64x4::from_slice(d);
            dv.simd_eq(zero).select(zero, nv / dv).copy_to_slice(o);
        }
        for (slot, &d) in dt.iter_mut().zip(&den[n - n % 4..]) {
            *slot = safe_div(*slot, d);
        }
    }

    pub fn marg_sum_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            add_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn marg_sum_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let xs = &src[pos..pos + seg.len];
            if let [x] = xs {
                dst[seg.target_base] += *x;
            } else {
                dst[seg.target_base] += sum(xs);
            }
            pos += seg.len;
        }
    }

    pub fn marg_max_contig(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            max_assign(
                &mut dst[seg.target_base..seg.target_base + seg.len],
                &src[pos..pos + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn marg_max_broadcast(segs: &[Segment], src: &[f64], dst: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            let slot = &mut dst[seg.target_base];
            *slot = fold_max(*slot, &src[pos..pos + seg.len]);
            pos += seg.len;
        }
    }

    pub fn mul_contig(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_assign(
                &mut out[pos..pos + seg.len],
                &src[seg.target_base..seg.target_base + seg.len],
            );
            pos += seg.len;
        }
    }

    pub fn mul_broadcast(segs: &[Segment], src: &[f64], out: &mut [f64]) {
        let mut pos = 0;
        for seg in segs {
            mul_scalar(&mut out[pos..pos + seg.len], src[seg.target_base]);
            pos += seg.len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic mixed-sign data with zeros, exercising rounding
    /// and tie edges (no NaNs — those are covered by semantics notes).
    fn data(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                match x % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => (((x >> 33) % 2003) as f64 - 1001.0) / 37.0,
                }
            })
            .collect()
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn names_round_trip() {
        for be in ALL_BACKENDS {
            assert_eq!(KernelBackend::parse(be.name()), Some(be));
        }
        assert_eq!(KernelBackend::parse("AVX2 "), Some(KernelBackend::Avx2));
        assert_eq!(KernelBackend::parse("neon"), None);
    }

    #[test]
    fn scalar_is_always_available_and_detect_is_available() {
        assert!(KernelBackend::Scalar.is_available());
        assert!(KernelBackend::detect().is_available());
        assert!(KernelBackend::available().contains(&KernelBackend::Scalar));
    }

    #[test]
    fn choose_falls_back_on_bad_requests() {
        assert_eq!(choose(Some("scalar")), KernelBackend::Scalar);
        assert_eq!(
            choose(Some("definitely-not-a-backend")),
            KernelBackend::detect()
        );
        assert_eq!(choose(None), KernelBackend::detect());
        if !cfg!(feature = "portable-simd") {
            // Parseable but unavailable also falls back to detection.
            assert_eq!(choose(Some("portable")), KernelBackend::detect());
        }
    }

    #[test]
    fn set_active_rejects_unavailable() {
        if !cfg!(feature = "portable-simd") {
            assert!(matches!(
                set_active(KernelBackend::Portable),
                Err(PotentialError::BackendUnavailable {
                    backend: "portable"
                })
            ));
        }
        set_active(KernelBackend::Scalar).unwrap();
        assert_eq!(active(), KernelBackend::Scalar);
        set_active(KernelBackend::detect()).unwrap();
    }

    #[test]
    fn reductions_are_bit_identical_across_backends() {
        for n in 0..=67 {
            let xs = data(n, 0xA1);
            let want_sum = KernelBackend::Scalar.sum(&xs);
            let want_max = KernelBackend::Scalar.fold_max(-1e300, &xs);
            let want_max0 = KernelBackend::Scalar.fold_max(0.0, &xs);
            for be in KernelBackend::available() {
                assert_eq!(
                    be.sum(&xs).to_bits(),
                    want_sum.to_bits(),
                    "{be:?} sum n={n}"
                );
                assert_eq!(
                    be.fold_max(-1e300, &xs).to_bits(),
                    want_max.to_bits(),
                    "{be:?} max n={n}"
                );
                assert_eq!(
                    be.fold_max(0.0, &xs).to_bits(),
                    want_max0.to_bits(),
                    "{be:?} max/0 n={n}"
                );
            }
        }
    }

    #[test]
    fn elementwise_ops_are_bit_identical_across_backends() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 64] {
            let src = data(n, 0xB2);
            let mut den = data(n, 0xC3);
            // Force exact-zero denominators into the vector body.
            for d in den.iter_mut().step_by(3) {
                *d = 0.0;
            }
            for be in KernelBackend::available() {
                for op in 0..5 {
                    let mut want = data(n, 0xD4);
                    let mut got = want.clone();
                    match op {
                        0 => {
                            KernelBackend::Scalar.add_assign(&mut want, &src);
                            be.add_assign(&mut got, &src);
                        }
                        1 => {
                            KernelBackend::Scalar.max_assign(&mut want, &src);
                            be.max_assign(&mut got, &src);
                        }
                        2 => {
                            KernelBackend::Scalar.mul_assign(&mut want, &src);
                            be.mul_assign(&mut got, &src);
                        }
                        3 => {
                            KernelBackend::Scalar.mul_scalar(&mut want, 0.37);
                            be.mul_scalar(&mut got, 0.37);
                        }
                        _ => {
                            KernelBackend::Scalar.div_assign(&mut want, &den);
                            be.div_assign(&mut got, &den);
                        }
                    }
                    assert_eq!(bits(&want), bits(&got), "{be:?} op={op} n={n}");
                }
                let mut want = vec![0.0; n];
                let mut got = vec![0.0; n];
                KernelBackend::Scalar.div_into(&src, &den, &mut want);
                be.div_into(&src, &den, &mut got);
                assert_eq!(bits(&want), bits(&got), "{be:?} div_into n={n}");
            }
        }
    }

    #[test]
    fn elementwise_kernels_peel_misaligned_destinations_identically() {
        // Slicing the destination at offsets 0..=3 exercises every
        // alignment-peel head length the AVX2 kernels can take.
        let src_buf = data(75, 0x29);
        let mut den_buf = data(75, 0x3A);
        for x in den_buf.iter_mut().step_by(5) {
            *x = 0.0;
        }
        for off in 0..4usize {
            let n = 71 - off;
            let src = &src_buf[off..off + n];
            let den = &den_buf[off..off + n];
            for be in KernelBackend::available() {
                let mut want_buf = data(75, 0x4B);
                let mut got_buf = want_buf.clone();
                type ElementwiseOp<'a> = &'a dyn Fn(KernelBackend, &mut [f64]);
                let ops: [ElementwiseOp; 5] = [
                    &|b, d| b.add_assign(d, src),
                    &|b, d| b.max_assign(d, src),
                    &|b, d| b.mul_assign(d, src),
                    &|b, d| b.mul_scalar(d, 0.37),
                    &|b, d| b.div_assign(d, den),
                ];
                for (i, op) in ops.iter().enumerate() {
                    op(KernelBackend::Scalar, &mut want_buf[off..off + n]);
                    op(be, &mut got_buf[off..off + n]);
                    assert_eq!(bits(&want_buf), bits(&got_buf), "{be:?} op={i} off={off}");
                }
                op_div_into(be, src, den, off, n);
            }
        }
    }

    fn op_div_into(be: KernelBackend, src: &[f64], den: &[f64], off: usize, n: usize) {
        let mut want_buf = vec![1.0; 75];
        let mut got_buf = want_buf.clone();
        KernelBackend::Scalar.div_into(src, den, &mut want_buf[off..off + n]);
        be.div_into(src, den, &mut got_buf[off..off + n]);
        assert_eq!(bits(&want_buf), bits(&got_buf), "{be:?} div_into off={off}");
    }

    #[test]
    fn fused_plan_loops_are_bit_identical_across_backends() {
        // Mixed-length segments, including one-entry broadcast blocks
        // (the `[x]` fast path) and a shared target slot.
        let segs = [
            Segment {
                target_base: 0,
                len: 1,
            },
            Segment {
                target_base: 2,
                len: 5,
            },
            Segment {
                target_base: 1,
                len: 16,
            },
            Segment {
                target_base: 2,
                len: 3,
            },
            Segment {
                target_base: 3,
                len: 9,
            },
        ];
        let total: usize = segs.iter().map(|s| s.len).sum();
        let src = data(total, 0xE5);
        let big = data(64, 0xF6);
        for be in KernelBackend::available() {
            for broadcast in [false, true] {
                // Broadcast targets slots 0..=3; contig targets spans
                // up to target_base + len, all within 64.
                let mut want = data(64, 0x17);
                let mut got = want.clone();
                let mut want_w = src.clone();
                let mut got_w = src.clone();
                if broadcast {
                    KernelBackend::Scalar.marg_sum_broadcast(&segs, &src, &mut want);
                    be.marg_sum_broadcast(&segs, &src, &mut got);
                    assert_eq!(bits(&want), bits(&got), "{be:?} sum/bcast");
                    KernelBackend::Scalar.marg_max_broadcast(&segs, &src, &mut want);
                    be.marg_max_broadcast(&segs, &src, &mut got);
                    assert_eq!(bits(&want), bits(&got), "{be:?} max/bcast");
                    KernelBackend::Scalar.mul_broadcast(&segs, &big, &mut want_w);
                    be.mul_broadcast(&segs, &big, &mut got_w);
                    assert_eq!(bits(&want_w), bits(&got_w), "{be:?} mul/bcast");
                } else {
                    KernelBackend::Scalar.marg_sum_contig(&segs, &src, &mut want);
                    be.marg_sum_contig(&segs, &src, &mut got);
                    assert_eq!(bits(&want), bits(&got), "{be:?} sum/contig");
                    KernelBackend::Scalar.marg_max_contig(&segs, &src, &mut want);
                    be.marg_max_contig(&segs, &src, &mut got);
                    assert_eq!(bits(&want), bits(&got), "{be:?} max/contig");
                    KernelBackend::Scalar.mul_contig(&segs, &big, &mut want_w);
                    be.mul_contig(&segs, &big, &mut got_w);
                    assert_eq!(bits(&want_w), bits(&got_w), "{be:?} mul/contig");
                }
            }
        }
    }

    #[test]
    fn div_by_zero_yields_positive_zero_everywhere() {
        let num = [3.5, -2.0, 0.0, 7.0, -0.0, 1.0, 2.0, 3.0];
        let den = [0.0, 0.0, 0.0, -0.0, 0.0, 0.0, 0.0, 0.0];
        for be in KernelBackend::available() {
            let mut out = [1.0; 8];
            be.div_into(&num, &den, &mut out);
            assert_eq!(bits(&out), vec![0u64; 8], "{be:?}");
        }
    }
}
