//! Discrete potential tables and the four node-level primitives of exact
//! inference: **marginalization**, **extension**, **multiplication** and
//! **division**.
//!
//! This crate is the numerical substrate of the PACT 2009 reproduction
//! ("Parallel Evidence Propagation on Multicore Processors"). Every task
//! scheduled by the parallel engines ultimately executes one of the
//! primitives defined here, either on a whole table or — when the
//! scheduler's Partition module splits a large task — on a *range* of a
//! table via the `*_range` variants.
//!
//! # Model
//!
//! A [`PotentialTable`] is a non-negative real-valued function over the
//! joint state space of an ordered set of discrete variables (its
//! [`Domain`]). Entries are stored in row-major order: the **last**
//! variable of the domain varies fastest. Domains are kept sorted by
//! [`VarId`] so that any two tables over the same variables agree on
//! entry layout.
//!
//! # Example
//!
//! ```
//! use evprop_potential::{Domain, PotentialTable, Variable, VarId};
//!
//! // P(A, B) with A, B binary.
//! let a = Variable::new(VarId(0), 2);
//! let b = Variable::new(VarId(1), 2);
//! let dom = Domain::new(vec![a, b]).unwrap();
//! let p = PotentialTable::from_data(dom, vec![0.3, 0.1, 0.2, 0.4]).unwrap();
//! // Marginalize onto B: sums over A.
//! let pb = p.marginalize(&p.domain().project(&[VarId(1)])).unwrap();
//! assert!((pb.data()[0] - 0.5).abs() < 1e-12);
//! assert!((pb.data()[1] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

mod domain;
mod error;
mod evidence;
mod index;
mod max_primitives;
pub mod plan;
mod primitives;
pub mod raw;
pub mod simd;
mod table;
mod var;

pub use domain::Domain;
pub use error::PotentialError;
pub use evidence::{Evidence, EvidenceSet, Likelihood};
pub use index::{Assignment, AxisWalker, Odometer};
pub use plan::{KernelPlan, PlanKind};
pub use primitives::{EntryRange, PrimitiveKind};
pub use simd::KernelBackend;
pub use table::PotentialTable;
pub use var::{VarId, Variable};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, PotentialError>;
