//! Potential tables: the ψ of the paper.

use crate::{Domain, PotentialError, Result, VarId};
use std::fmt;

/// A potential table ψ over a [`Domain`]: one non-negative `f64` per joint
/// state, laid out row-major with the last domain variable fastest.
///
/// For a clique `C` with `w` variables of `r` states each, the table has
/// `r^w` entries — the quantity that drives task weights and the
/// Partition module's split threshold δ in the collaborative scheduler.
///
/// # Example
///
/// ```
/// use evprop_potential::{Domain, PotentialTable, Variable, VarId};
/// let d = Domain::new(vec![Variable::binary(VarId(0))]).unwrap();
/// let mut t = PotentialTable::from_data(d, vec![3.0, 1.0]).unwrap();
/// t.normalize();
/// assert_eq!(t.data(), &[0.75, 0.25]);
/// ```
#[derive(Clone, PartialEq)]
pub struct PotentialTable {
    domain: Domain,
    data: Vec<f64>,
}

// A potential table is never empty (the empty domain has one joint
// state), so `is_empty` would be constantly false and misleading;
// `is_scalar` covers the meaningful question.
#[allow(clippy::len_without_is_empty)]
impl PotentialTable {
    /// A table of zeros over `domain`.
    pub fn zeros(domain: Domain) -> Self {
        let n = domain.size();
        PotentialTable {
            domain,
            data: vec![0.0; n],
        }
    }

    /// A table of ones over `domain` — the multiplicative identity used to
    /// initialize clique and separator potentials.
    pub fn ones(domain: Domain) -> Self {
        let n = domain.size();
        PotentialTable {
            domain,
            data: vec![1.0; n],
        }
    }

    /// A table with explicit entries.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::DataSizeMismatch`] when `data.len()`
    /// differs from `domain.size()`.
    pub fn from_data(domain: Domain, data: Vec<f64>) -> Result<Self> {
        if data.len() != domain.size() {
            return Err(PotentialError::DataSizeMismatch {
                expected: domain.size(),
                found: data.len(),
            });
        }
        Ok(PotentialTable { domain, data })
    }

    /// The scalar table (empty domain) holding `value`.
    pub fn scalar(value: f64) -> Self {
        PotentialTable {
            domain: Domain::empty(),
            data: vec![value],
        }
    }

    /// The table's domain.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The raw entries in flat-index order.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw entries.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Domain and mutable entries borrowed at once — lets the `*_range`
    /// methods delegate to the [`crate::raw`] functions without fighting
    /// the borrow checker.
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&Domain, &mut [f64]) {
        (&self.domain, &mut self.data)
    }

    /// Number of entries (`domain().size()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the table is a scalar with no variables.
    ///
    /// Note a potential table is never length zero: the empty domain has
    /// exactly one joint state.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.domain.is_empty()
    }

    /// Reads the entry for a full assignment (states in domain order).
    pub fn get(&self, states: &[usize]) -> f64 {
        self.data[self.domain.flat_index(states)]
    }

    /// Writes the entry for a full assignment (states in domain order).
    pub fn set(&mut self, states: &[usize], value: f64) {
        let idx = self.domain.flat_index(states);
        self.data[idx] = value;
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Rescales entries to sum to 1. A table summing to zero is left
    /// unchanged (there is no meaningful normalization for it).
    pub fn normalize(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            let inv = 1.0 / s;
            for v in &mut self.data {
                *v *= inv;
            }
        }
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Overwrites this table's entries with `src`'s, **without
    /// reallocating** — the in-place counterpart of cloning, used by the
    /// serving path to reset clique buffers between queries.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::DomainMismatch`] when the tables are
    /// not over the same domain.
    pub fn copy_from(&mut self, src: &PotentialTable) -> Result<()> {
        if self.domain != src.domain {
            return Err(PotentialError::DomainMismatch);
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Resets every entry to `1.0` in place (separator buffers between
    /// serving queries).
    pub fn reset_ones(&mut self) {
        self.fill(1.0);
    }

    /// Resets every entry to `0.0` in place (scratch buffers between
    /// serving queries).
    pub fn reset_zeros(&mut self) {
        self.fill(0.0);
    }

    /// Multiplies every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Maximum absolute difference against another table over the same
    /// domain. Used pervasively by tests to compare engines.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn max_abs_diff(&self, other: &PotentialTable) -> f64 {
        assert_eq!(
            self.domain, other.domain,
            "max_abs_diff requires identical domains"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when the two tables agree entrywise within `tol` and share a
    /// domain.
    pub fn approx_eq(&self, other: &PotentialTable, tol: f64) -> bool {
        self.domain == other.domain && self.max_abs_diff(other) <= tol
    }

    /// Restricts the table by an instantiated variable: entries whose
    /// state of `var` differs from `state` are zeroed. This is how
    /// evidence is *absorbed* at a clique (§2 of the paper).
    ///
    /// # Errors
    ///
    /// [`PotentialError::UnknownVariable`] if `var` is not in the domain;
    /// [`PotentialError::StateOutOfRange`] if `state` exceeds its
    /// cardinality.
    pub fn restrict(&mut self, var: VarId, state: usize) -> Result<()> {
        let pos = self
            .domain
            .position_of(var)
            .ok_or(PotentialError::UnknownVariable(var))?;
        let card = self.domain.vars()[pos].cardinality();
        if state >= card {
            return Err(PotentialError::StateOutOfRange {
                var,
                state,
                cardinality: card,
            });
        }
        let stride = self.domain.stride(pos);
        let block = stride * card;
        for base in (0..self.data.len()).step_by(block) {
            for s in 0..card {
                if s == state {
                    continue;
                }
                let lo = base + s * stride;
                self.data[lo..lo + stride].fill(0.0);
            }
        }
        Ok(())
    }

    /// Consumes the table, returning its raw entries.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }
}

impl fmt::Debug for PotentialTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PotentialTable({:?}, {} entries",
            self.domain,
            self.len()
        )?;
        if self.len() <= 16 {
            write!(f, ", {:?}", self.data)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variable;

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_identity() {
        let d = dom(&[(0, 2), (1, 3)]);
        assert_eq!(PotentialTable::zeros(d.clone()).sum(), 0.0);
        let ones = PotentialTable::ones(d.clone());
        assert_eq!(ones.sum(), 6.0);
        assert_eq!(ones.len(), 6);
        assert!(!ones.is_scalar());
    }

    #[test]
    fn from_data_validates_length() {
        let d = dom(&[(0, 2)]);
        assert!(PotentialTable::from_data(d.clone(), vec![1.0]).is_err());
        assert!(PotentialTable::from_data(d, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let d = dom(&[(0, 2), (1, 3)]);
        let mut t = PotentialTable::zeros(d);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.get(&[1, 2]), 7.0);
        assert_eq!(t.get(&[0, 2]), 0.0);
        assert_eq!(t.data()[5], 7.0); // 1*3 + 2
    }

    #[test]
    fn normalize_sums_to_one() {
        let d = dom(&[(0, 4)]);
        let mut t = PotentialTable::from_data(d, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        t.normalize();
        assert!((t.sum() - 1.0).abs() < 1e-12);
        assert_eq!(t.data()[0], 0.25);
    }

    #[test]
    fn normalize_zero_table_is_noop() {
        let d = dom(&[(0, 2)]);
        let mut t = PotentialTable::zeros(d);
        t.normalize();
        assert_eq!(t.data(), &[0.0, 0.0]);
    }

    #[test]
    fn scalar_table() {
        let t = PotentialTable::scalar(4.5);
        assert!(t.is_scalar());
        assert_eq!(t.len(), 1);
        assert_eq!(t.sum(), 4.5);
    }

    #[test]
    fn restrict_zeroes_inconsistent_entries() {
        // P(A,B), restrict A=1
        let d = dom(&[(0, 2), (1, 3)]);
        let mut t = PotentialTable::from_data(d, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        t.restrict(VarId(0), 1).unwrap();
        assert_eq!(t.data(), &[0.0, 0.0, 0.0, 4.0, 5.0, 6.0]);
        // restrict B=0 next
        t.restrict(VarId(1), 0).unwrap();
        assert_eq!(t.data(), &[0.0, 0.0, 0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn restrict_middle_variable() {
        let d = dom(&[(0, 2), (1, 2), (2, 2)]);
        let mut t = PotentialTable::ones(d);
        t.restrict(VarId(1), 0).unwrap();
        // entries with V1 = 1 are zero: indices 2,3,6,7
        assert_eq!(t.data(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn restrict_errors() {
        let d = dom(&[(0, 2)]);
        let mut t = PotentialTable::ones(d);
        assert!(matches!(
            t.restrict(VarId(9), 0),
            Err(PotentialError::UnknownVariable(_))
        ));
        assert!(matches!(
            t.restrict(VarId(0), 2),
            Err(PotentialError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let d = dom(&[(0, 2)]);
        let a = PotentialTable::from_data(d.clone(), vec![1.0, 2.0]).unwrap();
        let b = PotentialTable::from_data(d, vec![1.0, 2.5]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    fn scale_and_fill() {
        let d = dom(&[(0, 2)]);
        let mut t = PotentialTable::ones(d);
        t.scale(3.0);
        assert_eq!(t.data(), &[3.0, 3.0]);
        t.fill(0.5);
        assert_eq!(t.data(), &[0.5, 0.5]);
    }

    #[test]
    fn copy_from_resets_in_place() {
        let d = dom(&[(0, 2)]);
        let src = PotentialTable::from_data(d.clone(), vec![0.25, 0.75]).unwrap();
        let mut dst = PotentialTable::zeros(d);
        dst.copy_from(&src).unwrap();
        assert_eq!(dst.data(), src.data());
        dst.reset_ones();
        assert_eq!(dst.data(), &[1.0, 1.0]);
        dst.reset_zeros();
        assert_eq!(dst.data(), &[0.0, 0.0]);
        // mismatched domains are rejected, even at equal size
        let other = PotentialTable::ones(dom(&[(1, 2)]));
        assert_eq!(dst.copy_from(&other), Err(PotentialError::DomainMismatch));
    }

    #[test]
    fn debug_shows_entries_for_small_tables() {
        let d = dom(&[(0, 2)]);
        let t = PotentialTable::ones(d);
        let s = format!("{t:?}");
        assert!(s.contains("2 entries"));
        assert!(s.contains("1.0"));
    }
}
