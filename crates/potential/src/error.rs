//! Error type for potential-table operations.

use crate::VarId;
use std::error::Error;
use std::fmt;

/// Errors produced by potential-table construction and primitives.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PotentialError {
    /// A domain was constructed with the same variable appearing twice.
    DuplicateVariable(VarId),
    /// Two occurrences of a variable disagree on cardinality.
    CardinalityMismatch {
        /// The offending variable.
        var: VarId,
        /// Cardinality seen first.
        expected: usize,
        /// Conflicting cardinality.
        found: usize,
    },
    /// Table data length does not match the domain size.
    DataSizeMismatch {
        /// Entries implied by the domain (product of cardinalities).
        expected: usize,
        /// Entries supplied.
        found: usize,
    },
    /// An operation required one domain to be a subset of another.
    NotSubdomain {
        /// A variable present in the would-be subdomain but missing from
        /// the superdomain.
        missing: VarId,
    },
    /// A variable referenced by an operation is not in the table's domain.
    UnknownVariable(VarId),
    /// A state index was out of range for its variable.
    StateOutOfRange {
        /// The variable whose state was addressed.
        var: VarId,
        /// The offending state index.
        state: usize,
        /// The variable's cardinality.
        cardinality: usize,
    },
    /// An operation required two tables over the *same* domain.
    DomainMismatch,
    /// An entry range was out of bounds or ill-formed.
    BadRange {
        /// Range start.
        start: usize,
        /// Range end (exclusive).
        end: usize,
        /// Table length.
        len: usize,
    },
    /// A kernel backend was requested that this build or host CPU
    /// cannot run (see [`crate::simd::set_active`]).
    BackendUnavailable {
        /// The requested backend's name.
        backend: &'static str,
    },
}

impl fmt::Display for PotentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PotentialError::DuplicateVariable(v) => {
                write!(f, "variable {v} appears more than once in domain")
            }
            PotentialError::CardinalityMismatch {
                var,
                expected,
                found,
            } => write!(
                f,
                "variable {var} has conflicting cardinalities {expected} and {found}"
            ),
            PotentialError::DataSizeMismatch { expected, found } => write!(
                f,
                "table data has {found} entries but domain implies {expected}"
            ),
            PotentialError::NotSubdomain { missing } => write!(
                f,
                "domain is not a subdomain: variable {missing} missing from superdomain"
            ),
            PotentialError::UnknownVariable(v) => {
                write!(f, "variable {v} is not in the table's domain")
            }
            PotentialError::StateOutOfRange {
                var,
                state,
                cardinality,
            } => write!(
                f,
                "state {state} out of range for variable {var} with {cardinality} states"
            ),
            PotentialError::DomainMismatch => {
                write!(f, "operation requires both tables to share one domain")
            }
            PotentialError::BadRange { start, end, len } => {
                write!(
                    f,
                    "entry range {start}..{end} invalid for table of length {len}"
                )
            }
            PotentialError::BackendUnavailable { backend } => {
                write!(
                    f,
                    "kernel backend '{backend}' is not available on this host/build"
                )
            }
        }
    }
}

impl Error for PotentialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let samples: Vec<PotentialError> = vec![
            PotentialError::DuplicateVariable(VarId(1)),
            PotentialError::CardinalityMismatch {
                var: VarId(1),
                expected: 2,
                found: 3,
            },
            PotentialError::DataSizeMismatch {
                expected: 4,
                found: 5,
            },
            PotentialError::NotSubdomain { missing: VarId(2) },
            PotentialError::UnknownVariable(VarId(9)),
            PotentialError::DomainMismatch,
            PotentialError::StateOutOfRange {
                var: VarId(0),
                state: 7,
                cardinality: 2,
            },
            PotentialError::BadRange {
                start: 3,
                end: 1,
                len: 8,
            },
            PotentialError::BackendUnavailable { backend: "avx512" },
        ];
        for e in samples {
            assert!(!format!("{e}").is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(PotentialError::UnknownVariable(VarId(0)));
    }
}
