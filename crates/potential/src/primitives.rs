//! The four node-level primitives and their range-partitioned variants.
//!
//! Following the paper (§5.1) and its companion "node level primitives"
//! work, evidence propagation decomposes into four table operations:
//!
//! * **marginalization** — sum a clique table onto a separator domain;
//! * **division** — elementwise ratio of updated vs original separator;
//! * **extension** — replicate a separator table over a clique domain;
//! * **multiplication** — elementwise product into a clique table.
//!
//! Each primitive also exists in a `*_range*` form operating on a slice of
//! entries, which is what the collaborative scheduler's Partition module
//! hands to subtasks. For marginalization the *source* is partitioned and
//! partial sums are **added** by the combining subtask; for the other
//! three the *destination* is partitioned so subtask writes are disjoint
//! and the results simply **concatenate** — exactly the paper's
//! "combined (for extension, multiplication and division) or added (for
//! marginalization)" rule.

use crate::{Domain, PotentialError, PotentialTable, Result};

/// Which node-level primitive a task performs (§5.1, Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimitiveKind {
    /// Sum a clique potential onto a separator domain.
    Marginalize,
    /// Elementwise ratio of updated separator over original separator.
    Divide,
    /// Replicate a separator potential over a clique domain.
    Extend,
    /// Elementwise product into a clique potential.
    Multiply,
}

impl PrimitiveKind {
    /// Stable short name used in traces and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveKind::Marginalize => "marg",
            PrimitiveKind::Divide => "div",
            PrimitiveKind::Extend => "ext",
            PrimitiveKind::Multiply => "mul",
        }
    }
}

impl std::fmt::Display for PrimitiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A half-open range of flat table indices processed by one (sub)task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EntryRange {
    /// First entry (inclusive).
    pub start: usize,
    /// One past the last entry.
    pub end: usize,
}

impl EntryRange {
    /// The whole table of length `len`.
    #[inline]
    pub fn full(len: usize) -> Self {
        EntryRange { start: 0, end: len }
    }

    /// Number of entries covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the range covers nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Splits `0..len` into chunks of at most `chunk` entries; the paper's
    /// Partition module uses this with `chunk = δ`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn split(len: usize, chunk: usize) -> Vec<EntryRange> {
        assert!(chunk > 0, "chunk size must be positive");
        if len == 0 {
            return vec![EntryRange { start: 0, end: 0 }];
        }
        let mut out = Vec::with_capacity(len.div_ceil(chunk));
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            out.push(EntryRange { start, end });
            start = end;
        }
        out
    }

    fn validate(&self, len: usize) -> Result<()> {
        if self.start > self.end || self.end > len {
            return Err(PotentialError::BadRange {
                start: self.start,
                end: self.end,
                len,
            });
        }
        Ok(())
    }
}

/// Hugin-convention division: `0/0 = 0`; any `x/0` is also mapped to 0
/// (such entries are unreachable in a consistent propagation — a zero in
/// an original separator forces zeros in the updated one).
#[inline]
pub(crate) fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

impl PotentialTable {
    // ----------------------------------------------------------------
    // marginalization
    // ----------------------------------------------------------------

    /// **Marginalization** primitive: sums this table onto `target`
    /// (a subdomain), producing ψ_S = Σ_{C \ S} ψ_C.
    ///
    /// ```
    /// use evprop_potential::{Domain, PotentialTable, Variable, VarId};
    /// let d = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))])?;
    /// let t = PotentialTable::from_data(d.clone(), vec![1.0, 2.0, 3.0, 4.0])?;
    /// let onto_v1 = t.marginalize(&d.project(&[VarId(1)]))?;
    /// assert_eq!(onto_v1.data(), &[4.0, 6.0]); // summed over V0
    /// # Ok::<(), evprop_potential::PotentialError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `target` ⊄ this domain.
    pub fn marginalize(&self, target: &Domain) -> Result<PotentialTable> {
        let mut out = PotentialTable::zeros(target.clone());
        self.marginalize_range_into(EntryRange::full(self.len()), &mut out)?;
        Ok(out)
    }

    /// Range-partitioned marginalization: accumulates the source entries
    /// in `range` into `out` (which the caller zeroes beforehand). Partial
    /// results from disjoint ranges **add** to the full marginal.
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `out`'s domain ⊄ this domain;
    /// [`PotentialError::BadRange`] for an out-of-bounds range.
    pub fn marginalize_range_into(
        &self,
        range: EntryRange,
        out: &mut PotentialTable,
    ) -> Result<()> {
        let (dst_domain, dst) = out.parts_mut();
        crate::raw::marginalize_range_into_raw(self.domain(), self.data(), range, dst_domain, dst)
    }

    // ----------------------------------------------------------------
    // extension
    // ----------------------------------------------------------------

    /// **Extension** primitive: replicates this (separator) table over the
    /// larger `target` domain; every entry of the result equals the source
    /// entry of the projected assignment.
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if this domain ⊄ `target`.
    pub fn extend(&self, target: &Domain) -> Result<PotentialTable> {
        let mut out = PotentialTable::zeros(target.clone());
        self.extend_range_into(EntryRange::full(out.len()), &mut out)?;
        Ok(out)
    }

    /// Range-partitioned extension: fills `range` of the *destination*
    /// `out`. Disjoint destination ranges concatenate to the full result.
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if this domain ⊄ `out`'s domain;
    /// [`PotentialError::BadRange`] for an out-of-bounds range.
    pub fn extend_range_into(&self, range: EntryRange, out: &mut PotentialTable) -> Result<()> {
        let (dst_domain, dst) = out.parts_mut();
        range.validate(dst.len())?;
        let window = &mut dst[range.start..range.end];
        crate::raw::extend_range_into_raw(self.domain(), self.data(), dst_domain, range, window)
    }

    // ----------------------------------------------------------------
    // multiplication
    // ----------------------------------------------------------------

    /// **Multiplication** primitive: `self[i] *= other[project(i)]`, where
    /// `other`'s domain is a subdomain of this table's. Fuses the
    /// extension of `other` with the product, the form used when a clique
    /// absorbs a separator ratio.
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if `other`'s domain ⊄ this domain.
    pub fn multiply_assign(&mut self, other: &PotentialTable) -> Result<()> {
        self.multiply_assign_range(EntryRange::full(self.len()), other)
    }

    /// Range-partitioned multiplication over destination `range`.
    ///
    /// # Errors
    ///
    /// See [`PotentialTable::multiply_assign`]; additionally
    /// [`PotentialError::BadRange`] for an out-of-bounds range.
    pub fn multiply_assign_range(
        &mut self,
        range: EntryRange,
        other: &PotentialTable,
    ) -> Result<()> {
        let (dst_domain, dst) = self.parts_mut();
        range.validate(dst.len())?;
        let window = &mut dst[range.start..range.end];
        crate::raw::multiply_range_into(other.domain(), other.data(), dst_domain, range, window)
    }

    /// General product over the union domain, used when assembling initial
    /// clique potentials from CPTs (whose domains need not nest).
    ///
    /// # Errors
    ///
    /// [`PotentialError::CardinalityMismatch`] if a shared variable
    /// disagrees on cardinality.
    pub fn product(&self, other: &PotentialTable) -> Result<PotentialTable> {
        let dom = self.domain().union(other.domain())?;
        let mut out = PotentialTable::ones(dom);
        out.multiply_assign(self)?;
        out.multiply_assign(other)?;
        Ok(out)
    }

    // ----------------------------------------------------------------
    // division
    // ----------------------------------------------------------------

    /// **Division** primitive: elementwise `self[i] = self[i] / other[i]`
    /// over identical domains, with the Hugin convention `0/0 = 0`.
    /// Computes the separator ratio ψ*_S / ψ_S of Eq. (1).
    ///
    /// # Errors
    ///
    /// [`PotentialError::NotSubdomain`] if the domains differ.
    pub fn divide_assign(&mut self, other: &PotentialTable) -> Result<()> {
        self.divide_assign_range(EntryRange::full(self.len()), other)
    }

    /// Range-partitioned division over destination `range`.
    ///
    /// # Errors
    ///
    /// See [`PotentialTable::divide_assign`]; additionally
    /// [`PotentialError::BadRange`] for an out-of-bounds range.
    pub fn divide_assign_range(&mut self, range: EntryRange, other: &PotentialTable) -> Result<()> {
        if self.domain() != other.domain() {
            // report the first variable that differs
            let missing = other
                .domain()
                .vars()
                .iter()
                .find(|v| !self.domain().contains(v.id()))
                .or_else(|| {
                    self.domain()
                        .vars()
                        .iter()
                        .find(|v| !other.domain().contains(v.id()))
                })
                .map(|v| v.id())
                .unwrap_or(crate::VarId(u32::MAX));
            return Err(PotentialError::NotSubdomain { missing });
        }
        range.validate(self.len())?;
        let src = &other.data()[range.start..range.end];
        crate::simd::active().div_assign(&mut self.data_mut()[range.start..range.end], src);
        Ok(())
    }

    // ----------------------------------------------------------------
    // addition (combining marginalization partials)
    // ----------------------------------------------------------------

    /// Entrywise addition over identical domains; the combining step for
    /// partitioned marginalization subtasks.
    ///
    /// # Errors
    ///
    /// [`PotentialError::DataSizeMismatch`] if lengths differ.
    pub fn add_assign(&mut self, other: &PotentialTable) -> Result<()> {
        if self.len() != other.len() {
            return Err(PotentialError::DataSizeMismatch {
                expected: self.len(),
                found: other.len(),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += *b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarId, Variable};

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    fn table(spec: &[(u32, usize)], data: Vec<f64>) -> PotentialTable {
        PotentialTable::from_data(dom(spec), data).unwrap()
    }

    #[test]
    fn marginalize_small() {
        // P(A,B): rows A, cols B
        let t = table(&[(0, 2), (1, 3)], vec![1., 2., 3., 4., 5., 6.]);
        let onto_b = t.marginalize(&dom(&[(1, 3)])).unwrap();
        assert_eq!(onto_b.data(), &[5., 7., 9.]);
        let onto_a = t.marginalize(&dom(&[(0, 2)])).unwrap();
        assert_eq!(onto_a.data(), &[6., 15.]);
        let scalar = t.marginalize(&Domain::empty()).unwrap();
        assert_eq!(scalar.data(), &[21.]);
    }

    #[test]
    fn marginalize_onto_self_is_identity() {
        let t = table(&[(0, 2), (1, 2)], vec![1., 2., 3., 4.]);
        let m = t.marginalize(t.domain()).unwrap();
        assert_eq!(m.data(), t.data());
    }

    #[test]
    fn marginalize_not_subdomain_errors() {
        let t = table(&[(0, 2)], vec![1., 2.]);
        assert!(matches!(
            t.marginalize(&dom(&[(5, 2)])),
            Err(PotentialError::NotSubdomain { .. })
        ));
    }

    #[test]
    fn marginalize_partials_add_to_whole() {
        let t = table(&[(0, 2), (1, 2), (2, 2)], (1..=8).map(f64::from).collect());
        let target = dom(&[(1, 2)]);
        let whole = t.marginalize(&target).unwrap();
        let mut acc = PotentialTable::zeros(target.clone());
        for r in EntryRange::split(t.len(), 3) {
            let mut part = PotentialTable::zeros(target.clone());
            t.marginalize_range_into(r, &mut part).unwrap();
            acc.add_assign(&part).unwrap();
        }
        assert_eq!(acc.data(), whole.data());
    }

    #[test]
    fn extend_replicates() {
        let sep = table(&[(1, 3)], vec![10., 20., 30.]);
        let big = sep.extend(&dom(&[(0, 2), (1, 3)])).unwrap();
        assert_eq!(big.data(), &[10., 20., 30., 10., 20., 30.]);
    }

    #[test]
    fn extend_scalar_broadcasts() {
        let s = PotentialTable::scalar(2.5);
        let big = s.extend(&dom(&[(0, 2)])).unwrap();
        assert_eq!(big.data(), &[2.5, 2.5]);
    }

    #[test]
    fn extend_ranges_concatenate() {
        let sep = table(&[(2, 2)], vec![7., 9.]);
        let target = dom(&[(0, 2), (2, 2)]);
        let whole = sep.extend(&target).unwrap();
        let mut pieced = PotentialTable::zeros(target.clone());
        for r in EntryRange::split(target.size(), 3) {
            sep.extend_range_into(r, &mut pieced).unwrap();
        }
        assert_eq!(pieced.data(), whole.data());
    }

    #[test]
    fn multiply_with_projection() {
        let mut clique = table(&[(0, 2), (1, 2)], vec![1., 2., 3., 4.]);
        let sep = table(&[(1, 2)], vec![10., 100.]);
        clique.multiply_assign(&sep).unwrap();
        assert_eq!(clique.data(), &[10., 200., 30., 400.]);
    }

    #[test]
    fn multiply_ranges_match_whole() {
        let base = table(&[(0, 2), (1, 2), (2, 2)], (1..=8).map(f64::from).collect());
        let factor = table(&[(0, 2), (2, 2)], vec![2., 3., 5., 7.]);
        let mut whole = base.clone();
        whole.multiply_assign(&factor).unwrap();
        let mut pieced = base.clone();
        for r in EntryRange::split(base.len(), 3) {
            pieced.multiply_assign_range(r, &factor).unwrap();
        }
        assert_eq!(pieced.data(), whole.data());
    }

    #[test]
    fn product_over_union() {
        let a = table(&[(0, 2)], vec![1., 2.]);
        let b = table(&[(1, 2)], vec![3., 5.]);
        let p = a.product(&b).unwrap();
        assert_eq!(p.domain().var_ids(), vec![VarId(0), VarId(1)]);
        assert_eq!(p.data(), &[3., 5., 6., 10.]);
    }

    #[test]
    fn product_with_overlap() {
        let a = table(&[(0, 2), (1, 2)], vec![1., 2., 3., 4.]);
        let b = table(&[(1, 2), (2, 2)], vec![1., 10., 100., 1000.]);
        let p = a.product(&b).unwrap();
        // P(v0,v1,v2) = a(v0,v1) * b(v1,v2)
        assert_eq!(p.get(&[0, 0, 0]), 1.0);
        assert_eq!(p.get(&[0, 1, 1]), 2.0 * 1000.0);
        assert_eq!(p.get(&[1, 0, 1]), 3.0 * 10.0);
        assert_eq!(p.get(&[1, 1, 0]), 4.0 * 100.0);
    }

    #[test]
    fn divide_elementwise_with_hugin_convention() {
        let mut num = table(&[(0, 2), (1, 2)], vec![1., 4., 0., 9.]);
        let den = table(&[(0, 2), (1, 2)], vec![2., 2., 0., 3.]);
        num.divide_assign(&den).unwrap();
        assert_eq!(num.data(), &[0.5, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn divide_requires_same_domain() {
        let mut num = table(&[(0, 2)], vec![1., 2.]);
        let den = table(&[(1, 2)], vec![1., 2.]);
        assert!(num.divide_assign(&den).is_err());
    }

    #[test]
    fn divide_ranges_match_whole() {
        let num = table(&[(0, 2), (1, 2)], vec![1., 4., 0., 9.]);
        let den = table(&[(0, 2), (1, 2)], vec![2., 2., 0., 3.]);
        let mut whole = num.clone();
        whole.divide_assign(&den).unwrap();
        let mut pieced = num.clone();
        for r in EntryRange::split(num.len(), 3) {
            pieced.divide_assign_range(r, &den).unwrap();
        }
        assert_eq!(pieced.data(), whole.data());
    }

    #[test]
    fn range_split_covers_exactly() {
        let rs = EntryRange::split(10, 4);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0], EntryRange { start: 0, end: 4 });
        assert_eq!(rs[2], EntryRange { start: 8, end: 10 });
        assert_eq!(rs.iter().map(EntryRange::len).sum::<usize>(), 10);
        assert!(!rs[0].is_empty());
    }

    #[test]
    fn bad_range_rejected() {
        let t = table(&[(0, 2)], vec![1., 2.]);
        let mut out = PotentialTable::zeros(Domain::empty());
        let err = t
            .marginalize_range_into(EntryRange { start: 0, end: 5 }, &mut out)
            .unwrap_err();
        assert!(matches!(err, PotentialError::BadRange { .. }));
    }

    #[test]
    fn hugin_propagation_identity() {
        // ψ_X · (marg(ψ_Y → S) / ψ_S) with ψ_S = ones: the classic first
        // message. Check against direct computation.
        let psi_y = table(&[(1, 2), (2, 2)], vec![0.2, 0.3, 0.1, 0.4]);
        let sep_dom = dom(&[(1, 2)]);
        let new_sep = psi_y.marginalize(&sep_dom).unwrap();
        let mut ratio = new_sep.clone();
        ratio.divide_assign(&PotentialTable::ones(sep_dom)).unwrap();
        let mut psi_x = table(&[(0, 2), (1, 2)], vec![1., 1., 1., 1.]);
        psi_x.multiply_assign(&ratio).unwrap();
        assert!((psi_x.get(&[0, 0]) - 0.5).abs() < 1e-12);
        assert!((psi_x.get(&[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn primitive_kind_names() {
        assert_eq!(PrimitiveKind::Marginalize.name(), "marg");
        assert_eq!(format!("{}", PrimitiveKind::Divide), "div");
        assert_eq!(format!("{}", PrimitiveKind::Extend), "ext");
        assert_eq!(format!("{}", PrimitiveKind::Multiply), "mul");
    }
}
