//! Index arithmetic: assignments, odometers and cross-domain walkers.

use crate::Domain;

/// A full assignment of states to the variables of some domain, in domain
/// order. A thin wrapper over `Vec<usize>` used mostly in tests and
/// user-facing APIs; the hot paths work on flat indices.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Assignment(pub Vec<usize>);

impl Assignment {
    /// The states, one per variable in domain order.
    #[inline]
    pub fn states(&self) -> &[usize] {
        &self.0
    }
}

impl From<Vec<usize>> for Assignment {
    fn from(v: Vec<usize>) -> Self {
        Assignment(v)
    }
}

/// Iterates over all joint assignments of a domain in flat-index order
/// (last variable fastest).
///
/// # Example
///
/// ```
/// use evprop_potential::{Domain, Odometer, Variable, VarId};
/// let d = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
/// let all: Vec<Vec<usize>> = Odometer::new(&d).collect();
/// assert_eq!(all, vec![vec![0,0], vec![0,1], vec![1,0], vec![1,1]]);
/// ```
#[derive(Debug, Clone)]
pub struct Odometer {
    cards: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl Odometer {
    /// Starts an odometer over `domain` at the all-zero assignment.
    pub fn new(domain: &Domain) -> Self {
        let cards = domain.cardinalities();
        let done = cards.contains(&0);
        Odometer {
            current: vec![0; cards.len()],
            cards,
            done,
        }
    }
}

impl Iterator for Odometer {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // increment with carry, last position fastest
        let mut i = self.cards.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.cards[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

/// Walks a *source* domain linearly (flat indices `0, 1, 2, ...`) while
/// maintaining the corresponding flat index into a *target* domain.
///
/// The target index is defined by giving each source variable a stride in
/// the target (0 when the target lacks the variable — see
/// [`Domain::strides_in`]). Advancing costs O(1) amortized; the walker can
/// also be positioned at an arbitrary source index in O(w), which is what
/// lets the Partition module hand out table *ranges* to subtasks.
///
/// This one mechanism implements all four node-level primitives:
///
/// * **marginalize**: scan the big table, accumulate into `target[walk]`;
/// * **extend**: scan the big (destination) table, read `source[walk]`;
/// * **multiply/divide**: scan the destination, combine with `other[walk]`.
#[derive(Debug, Clone)]
pub struct AxisWalker {
    cards: Vec<usize>,
    /// Stride of each source axis within the target table.
    tstrides: Vec<usize>,
    counters: Vec<usize>,
    target_idx: usize,
}

impl AxisWalker {
    /// Creates a walker from the source domain and per-source-axis strides
    /// in the target (typically `source.strides_in(&target)`).
    pub fn new(source: &Domain, tstrides: Vec<usize>) -> Self {
        debug_assert_eq!(source.width(), tstrides.len());
        AxisWalker {
            cards: source.cardinalities(),
            tstrides,
            counters: vec![0; source.width()],
            target_idx: 0,
        }
    }

    /// Positions the walker at source flat index `src_idx`.
    pub fn seek(&mut self, source: &Domain, src_idx: usize) {
        self.counters = source.unflatten(src_idx);
        self.target_idx = self
            .counters
            .iter()
            .zip(&self.tstrides)
            .map(|(&c, &s)| c * s)
            .sum();
    }

    /// The target flat index corresponding to the current source index.
    #[inline]
    pub fn target_index(&self) -> usize {
        self.target_idx
    }

    /// Advances the source index by one, updating the target index.
    #[inline]
    pub fn advance(&mut self) {
        let mut i = self.cards.len();
        loop {
            if i == 0 {
                // wrapped all the way around; reset (caller controls bounds)
                return;
            }
            i -= 1;
            self.counters[i] += 1;
            self.target_idx += self.tstrides[i];
            if self.counters[i] < self.cards[i] {
                return;
            }
            self.counters[i] = 0;
            self.target_idx -= self.cards[i] * self.tstrides[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarId, Variable};

    fn dom(spec: &[(u32, usize)]) -> Domain {
        Domain::new(
            spec.iter()
                .map(|&(id, c)| Variable::new(VarId(id), c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn odometer_counts_all_assignments() {
        let d = dom(&[(0, 2), (1, 3), (2, 2)]);
        let all: Vec<_> = Odometer::new(&d).collect();
        assert_eq!(all.len(), 12);
        // flat-index order
        for (i, a) in all.iter().enumerate() {
            assert_eq!(d.flat_index(a), i);
        }
    }

    #[test]
    fn odometer_empty_domain_yields_single() {
        let d = Domain::empty();
        let all: Vec<_> = Odometer::new(&d).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn walker_matches_bruteforce_projection() {
        let src = dom(&[(0, 2), (1, 3), (2, 2)]);
        let tgt = dom(&[(0, 2), (2, 2)]);
        let mut w = AxisWalker::new(&src, src.strides_in(&tgt));
        for (i, states) in Odometer::new(&src).enumerate() {
            // brute-force target index: project states onto tgt vars
            let proj: Vec<usize> = vec![states[0], states[2]];
            assert_eq!(w.target_index(), tgt.flat_index(&proj), "at src idx {i}");
            w.advance();
        }
    }

    #[test]
    fn walker_seek_agrees_with_walk() {
        let src = dom(&[(0, 3), (1, 2), (3, 4)]);
        let tgt = dom(&[(1, 2), (3, 4)]);
        let strides = src.strides_in(&tgt);
        let mut stepped = AxisWalker::new(&src, strides.clone());
        for idx in 0..src.size() {
            let mut sought = AxisWalker::new(&src, strides.clone());
            sought.seek(&src, idx);
            assert_eq!(sought.target_index(), stepped.target_index(), "idx {idx}");
            stepped.advance();
        }
    }

    #[test]
    fn walker_into_superdomain() {
        // extension direction: walk the sep, index into the clique
        let sep = dom(&[(1, 3)]);
        let clique = dom(&[(0, 2), (1, 3)]);
        let mut w = AxisWalker::new(&clique, clique.strides_in(&sep));
        // clique idx 0..6 -> sep idx pattern 0,1,2,0,1,2
        let mut got = Vec::new();
        for _ in 0..clique.size() {
            got.push(w.target_index());
            w.advance();
        }
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn assignment_from_vec() {
        let a: Assignment = vec![1, 0, 2].into();
        assert_eq!(a.states(), &[1, 0, 2]);
    }
}
