//! Property-based tests for the node-level primitives.
//!
//! These pin down the algebraic identities the parallel engines rely on:
//! partitioned execution must agree with whole-table execution, and the
//! primitives must satisfy the distribution laws used by evidence
//! propagation.

use evprop_potential::{Domain, EntryRange, PotentialTable, VarId, Variable};
use proptest::prelude::*;

/// Strategy: a domain of 1..=4 variables with cardinalities 1..=4 and
/// arbitrary distinct ids out of a small pool.
fn arb_domain() -> impl Strategy<Value = Domain> {
    proptest::collection::btree_set(0u32..8, 1..=4).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        proptest::collection::vec(1usize..=4, ids.len()).prop_map(move |cards| {
            Domain::new(
                ids.iter()
                    .zip(&cards)
                    .map(|(&id, &c)| Variable::new(VarId(id), c))
                    .collect(),
            )
            .unwrap()
        })
    })
}

/// Strategy: a table over an arbitrary domain with entries in [0, 10].
fn arb_table() -> impl Strategy<Value = PotentialTable> {
    arb_domain().prop_flat_map(|d| {
        let n = d.size();
        proptest::collection::vec(0.0f64..10.0, n)
            .prop_map(move |data| PotentialTable::from_data(d.clone(), data).unwrap())
    })
}

/// Picks a random subdomain of `d` (possibly empty).
fn arb_subdomain(d: Domain) -> impl Strategy<Value = Domain> {
    let ids = d.var_ids();
    proptest::collection::vec(proptest::bool::ANY, ids.len()).prop_map(move |mask| {
        let keep: Vec<VarId> = ids
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(&id, _)| id)
            .collect();
        d.project(&keep)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Marginalization preserves total mass.
    #[test]
    fn marginalize_preserves_sum(t in arb_table(), chunk in 1usize..7) {
        let _ = chunk;
        let sub = t.domain().project(&t.domain().var_ids()[..1]);
        let m = t.marginalize(&sub).unwrap();
        prop_assert!((m.sum() - t.sum()).abs() <= 1e-9 * (1.0 + t.sum()));
    }

    /// Partitioned marginalization (partials added) equals whole-table
    /// marginalization for every subdomain and chunk size.
    #[test]
    fn marginalize_partition_consistent(
        (t, sub) in arb_table().prop_flat_map(|t| {
            let d = t.domain().clone();
            (Just(t), arb_subdomain(d))
        }),
        chunk in 1usize..9,
    ) {
        let whole = t.marginalize(&sub).unwrap();
        let mut acc = PotentialTable::zeros(sub.clone());
        for r in EntryRange::split(t.len(), chunk) {
            let mut part = PotentialTable::zeros(sub.clone());
            t.marginalize_range_into(r, &mut part).unwrap();
            acc.add_assign(&part).unwrap();
        }
        prop_assert!(acc.approx_eq(&whole, 1e-9));
    }

    /// Extension then marginalization back recovers the source scaled by
    /// the size of the eliminated subspace.
    #[test]
    fn extend_then_marginalize_scales(
        (t, sup) in arb_table().prop_flat_map(|t| {
            let base = t.domain().clone();
            // add up to 2 extra fresh variables
            proptest::collection::vec((8u32..12, 1usize..=3), 0..3).prop_map(move |extra| {
                let mut vars = base.vars().to_vec();
                for (id, c) in extra {
                    if !base.contains(VarId(id)) && !vars.iter().any(|v| v.id() == VarId(id)) {
                        vars.push(Variable::new(VarId(id), c));
                    }
                }
                Domain::new(vars).unwrap()
            }).prop_map({
                let t = t.clone();
                move |sup| (t.clone(), sup)
            })
        })
    ) {
        let factor = (sup.size() / t.domain().size()) as f64;
        let ext = t.extend(&sup).unwrap();
        let back = ext.marginalize(t.domain()).unwrap();
        let mut scaled = t.clone();
        scaled.scale(factor);
        prop_assert!(back.approx_eq(&scaled, 1e-9 * (1.0 + factor)));
    }

    /// Partitioned extension/multiplication/division agree with the
    /// whole-table primitives.
    #[test]
    fn dest_partition_consistent(
        (t, sub) in arb_table().prop_flat_map(|t| {
            let d = t.domain().clone();
            (Just(t), arb_subdomain(d))
        }),
        chunk in 1usize..9,
        op in 0usize..3,
    ) {
        let subtab = t.marginalize(&sub).unwrap();
        match op {
            0 => {
                // extension
                let whole = subtab.extend(t.domain()).unwrap();
                let mut pieced = PotentialTable::zeros(t.domain().clone());
                for r in EntryRange::split(t.len(), chunk) {
                    subtab.extend_range_into(r, &mut pieced).unwrap();
                }
                prop_assert!(pieced.approx_eq(&whole, 0.0));
            }
            1 => {
                // multiplication
                let mut whole = t.clone();
                whole.multiply_assign(&subtab).unwrap();
                let mut pieced = t.clone();
                for r in EntryRange::split(t.len(), chunk) {
                    pieced.multiply_assign_range(r, &subtab).unwrap();
                }
                prop_assert!(pieced.approx_eq(&whole, 0.0));
            }
            _ => {
                // division (same-domain)
                let den = t.clone();
                let mut whole = t.clone();
                whole.divide_assign(&den).unwrap();
                let mut pieced = t.clone();
                for r in EntryRange::split(t.len(), chunk) {
                    pieced.divide_assign_range(r, &den).unwrap();
                }
                prop_assert!(pieced.approx_eq(&whole, 0.0));
            }
        }
    }

    /// The Hugin update is exact: after multiplying a clique by the
    /// separator ratio, re-marginalizing the clique onto the separator
    /// gives the updated separator (when the original separator was the
    /// clique's marginal — i.e. a calibrated edge).
    #[test]
    fn hugin_update_calibrates(t in arb_table()) {
        prop_assume!(t.domain().width() >= 2);
        let keep = &t.domain().var_ids()[..t.domain().width() / 2];
        let sep_dom = t.domain().project(keep);
        prop_assume!(!sep_dom.is_empty());
        let old_sep = t.marginalize(&sep_dom).unwrap();
        // a fresh separator: double the mass
        let mut new_sep = old_sep.clone();
        new_sep.scale(2.0);
        let mut ratio = new_sep.clone();
        ratio.divide_assign(&old_sep).unwrap();
        let mut clique = t.clone();
        clique.multiply_assign(&ratio).unwrap();
        let got = clique.marginalize(&sep_dom).unwrap();
        prop_assert!(got.approx_eq(&new_sep, 1e-6 * (1.0 + new_sep.sum())));
    }

    /// Restriction commutes with marginalization over untouched variables.
    #[test]
    fn restrict_commutes_with_marginalize(t in arb_table(), state in 0usize..4) {
        prop_assume!(t.domain().width() >= 2);
        let ev_var = t.domain().vars()[0];
        let state = state % ev_var.cardinality();
        let rest: Vec<VarId> = t.domain().var_ids()[1..].to_vec();
        let sub = t.domain().project(&rest);

        // restrict then marginalize
        let mut a = t.clone();
        a.restrict(ev_var.id(), state).unwrap();
        let a = a.marginalize(&sub).unwrap();

        // marginalize including the var can't commute, so instead compare
        // against the direct slice-sum
        let mut expect = PotentialTable::zeros(sub.clone());
        for (idx, &v) in t.data().iter().enumerate() {
            let states = t.domain().unflatten(idx);
            if states[0] == state {
                let proj: Vec<usize> = states[1..].to_vec();
                let j = sub.flat_index(&proj);
                expect.data_mut()[j] += v;
            }
        }
        prop_assert!(a.approx_eq(&expect, 1e-9));
    }
}
