//! Property tests for the fault-tolerance contract of the serving
//! runtime:
//!
//! * **exactly-once accounting** — under randomly interleaved worker
//!   deaths, per-query deadlines (absent, already expired, or
//!   far-future), and a final drain, every admitted query's ticket
//!   resolves exactly once within a bounded wait: an answer, a
//!   deterministic `deadline_exceeded`, or a worker-panic error —
//!   never a hang, never a double fulfillment (the slot API makes the
//!   latter a take-once, so a resolved ticket *is* the proof);
//! * **bit-identical completions** — whenever a query completes, its
//!   posterior equals the [`SequentialEngine`] answer bit for bit, no
//!   matter how many worker deaths or cancellations happened around
//!   it;
//! * **drain is a fence** — after `drain` returns, submission fails
//!   with `ShuttingDown` and the runtime reports every in-flight
//!   ticket resolved.

use evprop_bayesnet::networks;
use evprop_core::{InferenceSession, Query, SequentialEngine};
use evprop_potential::{EvidenceSet, VarId};
use evprop_serve::{RuntimeConfig, ServeError, ShardedRuntime};
use proptest::prelude::*;
use std::time::Duration;

/// One generated step of the interleaved fault schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Submit a query: (target, evidence var, evidence state, deadline
    /// class 0=none 1=expired 2=far-future).
    Query(u32, u32, usize, u8),
    /// Kill one pool worker thread on the given shard.
    KillWorker(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // ~1 in 7 steps kills a worker; the rest are queries.
    (0u8..7, 0u32..8, 0u32..8, 0usize..2, 0u8..3).prop_map(|(kind, t, v, s, d)| {
        if kind == 6 {
            Step::KillWorker(t as usize % 2)
        } else {
            Step::Query(t, v, s, d)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_admitted_query_resolves_exactly_once_and_completions_are_bit_identical(
        steps in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let reference = InferenceSession::from_network(&net).unwrap();
        // Deep queue so admission never sheds in this test: every
        // generated query is admitted and therefore owed a resolution.
        let rt = ShardedRuntime::new(
            session,
            RuntimeConfig::new(2, 1)
                .without_partitioning()
                .with_queue_depth(64),
        );

        let mut pending = Vec::new();
        for step in &steps {
            match *step {
                Step::Query(target, ev_var, ev_state, deadline_class) => {
                    let target = VarId(target);
                    let mut ev = EvidenceSet::new();
                    if ev_var != target.0 {
                        ev.observe(VarId(ev_var), ev_state);
                    }
                    let deadline = match deadline_class {
                        0 => None,
                        1 => Some(Duration::ZERO),
                        _ => Some(Duration::from_secs(3600)),
                    };
                    let ticket = rt
                        .submit_with_deadline(Query::new(target, ev.clone()), None, deadline)
                        .unwrap();
                    pending.push((target, ev, deadline_class, ticket));
                }
                Step::KillWorker(shard) => rt.inject_worker_deaths(shard, 1),
            }
        }

        // Drain mid-flight: everything admitted above must still
        // resolve, and the drain itself must finish in bounded time.
        let clean = rt.drain(Duration::from_secs(30));
        prop_assert!(clean, "drain timed out with work still in flight");

        for (i, (target, ev, deadline_class, ticket)) in pending.into_iter().enumerate() {
            let resolved = ticket.wait_timeout(Duration::from_secs(30));
            let Some(result) = resolved else {
                panic!("ticket {i} never resolved");
            };
            match result {
                Ok(marginal) => {
                    let want = reference
                        .posterior(&SequentialEngine, target, &ev)
                        .unwrap();
                    prop_assert_eq!(
                        marginal.data(),
                        want.data(),
                        "query {} completed but diverged from the sequential engine",
                        i
                    );
                }
                Err(ServeError::DeadlineExceeded { .. }) => {
                    prop_assert!(
                        deadline_class != 0,
                        "query {} had no deadline but was shed",
                        i
                    );
                }
                Err(ServeError::Engine(_)) => {
                    // A worker death landed on this query; the error is
                    // a legal resolution, and later queries must still
                    // have completed bit-identically (checked above as
                    // they come up in this same loop).
                }
                Err(other) => {
                    panic!("query {i} failed with an unexpected error: {other}");
                }
            }
        }

        // Drain is a fence: nothing new gets in.
        let refused = rt.submit_with_deadline(
            Query::new(VarId(0), EvidenceSet::new()),
            None,
            None,
        );
        prop_assert!(
            matches!(refused, Err(ServeError::ShuttingDown)),
            "post-drain submit was not refused: {:?}",
            refused.map(|_| ())
        );
    }
}
