//! Property tests for multi-model serving through the registry:
//!
//! * an interleaved two-model query stream answered by one
//!   registry-mode runtime is bit-identical to the same queries
//!   answered by two dedicated single-model servers — the dispatcher's
//!   arena switching never lets one model's tables leak into the
//!   other's answers;
//! * swapping a versioned alias mid-stream never produces a torn
//!   read — every response carries the exact version tag pinned at
//!   submission, and its posterior is bitwise that version's answer,
//!   never a mix of old and new.

use evprop_bayesnet::{networks, BayesianNetwork};
use evprop_core::{InferenceSession, Query, SequentialEngine};
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_registry::{ModelRegistry, NumericNames};
use evprop_serve::{RuntimeConfig, ShardedRuntime};
use proptest::prelude::*;
use std::sync::Arc;

fn config() -> RuntimeConfig {
    // Same engine configuration on every runtime under comparison, so
    // any bitwise divergence is a serving bug, not a summation-order
    // artifact.
    RuntimeConfig::new(2, 1).without_partitioning()
}

fn install(registry: &ModelRegistry, name: &str, net: &BayesianNetwork) {
    let session = InferenceSession::from_network(net).unwrap();
    registry
        .install(
            name,
            Arc::clone(session.model()),
            Arc::new(NumericNames::of(net)),
        )
        .unwrap();
}

/// Cardinality of `var` in `net`, for clamping generated evidence.
fn card(net: &BayesianNetwork, var: u32) -> usize {
    net.var(VarId(var)).cardinality()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One registry-mode runtime serving an interleaved asia/student
    /// stream answers every query bit-identically to dedicated
    /// single-model servers fed the same queries.
    #[test]
    fn interleaved_two_model_stream_matches_dedicated_servers(
        ops in proptest::collection::vec(
            // (model, target, evidence var, evidence state, has evidence)
            (0usize..2, 0u32..5, 0u32..5, 0usize..3, proptest::bool::ANY),
            1..32,
        ),
    ) {
        let asia = networks::asia();
        let student = networks::student();
        let registry = Arc::new(ModelRegistry::new());
        install(&registry, "asia", &asia);
        install(&registry, "student", &student);
        let mixed =
            ShardedRuntime::with_registry(Arc::clone(&registry), "asia", config()).unwrap();
        let dedicated = [
            ShardedRuntime::new(InferenceSession::from_network(&asia).unwrap(), config()),
            ShardedRuntime::new(InferenceSession::from_network(&student).unwrap(), config()),
        ];
        let nets = [&asia, &student];
        let names = ["asia", "student"];

        // Submit the whole stream to both sides before waiting on
        // anything, so the registry runtime genuinely interleaves the
        // two models inside dispatcher batches.
        let mut pending = Vec::with_capacity(ops.len());
        for &(model, target, ev_var, ev_state, has_ev) in &ops {
            let mut ev = EvidenceSet::new();
            if has_ev {
                ev.observe(VarId(ev_var), ev_state % card(nets[model], ev_var));
            }
            let q = Query::new(VarId(target), ev);
            let t_mixed = mixed.submit_model(q.clone(), Some(names[model])).unwrap();
            let t_solo = dedicated[model].submit(q).unwrap();
            pending.push((model, t_mixed, t_solo));
        }
        for (i, (model, t_mixed, t_solo)) in pending.into_iter().enumerate() {
            prop_assert_eq!(
                t_mixed.model_tag(),
                Some(format!("{}@v1", names[model]).as_str())
            );
            let got = t_mixed.wait().unwrap();
            let want = t_solo.wait().unwrap();
            prop_assert_eq!(
                got.data(),
                want.data(),
                "op {} against model {} diverged from its dedicated server",
                i,
                names[model]
            );
        }
    }

    /// Random interleavings of alias swaps and queries, with queries
    /// left in flight across swaps: every answer is entirely the
    /// posterior of the version named by its tag.
    #[test]
    fn hot_swap_mid_stream_is_never_torn(
        ops in proptest::collection::vec(
            // (is swap, swap target version 1|2, query target)
            (proptest::bool::ANY, 1u32..3, 0u32..5),
            1..40,
        ),
    ) {
        let asia = networks::asia();
        let student = networks::student();
        let registry = Arc::new(ModelRegistry::new());
        install(&registry, "m", &asia); // m@v1
        install(&registry, "m", &student); // m@v2, alias now v2
        let rt = ShardedRuntime::with_registry(Arc::clone(&registry), "m", config()).unwrap();

        let expected: [Vec<PotentialTable>; 2] = [&asia, &student].map(|net| {
            let session = InferenceSession::from_network(net).unwrap();
            (0..5u32)
                .map(|v| {
                    session
                        .posterior(&SequentialEngine, VarId(v), &EvidenceSet::new())
                        .unwrap()
                })
                .collect()
        });

        let mut pending = Vec::new();
        for &(is_swap, version, target) in &ops {
            if is_swap {
                registry.swap("m", version).unwrap();
            } else {
                let q = Query::new(VarId(target), EvidenceSet::new());
                pending.push((target, rt.submit_model(q, Some("m")).unwrap()));
            }
        }
        for (target, ticket) in pending {
            let tag = ticket.model_tag().expect("alias queries are tagged").to_string();
            let version = match tag.as_str() {
                "m@v1" => 0usize,
                "m@v2" => 1usize,
                other => panic!("unexpected version tag {other:?}"),
            };
            let got = ticket.wait().unwrap();
            prop_assert_eq!(
                got.data(),
                expected[version][target as usize].data(),
                "answer tagged {} is not that version's posterior for V{}",
                tag,
                target
            );
        }
    }
}
