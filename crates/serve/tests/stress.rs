//! Admission-queue stress suite (`--features stress`): many client
//! threads hammering one [`ShardedRuntime`] through both the blocking
//! and the load-shedding submission paths, with every answer checked
//! against the sequential oracle.
//!
//! A deliberately tiny queue (depth 4) under 8 concurrent clients
//! keeps the runtime saturated: producers block on backpressure or
//! get `Overloaded`, dispatchers micro-batch what they drain, and the
//! bounded-depth invariant (`high_water ≤ capacity`) must hold at the
//! end no matter the interleaving.

#![cfg(feature = "stress")]

use evprop_bayesnet::networks;
use evprop_core::{InferenceSession, Query, SequentialEngine};
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_serve::{RuntimeConfig, ServeError, ShardedRuntime};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 150;

/// Every distinct query this suite can issue, answered sequentially.
fn oracle_answers() -> Vec<Vec<PotentialTable>> {
    let session = InferenceSession::from_network(&networks::asia()).unwrap();
    (0..2)
        .map(|state| {
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(7), state);
            let cal = session.propagate(&SequentialEngine, &ev).unwrap();
            (0..8u32).map(|v| cal.marginal(VarId(v)).unwrap()).collect()
        })
        .collect()
}

#[test]
fn eight_clients_hammer_a_tiny_queue() {
    let session = InferenceSession::from_network(&networks::asia()).unwrap();
    let rt = Arc::new(ShardedRuntime::new(
        session,
        RuntimeConfig::new(4, 1)
            .without_partitioning()
            .with_queue_depth(4)
            .with_max_batch(3),
    ));
    let oracle = Arc::new(oracle_answers());

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let rt = Arc::clone(&rt);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let mut rejected = 0u64;
                for i in 0..QUERIES_PER_CLIENT {
                    let var = ((c + i) % 8) as u32;
                    let state = (c + i / 3) % 2;
                    let mut ev = EvidenceSet::new();
                    ev.observe(VarId(7), state);
                    let q = Query::new(VarId(var), ev);
                    // Odd clients shed load, even clients block.
                    let ticket = if c % 2 == 1 {
                        match rt.try_submit(q) {
                            Ok(t) => t,
                            Err(ServeError::Overloaded) => {
                                rejected += 1;
                                continue;
                            }
                            Err(e) => panic!("client {c}: {e}"),
                        }
                    } else {
                        rt.submit(q).unwrap_or_else(|e| panic!("client {c}: {e}"))
                    };
                    let got = ticket.wait().unwrap_or_else(|e| panic!("client {c}: {e}"));
                    let want = &oracle[state][var as usize];
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "client {c} query {i}: V{var} under state {state} diverged"
                    );
                    answered += 1;
                }
                (answered, rejected)
            })
        })
        .collect();

    let mut answered = 0u64;
    let mut rejected = 0u64;
    for c in clients {
        let (a, r) = c.join().unwrap();
        answered += a;
        rejected += r;
    }
    assert_eq!(answered + rejected, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    // Blocking clients always get through.
    assert!(answered >= (CLIENTS / 2 * QUERIES_PER_CLIENT) as u64);

    let stats = rt.stats();
    assert_eq!(stats.served, answered, "each admitted query answered once");
    assert_eq!(stats.errors, 0);
    assert!(
        stats.queue_high_water <= rt.config().queue_depth,
        "queue exceeded its bound: {} > {}",
        stats.queue_high_water,
        rt.config().queue_depth
    );
    // Steady state: every shard serves from its recycled arenas.
    let arenas: u64 = stats.shards.iter().map(|s| s.arenas_allocated).sum();
    assert!(arenas <= 4, "arena allocations kept growing: {arenas}");
    rt.shutdown();
}
